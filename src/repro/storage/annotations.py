"""Raw annotation storage with cell-level attachments.

Annotations are stored once and attached to any number of cells — possibly
across tuples and tables (the same observation may apply to several birds).
The attachment table is indexed both ways: by annotation (for projection
semantics and deletion) and by cell (for summarization and zoom-in).
"""

from __future__ import annotations

import itertools
import sqlite3
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import AnnotationError, UnknownAnnotationError
from repro.model.annotation import Annotation, AnnotationKind
from repro.model.cell import CellRef
from repro.storage.database import Database
from repro.storage.schema import SYSTEM_PREFIX
from repro.storage.sqlsafe import placeholders

_ANNOTATIONS_TABLE = f"{SYSTEM_PREFIX}annotations"
_ATTACHMENTS_TABLE = f"{SYSTEM_PREFIX}attachments"


@dataclass(frozen=True)
class AnnotationDraft:
    """One not-yet-stored annotation, as the bulk insert path takes it.

    A plain value object mirroring :meth:`AnnotationStore.add`'s
    parameters, so a whole batch can be validated up front and written
    with two ``executemany`` calls in a single transaction.
    """

    text: str
    cells: tuple[CellRef, ...]
    author: str = "anonymous"
    kind: AnnotationKind = AnnotationKind.COMMENT
    title: str = ""
    created_at: float | None = None

    def __post_init__(self) -> None:
        # Accept any sequence of cells; store a tuple.
        object.__setattr__(self, "cells", tuple(self.cells))


class AnnotationStore:
    """Persistent store of raw annotations and their attachments."""

    def __init__(self, database: Database) -> None:
        self._db = database
        with database.transaction() as connection:
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_ANNOTATIONS_TABLE} (
                    annotation_id INTEGER PRIMARY KEY AUTOINCREMENT,
                    body TEXT NOT NULL,
                    author TEXT NOT NULL,
                    created_at REAL NOT NULL,
                    kind TEXT NOT NULL,
                    title TEXT NOT NULL DEFAULT ''
                )
                """
            )
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_ATTACHMENTS_TABLE} (
                    annotation_id INTEGER NOT NULL,
                    table_name TEXT NOT NULL,
                    row_id INTEGER NOT NULL,
                    column_name TEXT NOT NULL,
                    PRIMARY KEY (annotation_id, table_name, row_id, column_name)
                )
                """
            )
            connection.execute(
                f"""
                CREATE INDEX IF NOT EXISTS {_ATTACHMENTS_TABLE}_by_cell
                ON {_ATTACHMENTS_TABLE} (table_name, row_id)
                """
            )

    # -- writes -----------------------------------------------------

    def add(
        self,
        text: str,
        cells: Sequence[CellRef],
        author: str = "anonymous",
        kind: AnnotationKind = AnnotationKind.COMMENT,
        title: str = "",
        created_at: float | None = None,
        annotation_id: int | None = None,
    ) -> Annotation:
        """Store an annotation attached to ``cells``; returns it with id.

        At least one cell is required — a dangling annotation would never
        be summarized, propagated, or reachable by zoom-in.  An explicit
        ``annotation_id`` pins the id (import tooling must reproduce ids
        exactly, gaps included).
        """
        if not cells:
            raise AnnotationError("an annotation must attach to at least one cell")
        for cell in cells:
            schema = self._db.schema(cell.table)
            if not schema.has_column(cell.column):
                raise AnnotationError(
                    f"cannot attach to unknown column {cell.table}.{cell.column}"
                )
        timestamp = time.time() if created_at is None else created_at
        with self._db.transaction() as connection:
            if annotation_id is None:
                cursor = connection.execute(
                    f"""
                    INSERT INTO {_ANNOTATIONS_TABLE}
                        (body, author, created_at, kind, title)
                    VALUES (?, ?, ?, ?, ?)
                    """,
                    (text, author, timestamp, kind.value, title),
                )
                annotation_id = cursor.lastrowid
                assert annotation_id is not None
            else:
                connection.execute(
                    f"""
                    INSERT INTO {_ANNOTATIONS_TABLE}
                        (annotation_id, body, author, created_at, kind, title)
                    VALUES (?, ?, ?, ?, ?, ?)
                    """,
                    (annotation_id, text, author, timestamp, kind.value, title),
                )
            connection.executemany(
                f"""
                INSERT OR IGNORE INTO {_ATTACHMENTS_TABLE}
                    (annotation_id, table_name, row_id, column_name)
                VALUES (?, ?, ?, ?)
                """,
                [
                    (annotation_id, cell.table, cell.row_id, cell.column)
                    for cell in cells
                ],
            )
        return Annotation(
            annotation_id=annotation_id,
            text=text,
            author=author,
            created_at=timestamp,
            kind=kind,
            title=title,
        )

    def add_many(self, drafts: Sequence[AnnotationDraft]) -> list[Annotation]:
        """Bulk :meth:`add`: the whole batch lands in one transaction.

        Ids are assigned contiguously in draft order from the table's
        AUTOINCREMENT sequence, so a batch produces exactly the ids a
        loop of single adds would.  The batch is validated up front and
        written with one ``executemany`` per table — two statements'
        worth of Python/SQLite boundary crossings instead of two per
        annotation.  All-or-nothing: a failure rolls the whole batch
        back.
        """
        if not drafts:
            return []
        for draft in drafts:
            if not draft.cells:
                raise AnnotationError(
                    "an annotation must attach to at least one cell"
                )
            for cell in draft.cells:
                schema = self._db.schema(cell.table)
                if not schema.has_column(cell.column):
                    raise AnnotationError(
                        f"cannot attach to unknown column {cell.table}.{cell.column}"
                    )
        now = time.time()
        annotations: list[Annotation] = []
        annotation_rows: list[tuple[int, str, str, float, str, str]] = []
        attachment_rows: list[tuple[int, str, int, str]] = []
        with self._db.transaction() as connection:
            # The id probe must run on the writer inside this transaction
            # (a pooled reader only sees already-committed state).
            next_id = self._next_annotation_id(connection)
            for offset, draft in enumerate(drafts):
                annotation_id = next_id + offset
                timestamp = now if draft.created_at is None else draft.created_at
                annotation_rows.append(
                    (
                        annotation_id,
                        draft.text,
                        draft.author,
                        timestamp,
                        draft.kind.value,
                        draft.title,
                    )
                )
                attachment_rows.extend(
                    (annotation_id, cell.table, cell.row_id, cell.column)
                    for cell in draft.cells
                )
                annotations.append(
                    Annotation(
                        annotation_id=annotation_id,
                        text=draft.text,
                        author=draft.author,
                        created_at=timestamp,
                        kind=draft.kind,
                        title=draft.title,
                    )
                )
            connection.executemany(
                f"""
                INSERT INTO {_ANNOTATIONS_TABLE}
                    (annotation_id, body, author, created_at, kind, title)
                VALUES (?, ?, ?, ?, ?, ?)
                """,
                annotation_rows,
            )
            connection.executemany(
                f"""
                INSERT OR IGNORE INTO {_ATTACHMENTS_TABLE}
                    (annotation_id, table_name, row_id, column_name)
                VALUES (?, ?, ?, ?)
                """,
                attachment_rows,
            )
        return annotations

    def _next_annotation_id(self, connection: sqlite3.Connection) -> int:
        """First free annotation id, honouring AUTOINCREMENT's no-reuse rule.

        The sqlite_sequence entry outlives deletions of the max row, so a
        bulk insert never recycles the id of a deleted annotation (which
        stale summary references might still name).  The MAX() fallback
        covers explicitly pinned ids that may run ahead of the sequence.
        Runs on the caller's (writer) connection: the probe sits inside
        the batch's open transaction and must see its uncommitted state.
        """
        try:
            row = connection.execute(
                "SELECT seq FROM sqlite_sequence WHERE name = ?",
                (_ANNOTATIONS_TABLE,),
            ).fetchone()
        except sqlite3.OperationalError:  # no AUTOINCREMENT insert yet
            row = None
        sequence = row[0] if row is not None else 0
        (max_id,) = connection.execute(
            f"SELECT COALESCE(MAX(annotation_id), 0) FROM {_ANNOTATIONS_TABLE}"
        ).fetchone()
        return max(sequence, max_id) + 1

    def update(
        self,
        annotation_id: int,
        text: str | None = None,
        title: str | None = None,
    ) -> Annotation:
        """Rewrite an annotation's body and/or title; returns the result.

        The id, author, timestamp, kind, and attachments are preserved, so
        references from summaries and zoom-in stay valid — the caller is
        responsible for re-summarizing (see
        :meth:`repro.engine.session.InsightNotes.update_annotation`).
        """
        current = self.get(annotation_id)  # raises for unknown ids
        new_text = current.text if text is None else text
        new_title = current.title if title is None else title
        with self._db.transaction() as connection:
            connection.execute(
                f"""
                UPDATE {_ANNOTATIONS_TABLE} SET body = ?, title = ?
                WHERE annotation_id = ?
                """,
                (new_text, new_title, annotation_id),
            )
        return Annotation(
            annotation_id=annotation_id,
            text=new_text,
            author=current.author,
            created_at=current.created_at,
            kind=current.kind,
            title=new_title,
        )

    def detach_row(self, annotation_id: int, table: str, row_id: int) -> None:
        """Remove one annotation's attachments to a single base row.

        Used when a base row is deleted but the annotation also covers
        other rows and must survive there.
        """
        with self._db.transaction() as connection:
            connection.execute(
                f"""
                DELETE FROM {_ATTACHMENTS_TABLE}
                WHERE annotation_id = ? AND table_name = ? AND row_id = ?
                """,
                (annotation_id, table, row_id),
            )

    def delete(self, annotation_id: int) -> None:
        """Remove an annotation and all its attachments."""
        self.get(annotation_id)  # raises for unknown ids
        with self._db.transaction() as connection:
            connection.execute(
                f"DELETE FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?",
                (annotation_id,),
            )
            connection.execute(
                f"DELETE FROM {_ANNOTATIONS_TABLE} WHERE annotation_id = ?",
                (annotation_id,),
            )

    # -- reads --------------------------------------------------------

    def get(self, annotation_id: int) -> Annotation:
        """Fetch one annotation or raise :class:`UnknownAnnotationError`."""
        row = self._db.fetch_one(
            f"""
            SELECT annotation_id, body, author, created_at, kind, title
            FROM {_ANNOTATIONS_TABLE} WHERE annotation_id = ?
            """,
            (annotation_id,),
        )
        if row is None:
            raise UnknownAnnotationError(annotation_id)
        return _annotation_from_row(row)

    def get_many(self, annotation_ids: Iterable[int]) -> list[Annotation]:
        """Fetch annotations by id, in ascending id order.

        Unknown ids raise, matching :meth:`get` — zoom-in must never
        silently return fewer annotations than a summary promised.
        """
        wanted = sorted(set(annotation_ids))
        results: list[Annotation] = []
        # Chunked IN-lists keep us under SQLite's bound-variable limit.
        for chunk_start in range(0, len(wanted), 500):
            chunk = wanted[chunk_start : chunk_start + 500]
            marks = placeholders(len(chunk))
            rows = self._db.fetch_all(
                f"""
                SELECT annotation_id, body, author, created_at, kind, title
                FROM {_ANNOTATIONS_TABLE}
                WHERE annotation_id IN ({marks})
                ORDER BY annotation_id
                """,
                chunk,
            )
            if len(rows) != len(chunk):
                found = {row[0] for row in rows}
                missing = next(i for i in chunk if i not in found)
                raise UnknownAnnotationError(missing)
            results.extend(_annotation_from_row(row) for row in rows)
        return results

    def count(self) -> int:
        """Total number of stored annotations."""
        row = self._db.fetch_one(f"SELECT COUNT(*) FROM {_ANNOTATIONS_TABLE}")
        assert row is not None
        return row[0]

    def total_text_bytes(self) -> int:
        """Total size of all annotation bodies (storage benchmark)."""
        row = self._db.fetch_one(
            f"SELECT COALESCE(SUM(LENGTH(body)), 0) FROM {_ANNOTATIONS_TABLE}"
        )
        assert row is not None
        return row[0]

    def iter_all(self) -> Iterator[Annotation]:
        """Iterate over every stored annotation in id order."""
        rows = self._db.fetch_all(
            f"""
            SELECT annotation_id, body, author, created_at, kind, title
            FROM {_ANNOTATIONS_TABLE} ORDER BY annotation_id
            """
        )
        for row in rows:
            yield _annotation_from_row(row)

    # -- attachment queries ----------------------------------------------

    def cells_of(self, annotation_id: int) -> list[CellRef]:
        """All cells the annotation is attached to."""
        rows = self._db.fetch_all(
            f"""
            SELECT table_name, row_id, column_name
            FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?
            ORDER BY table_name, row_id, column_name
            """,
            (annotation_id,),
        )
        return [CellRef(table, row_id, column) for table, row_id, column in rows]

    def attachment_count(self, annotation_id: int) -> int:
        """How many distinct base rows the annotation attaches to."""
        row = self._db.fetch_one(
            f"""
            SELECT COUNT(DISTINCT table_name || '/' || row_id)
            FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?
            """,
            (annotation_id,),
        )
        assert row is not None
        return row[0]

    def annotations_for_row(
        self, table: str, row_id: int
    ) -> list[tuple[Annotation, frozenset[str]]]:
        """Annotations on a base row with their attached column sets."""
        rows = self._db.fetch_all(
            f"""
            SELECT a.annotation_id, a.body, a.author, a.created_at, a.kind,
                   a.title, t.column_name
            FROM {_ANNOTATIONS_TABLE} a
            JOIN {_ATTACHMENTS_TABLE} t ON a.annotation_id = t.annotation_id
            WHERE t.table_name = ? AND t.row_id = ?
            ORDER BY a.annotation_id
            """,
            (table, row_id),
        )
        results: list[tuple[Annotation, frozenset[str]]] = []
        for annotation_id, group in itertools.groupby(rows, key=lambda r: r[0]):
            grouped = list(group)
            annotation = _annotation_from_row(grouped[0][:6])
            columns = frozenset(entry[6] for entry in grouped)
            results.append((annotation, columns))
        return results

    def attachments_for_row(
        self, table: str, row_id: int
    ) -> dict[int, frozenset[str]]:
        """Annotation id -> attached columns for a base row.

        Unlike :meth:`annotations_for_row` this never touches the
        annotation bodies — it is the query-time path, which must stay
        proportional to the *number* of annotations, not their size.
        """
        rows = self._db.fetch_all(
            f"""
            SELECT annotation_id, column_name FROM {_ATTACHMENTS_TABLE}
            WHERE table_name = ? AND row_id = ?
            ORDER BY annotation_id
            """,
            (table, row_id),
        )
        attachments: dict[int, set[str]] = {}
        for annotation_id, column in rows:
            attachments.setdefault(annotation_id, set()).add(column)
        return {
            annotation_id: frozenset(columns)
            for annotation_id, columns in attachments.items()
        }

    def attachments_for_rows(
        self, table: str, row_ids: Sequence[int]
    ) -> dict[int, dict[int, frozenset[str]]]:
        """Bulk :meth:`attachments_for_row` for a block of base rows.

        One SQL query per chunk of ``row_ids`` instead of one per row —
        the scan operator's prefetch path.  Every requested row id is
        present in the result; rows without annotations map to ``{}``.
        """
        per_row: dict[int, dict[int, set[str]]] = {
            row_id: {} for row_id in row_ids
        }
        distinct = sorted(per_row)
        # Chunked IN-lists keep us under SQLite's bound-variable limit.
        for chunk_start in range(0, len(distinct), 500):
            chunk = distinct[chunk_start : chunk_start + 500]
            marks = placeholders(len(chunk))
            rows = self._db.fetch_all(
                f"""
                SELECT row_id, annotation_id, column_name
                FROM {_ATTACHMENTS_TABLE}
                WHERE table_name = ? AND row_id IN ({marks})
                """,
                (table, *chunk),
            )
            for row_id, annotation_id, column in rows:
                per_row[row_id].setdefault(annotation_id, set()).add(column)
        return {
            row_id: {
                annotation_id: frozenset(columns)
                for annotation_id, columns in attachments.items()
            }
            for row_id, attachments in per_row.items()
        }

    def annotation_ids_for_row(self, table: str, row_id: int) -> set[int]:
        """Ids of all annotations attached to a base row."""
        rows = self._db.fetch_all(
            f"""
            SELECT DISTINCT annotation_id FROM {_ATTACHMENTS_TABLE}
            WHERE table_name = ? AND row_id = ?
            """,
            (table, row_id),
        )
        return {row[0] for row in rows}

    def rows_for_annotation(self, annotation_id: int) -> set[tuple[str, int]]:
        """``(table, row_id)`` pairs the annotation attaches to."""
        rows = self._db.fetch_all(
            f"""
            SELECT DISTINCT table_name, row_id FROM {_ATTACHMENTS_TABLE}
            WHERE annotation_id = ?
            """,
            (annotation_id,),
        )
        return {(table, row_id) for table, row_id in rows}


def _annotation_from_row(row: Sequence[object]) -> Annotation:
    annotation_id, body, author, created_at, kind, title = row
    return Annotation(
        annotation_id=int(annotation_id),  # type: ignore[arg-type]
        text=str(body),
        author=str(author),
        created_at=float(created_at),  # type: ignore[arg-type]
        kind=AnnotationKind(kind),
        title=str(title),
    )
