"""Raw annotation storage with cell-level attachments.

Annotations are stored once and attached to any number of cells — possibly
across tuples and tables (the same observation may apply to several birds).
The attachment table is indexed both ways: by annotation (for projection
semantics and deletion) and by cell (for summarization and zoom-in).

Under a sharded backend an annotation's body and its attachment edges
are **co-located** on ``shard_of_annotation(annotation_id)``, which
slices the id space into blocks so a bulk batch of consecutive ids
lands on one shard (two at a block boundary).  That is the write path's
affinity: concurrent ingest threads commit whole batches on *disjoint*
shard locks instead of scattering every batch over every shard.  The
price is paid by per-row attachment lookups, which fan out across
shards — an acceptable trade, because the hot block-fetch path
(``attachments_for_rows``) already touches every shard either way: a
block of consecutive rowids hashes onto all of them.

Ids come from a small sequence table on the meta shard, reserved in
per-thread runs so the sequence row is touched once per run rather than
once per batch.  The sequence is never decremented, preserving
AUTOINCREMENT's no-reuse rule (a deleted annotation's id is never
recycled) across shard files — but, like any cached sequence, ids may
skip a partial run when a writer thread retires or the store reopens.
Within one thread ids stay contiguous, so a sequential history produces
exactly the ids the single-file path would.  The single-file path keeps
SQLite's own AUTOINCREMENT assignment untouched.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.concurrency import make_lock
from repro.errors import AnnotationError, UnknownAnnotationError
from repro.model.annotation import Annotation, AnnotationKind
from repro.model.cell import CellRef
from repro.storage.backend import META_SHARD
from repro.storage.database import Database
from repro.storage.schema import SYSTEM_PREFIX
from repro.storage.sqlsafe import placeholders

_ANNOTATIONS_TABLE = f"{SYSTEM_PREFIX}annotations"
_ATTACHMENTS_TABLE = f"{SYSTEM_PREFIX}attachments"
_IDSEQ_TABLE = f"{SYSTEM_PREFIX}idseq"

#: Sharded stores reserve annotation ids from the meta shard in runs of
#: this size per thread, so bulk ingest touches the sequence row once
#: per run instead of once per batch (the sequence transaction is the
#: one write every ingest thread would otherwise queue on).  Equal to
#: ``ANNOTATION_BLOCK`` so one granted run covers exactly one placement
#: block: every batch cut from a run lands on a single shard.
_ID_RUN = 128


@dataclass(frozen=True)
class AnnotationDraft:
    """One not-yet-stored annotation, as the bulk insert path takes it.

    A plain value object mirroring :meth:`AnnotationStore.add`'s
    parameters, so a whole batch can be validated up front and written
    with two ``executemany`` calls in a single transaction.
    """

    text: str
    cells: tuple[CellRef, ...]
    author: str = "anonymous"
    kind: AnnotationKind = AnnotationKind.COMMENT
    title: str = ""
    created_at: float | None = None

    def __post_init__(self) -> None:
        # Accept any sequence of cells; store a tuple.
        object.__setattr__(self, "cells", tuple(self.cells))


class AnnotationStore:
    """Persistent store of raw annotations and their attachments."""

    def __init__(self, database: Database) -> None:
        self._db = database
        for shard in range(database.shard_count):
            with database.transaction(shard) as connection:
                connection.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {_ANNOTATIONS_TABLE} (
                        annotation_id INTEGER PRIMARY KEY AUTOINCREMENT,
                        body TEXT NOT NULL,
                        author TEXT NOT NULL,
                        created_at REAL NOT NULL,
                        kind TEXT NOT NULL,
                        title TEXT NOT NULL DEFAULT ''
                    )
                    """
                )
                connection.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {_ATTACHMENTS_TABLE} (
                        annotation_id INTEGER NOT NULL,
                        table_name TEXT NOT NULL,
                        row_id INTEGER NOT NULL,
                        column_name TEXT NOT NULL,
                        PRIMARY KEY (annotation_id, table_name, row_id, column_name)
                    )
                    """
                )
                connection.execute(
                    f"""
                    CREATE INDEX IF NOT EXISTS {_ATTACHMENTS_TABLE}_by_cell
                    ON {_ATTACHMENTS_TABLE} (table_name, row_id)
                    """
                )
        # Per-thread cached id runs (see _reserve_ids); the lock guards
        # the meta-shard sequence row against concurrent run grants.
        self._id_local = threading.local()
        self._id_lock = make_lock("annotations.id_sequence", guards_io=True)
        if database.shard_count > 1:
            with database.transaction(META_SHARD) as connection:
                connection.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {_IDSEQ_TABLE} (
                        name TEXT PRIMARY KEY,
                        seq INTEGER NOT NULL
                    )
                    """
                )
            # Reopening an existing store: the sequence must start past
            # every annotation id already persisted on any shard.
            max_id = 0
            for shard in range(database.shard_count):
                row = database.fetch_one(
                    f"SELECT COALESCE(MAX(annotation_id), 0) "
                    f"FROM {_ANNOTATIONS_TABLE}",
                    shard=shard,
                )
                assert row is not None
                max_id = max(max_id, row[0])
            if max_id:
                self._pin_id(max_id)

    # -- shard routing ------------------------------------------------

    def _ann_shard(self, annotation_id: int) -> int:
        return self._db.backend.shard_of_annotation(annotation_id)

    def _all_shards(self) -> range:
        return range(self._db.shard_count)

    def _validate_cells(self, cells: Sequence[CellRef]) -> None:
        if not cells:
            raise AnnotationError(
                "an annotation must attach to at least one cell"
            )
        for cell in cells:
            schema = self._db.schema(cell.table)
            if not schema.has_column(cell.column):
                raise AnnotationError(
                    f"cannot attach to unknown column {cell.table}.{cell.column}"
                )

    # -- id allocation (sharded) ---------------------------------------

    def _reserve_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive annotation ids; returns the first.

        Ids come out of a per-thread cached run (granted in
        :data:`_ID_RUN`-sized slices from the meta-shard sequence row),
        so most batches reserve without touching SQLite at all — the
        sequence transaction is the one write every ingest thread would
        otherwise serialize on.  When a run is exhausted it is extended
        *contiguously* whenever no other thread reserved in between, so
        a single-threaded history yields the exact gap-free ids the
        single-file AUTOINCREMENT path assigns.  The sequence row is
        never decremented — like ``sqlite_sequence``, deleting the max
        annotation never recycles its id — but a partial run is dropped
        when its thread retires or the store reopens, so ids may skip
        (the standard cached-sequence caveat).
        """
        state = self._id_local
        next_id = getattr(state, "next_id", 0)
        top = getattr(state, "top", -1)
        if top - next_id + 1 >= count:
            state.next_id = next_id + count
            return next_id
        with self._id_lock, self._db.transaction(META_SHARD) as connection:
            row = connection.execute(
                f"SELECT seq FROM {_IDSEQ_TABLE} WHERE name = ?",
                (_ANNOTATIONS_TABLE,),
            ).fetchone()
            current = row[0] if row is not None else 0
            available = top - next_id + 1
            if available > 0 and top == current:
                # Our run still ends the sequence: extend it in place so
                # the remaining cached ids stay usable with no gap.
                first = next_id
            else:
                first = current + 1
                available = 0
            grant = max(_ID_RUN, count - available)
            connection.execute(
                f"INSERT INTO {_IDSEQ_TABLE} (name, seq) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET seq = excluded.seq",
                (_ANNOTATIONS_TABLE, current + grant),
            )
            state.next_id = first + count
            state.top = current + grant
            return first

    def _pin_id(self, annotation_id: int) -> None:
        """Raise the sequence floor past an explicitly pinned id.

        Also invalidates this thread's cached run when the pinned id
        lands inside or beyond it, so later reservations never re-issue
        the pinned id.  (A pin landing inside *another* thread's
        outstanding run is not detectable — explicit-id imports must not
        run concurrently with bulk ingest, as documented on :meth:`add`.)
        """
        with self._id_lock, self._db.transaction(META_SHARD) as connection:
            connection.execute(
                f"INSERT INTO {_IDSEQ_TABLE} (name, seq) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "seq = MAX(seq, excluded.seq)",
                (_ANNOTATIONS_TABLE, annotation_id),
            )
            state = self._id_local
            if annotation_id >= getattr(state, "next_id", 0):
                state.next_id = annotation_id + 1
                state.top = max(getattr(state, "top", -1), annotation_id)

    # -- writes -----------------------------------------------------

    def add(
        self,
        text: str,
        cells: Sequence[CellRef],
        author: str = "anonymous",
        kind: AnnotationKind = AnnotationKind.COMMENT,
        title: str = "",
        created_at: float | None = None,
        annotation_id: int | None = None,
    ) -> Annotation:
        """Store an annotation attached to ``cells``; returns it with id.

        At least one cell is required — a dangling annotation would never
        be summarized, propagated, or reachable by zoom-in.  An explicit
        ``annotation_id`` pins the id (import tooling must reproduce ids
        exactly, gaps included); on a sharded store, explicit-id imports
        must not run concurrently with bulk ingest — a pinned id cannot
        be evicted from another thread's already-reserved id run.
        """
        self._validate_cells(cells)
        timestamp = time.time() if created_at is None else created_at
        if self._db.shard_count > 1:
            return self._add_sharded(
                text, cells, author, kind, title, timestamp, annotation_id
            )
        with self._db.transaction() as connection:
            if annotation_id is None:
                cursor = connection.execute(
                    f"""
                    INSERT INTO {_ANNOTATIONS_TABLE}
                        (body, author, created_at, kind, title)
                    VALUES (?, ?, ?, ?, ?)
                    """,
                    (text, author, timestamp, kind.value, title),
                )
                annotation_id = cursor.lastrowid
                assert annotation_id is not None
            else:
                connection.execute(
                    f"""
                    INSERT INTO {_ANNOTATIONS_TABLE}
                        (annotation_id, body, author, created_at, kind, title)
                    VALUES (?, ?, ?, ?, ?, ?)
                    """,
                    (annotation_id, text, author, timestamp, kind.value, title),
                )
            connection.executemany(
                f"""
                INSERT OR IGNORE INTO {_ATTACHMENTS_TABLE}
                    (annotation_id, table_name, row_id, column_name)
                VALUES (?, ?, ?, ?)
                """,
                [
                    (annotation_id, cell.table, cell.row_id, cell.column)
                    for cell in cells
                ],
            )
        return Annotation(
            annotation_id=annotation_id,
            text=text,
            author=author,
            created_at=timestamp,
            kind=kind,
            title=title,
        )

    def _add_sharded(
        self,
        text: str,
        cells: Sequence[CellRef],
        author: str,
        kind: AnnotationKind,
        title: str,
        timestamp: float,
        annotation_id: int | None,
    ) -> Annotation:
        if annotation_id is None:
            annotation_id = self._reserve_ids(1)
        else:
            self._pin_id(annotation_id)
        annotation_row = (
            annotation_id, text, author, timestamp, kind.value, title
        )
        self._write_fanout([annotation_row], [
            (annotation_id, cell.table, cell.row_id, cell.column)
            for cell in cells
        ])
        return Annotation(
            annotation_id=annotation_id,
            text=text,
            author=author,
            created_at=timestamp,
            kind=kind,
            title=title,
        )

    def add_many(self, drafts: Sequence[AnnotationDraft]) -> list[Annotation]:
        """Bulk :meth:`add`: the whole batch lands in one transaction.

        Ids are assigned contiguously in draft order, so a batch produces
        exactly the ids a loop of single adds would.  The batch is
        validated up front and written with one ``executemany`` per table
        — two statements' worth of Python/SQLite boundary crossings
        instead of two per annotation.  Single-file, the batch is
        all-or-nothing; sharded, the batch's consecutive ids give it a
        home shard (two at a block boundary), each sub-batch commits in
        one per-shard transaction, and atomicity is per shard — see
        DESIGN.md §11 for the cross-shard caveat.
        """
        if not drafts:
            return []
        for draft in drafts:
            self._validate_cells(draft.cells)
        now = time.time()
        annotations: list[Annotation] = []
        annotation_rows: list[tuple[int, str, str, float, str, str]] = []
        attachment_rows: list[tuple[int, str, int, str]] = []

        def build(next_id: int) -> None:
            for offset, draft in enumerate(drafts):
                annotation_id = next_id + offset
                timestamp = (
                    now if draft.created_at is None else draft.created_at
                )
                annotation_rows.append(
                    (
                        annotation_id,
                        draft.text,
                        draft.author,
                        timestamp,
                        draft.kind.value,
                        draft.title,
                    )
                )
                attachment_rows.extend(
                    (annotation_id, cell.table, cell.row_id, cell.column)
                    for cell in draft.cells
                )
                annotations.append(
                    Annotation(
                        annotation_id=annotation_id,
                        text=draft.text,
                        author=draft.author,
                        created_at=timestamp,
                        kind=draft.kind,
                        title=draft.title,
                    )
                )

        if self._db.shard_count > 1:
            build(self._reserve_ids(len(drafts)))
            self._write_fanout(annotation_rows, attachment_rows)
            return annotations
        with self._db.transaction() as connection:
            # The id probe must run on the writer inside this transaction
            # (a pooled reader only sees already-committed state).
            build(self._next_annotation_id(connection))
            connection.executemany(
                f"""
                INSERT INTO {_ANNOTATIONS_TABLE}
                    (annotation_id, body, author, created_at, kind, title)
                VALUES (?, ?, ?, ?, ?, ?)
                """,
                annotation_rows,
            )
            connection.executemany(
                f"""
                INSERT OR IGNORE INTO {_ATTACHMENTS_TABLE}
                    (annotation_id, table_name, row_id, column_name)
                VALUES (?, ?, ?, ?)
                """,
                attachment_rows,
            )
        return annotations

    def _write_fanout(
        self,
        annotation_rows: Sequence[tuple[int, str, str, float, str, str]],
        attachment_rows: Sequence[tuple[int, str, int, str]],
    ) -> None:
        """Commit one logical batch as per-shard sub-transactions.

        Bodies and attachments both group by the annotation id's shard
        (they are co-located), so a batch of consecutive ids produces
        one transaction — two at a block boundary — executed inline by
        the calling thread; only wide batches fan out onto the backend's
        writer pool.  Concurrent ingest threads therefore commit on
        disjoint shard locks instead of all queueing on every shard.
        """
        bodies: dict[int, list[tuple[int, str, str, float, str, str]]] = {}
        for annotation_row in annotation_rows:
            shard = self._ann_shard(annotation_row[0])
            bodies.setdefault(shard, []).append(annotation_row)
        attachments: dict[int, list[tuple[int, str, int, str]]] = {}
        for attachment_row in attachment_rows:
            shard = self._ann_shard(attachment_row[0])
            attachments.setdefault(shard, []).append(attachment_row)

        def write_shard(shard: int) -> Callable[[], None]:
            def thunk() -> None:
                with self._db.transaction(shard) as connection:
                    if shard in bodies:
                        connection.executemany(
                            f"""
                            INSERT INTO {_ANNOTATIONS_TABLE}
                                (annotation_id, body, author, created_at,
                                 kind, title)
                            VALUES (?, ?, ?, ?, ?, ?)
                            """,
                            bodies[shard],
                        )
                    if shard in attachments:
                        connection.executemany(
                            f"""
                            INSERT OR IGNORE INTO {_ATTACHMENTS_TABLE}
                                (annotation_id, table_name, row_id,
                                 column_name)
                            VALUES (?, ?, ?, ?)
                            """,
                            attachments[shard],
                        )

            return thunk

        touched = sorted(set(bodies) | set(attachments))
        self._db.backend.run_write_fanout(
            [write_shard(shard) for shard in touched]
        )

    def _next_annotation_id(self, connection: sqlite3.Connection) -> int:
        """First free annotation id, honouring AUTOINCREMENT's no-reuse rule.

        The sqlite_sequence entry outlives deletions of the max row, so a
        bulk insert never recycles the id of a deleted annotation (which
        stale summary references might still name).  The MAX() fallback
        covers explicitly pinned ids that may run ahead of the sequence.
        Runs on the caller's (writer) connection: the probe sits inside
        the batch's open transaction and must see its uncommitted state.
        """
        try:
            row = connection.execute(
                "SELECT seq FROM sqlite_sequence WHERE name = ?",
                (_ANNOTATIONS_TABLE,),
            ).fetchone()
        except sqlite3.OperationalError:  # no AUTOINCREMENT insert yet
            row = None
        sequence = row[0] if row is not None else 0
        (max_id,) = connection.execute(
            f"SELECT COALESCE(MAX(annotation_id), 0) FROM {_ANNOTATIONS_TABLE}"
        ).fetchone()
        return max(sequence, max_id) + 1

    def update(
        self,
        annotation_id: int,
        text: str | None = None,
        title: str | None = None,
    ) -> Annotation:
        """Rewrite an annotation's body and/or title; returns the result.

        The id, author, timestamp, kind, and attachments are preserved, so
        references from summaries and zoom-in stay valid — the caller is
        responsible for re-summarizing (see
        :meth:`repro.engine.session.InsightNotes.update_annotation`).
        """
        current = self.get(annotation_id)  # raises for unknown ids
        new_text = current.text if text is None else text
        new_title = current.title if title is None else title
        with self._db.transaction(self._ann_shard(annotation_id)) as connection:
            connection.execute(
                f"""
                UPDATE {_ANNOTATIONS_TABLE} SET body = ?, title = ?
                WHERE annotation_id = ?
                """,
                (new_text, new_title, annotation_id),
            )
        return Annotation(
            annotation_id=annotation_id,
            text=new_text,
            author=current.author,
            created_at=current.created_at,
            kind=current.kind,
            title=new_title,
        )

    def detach_row(self, annotation_id: int, table: str, row_id: int) -> None:
        """Remove one annotation's attachments to a single base row.

        Used when a base row is deleted but the annotation also covers
        other rows and must survive there.  One transaction on the
        annotation's home shard, where all its attachments live.
        """
        with self._db.transaction(self._ann_shard(annotation_id)) as connection:
            connection.execute(
                f"""
                DELETE FROM {_ATTACHMENTS_TABLE}
                WHERE annotation_id = ? AND table_name = ? AND row_id = ?
                """,
                (annotation_id, table, row_id),
            )

    def delete(self, annotation_id: int) -> None:
        """Remove an annotation and all its attachments.

        Body and attachments are co-located, so the purge is one
        transaction on the annotation's home shard.
        """
        self.get(annotation_id)  # raises for unknown ids
        with self._db.transaction(self._ann_shard(annotation_id)) as connection:
            connection.execute(
                f"DELETE FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?",
                (annotation_id,),
            )
            connection.execute(
                f"DELETE FROM {_ANNOTATIONS_TABLE} WHERE annotation_id = ?",
                (annotation_id,),
            )

    # -- reads --------------------------------------------------------

    def get(self, annotation_id: int) -> Annotation:
        """Fetch one annotation or raise :class:`UnknownAnnotationError`."""
        row = self._db.fetch_one(
            f"""
            SELECT annotation_id, body, author, created_at, kind, title
            FROM {_ANNOTATIONS_TABLE} WHERE annotation_id = ?
            """,
            (annotation_id,),
            shard=self._ann_shard(annotation_id),
        )
        if row is None:
            raise UnknownAnnotationError(annotation_id)
        return _annotation_from_row(row)

    def get_many(self, annotation_ids: Iterable[int]) -> list[Annotation]:
        """Fetch annotations by id, in ascending id order.

        Unknown ids raise, matching :meth:`get` — zoom-in must never
        silently return fewer annotations than a summary promised.
        Sharded stores group the ids by home shard first, so each chunk
        is a single-shard IN-list.
        """
        wanted = sorted(set(annotation_ids))
        by_shard: dict[int, list[int]] = {}
        for annotation_id in wanted:
            by_shard.setdefault(self._ann_shard(annotation_id), []).append(
                annotation_id
            )
        found: dict[int, Annotation] = {}
        for shard in sorted(by_shard):
            ids = by_shard[shard]
            # Chunked IN-lists keep us under SQLite's bound-variable limit.
            for chunk_start in range(0, len(ids), 500):
                chunk = ids[chunk_start : chunk_start + 500]
                marks = placeholders(len(chunk))
                rows = self._db.fetch_all(
                    f"""
                    SELECT annotation_id, body, author, created_at, kind, title
                    FROM {_ANNOTATIONS_TABLE}
                    WHERE annotation_id IN ({marks})
                    ORDER BY annotation_id
                    """,
                    chunk,
                    shard=shard,
                )
                for row in rows:
                    found[row[0]] = _annotation_from_row(row)
        missing = next((i for i in wanted if i not in found), None)
        if missing is not None:
            raise UnknownAnnotationError(missing)
        return [found[annotation_id] for annotation_id in wanted]

    def count(self) -> int:
        """Total number of stored annotations."""
        total = 0
        for shard in self._all_shards():
            row = self._db.fetch_one(
                f"SELECT COUNT(*) FROM {_ANNOTATIONS_TABLE}", shard=shard
            )
            assert row is not None
            total += row[0]
        return total

    def total_text_bytes(self) -> int:
        """Total size of all annotation bodies (storage benchmark)."""
        total = 0
        for shard in self._all_shards():
            row = self._db.fetch_one(
                f"SELECT COALESCE(SUM(LENGTH(body)), 0) "
                f"FROM {_ANNOTATIONS_TABLE}",
                shard=shard,
            )
            assert row is not None
            total += row[0]
        return total

    def table_attachment_count(self, table: str) -> int:
        """Attachment rows targeting ``table`` (planner statistics)."""
        total = 0
        for shard in self._all_shards():
            row = self._db.fetch_one(
                f"SELECT COUNT(*) FROM {_ATTACHMENTS_TABLE} "
                "WHERE table_name = ?",
                (table,),
                shard=shard,
            )
            assert row is not None
            total += row[0]
        return total

    def table_has_attachments(self, table: str) -> bool:
        """Whether any annotation attaches to ``table``.

        The planner's summary-aware aggregation pushdown must keep the
        in-engine path whenever hydration could contribute summaries
        *or* attachments; this is the cheap existence probe for the
        latter (the by_cell index makes it an index seek).
        """
        for shard in self._all_shards():
            row = self._db.fetch_one(
                f"SELECT 1 FROM {_ATTACHMENTS_TABLE} "
                "WHERE table_name = ? LIMIT 1",
                (table,),
                shard=shard,
            )
            if row is not None:
                return True
        return False

    def iter_all(self) -> Iterator[Annotation]:
        """Iterate over every stored annotation in id order."""
        rows: list[tuple] = []
        for shard in self._all_shards():
            rows.extend(
                self._db.fetch_all(
                    f"""
                    SELECT annotation_id, body, author, created_at, kind, title
                    FROM {_ANNOTATIONS_TABLE} ORDER BY annotation_id
                    """,
                    shard=shard,
                )
            )
        rows.sort(key=lambda row: row[0])
        for row in rows:
            yield _annotation_from_row(row)

    # -- attachment queries ----------------------------------------------

    def cells_of(self, annotation_id: int) -> list[CellRef]:
        """All cells the annotation is attached to.

        One query on the annotation's home shard, which carries all of
        its attachment edges.
        """
        rows = self._db.fetch_all(
            f"""
            SELECT table_name, row_id, column_name
            FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?
            ORDER BY table_name, row_id, column_name
            """,
            (annotation_id,),
            shard=self._ann_shard(annotation_id),
        )
        return [CellRef(table, row_id, column) for table, row_id, column in rows]

    def attachment_count(self, annotation_id: int) -> int:
        """How many distinct base rows the annotation attaches to."""
        row = self._db.fetch_one(
            f"""
            SELECT COUNT(DISTINCT table_name || '/' || row_id)
            FROM {_ATTACHMENTS_TABLE} WHERE annotation_id = ?
            """,
            (annotation_id,),
            shard=self._ann_shard(annotation_id),
        )
        assert row is not None
        return row[0]

    def annotations_for_row(
        self, table: str, row_id: int
    ) -> list[tuple[Annotation, frozenset[str]]]:
        """Annotations on a base row with their attached column sets.

        Single-file this is one JOIN; sharded it is two steps — collect
        the row's attachment edges (a fan-out, since each edge lives on
        its annotation's shard), then bulk-fetch the bodies per shard.
        """
        if self._db.shard_count > 1:
            attachments = self.attachments_for_row(table, row_id)
            return [
                (annotation, attachments[annotation.annotation_id])
                for annotation in self.get_many(attachments)
            ]
        rows = self._db.fetch_all(
            f"""
            SELECT a.annotation_id, a.body, a.author, a.created_at, a.kind,
                   a.title, t.column_name
            FROM {_ANNOTATIONS_TABLE} a
            JOIN {_ATTACHMENTS_TABLE} t ON a.annotation_id = t.annotation_id
            WHERE t.table_name = ? AND t.row_id = ?
            ORDER BY a.annotation_id
            """,
            (table, row_id),
        )
        results: list[tuple[Annotation, frozenset[str]]] = []
        for annotation_id, group in itertools.groupby(rows, key=lambda r: r[0]):
            grouped = list(group)
            annotation = _annotation_from_row(grouped[0][:6])
            columns = frozenset(entry[6] for entry in grouped)
            results.append((annotation, columns))
        return results

    def attachments_for_row(
        self, table: str, row_id: int
    ) -> dict[int, frozenset[str]]:
        """Annotation id -> attached columns for a base row.

        Unlike :meth:`annotations_for_row` this never touches the
        annotation bodies — it is the query-time path, which must stay
        proportional to the *number* of annotations, not their size.
        Attachments live with their annotation, so a single row's
        lookup asks every shard (each contributes the edges whose
        annotations it homes); single-file that is still one query.
        """
        attachments: dict[int, set[str]] = {}
        for shard in self._all_shards():
            rows = self._db.fetch_all(
                f"""
                SELECT annotation_id, column_name FROM {_ATTACHMENTS_TABLE}
                WHERE table_name = ? AND row_id = ?
                ORDER BY annotation_id
                """,
                (table, row_id),
                shard=shard,
            )
            for annotation_id, column in rows:
                attachments.setdefault(annotation_id, set()).add(column)
        return {
            annotation_id: frozenset(columns)
            for annotation_id, columns in attachments.items()
        }

    def attachments_for_rows(
        self, table: str, row_ids: Sequence[int]
    ) -> dict[int, dict[int, frozenset[str]]]:
        """Bulk :meth:`attachments_for_row` for a block of base rows.

        One SQL query per (shard, chunk) of ``row_ids`` instead of one
        per row — the scan operator's prefetch path.  Attachments live
        with their annotation, so every shard is asked for the whole
        block and contributes the edges it homes; a block of consecutive
        rowids would touch every shard under row-hashed placement too,
        so the statement count is the same and the write path keeps its
        batch affinity.  Every requested row id is present in the
        result; rows without annotations map to ``{}``.
        """
        per_row: dict[int, dict[int, set[str]]] = {
            row_id: {} for row_id in row_ids
        }
        distinct = sorted(per_row)
        for shard in self._all_shards():
            # Chunked IN-lists keep us under SQLite's bound-variable limit.
            for chunk_start in range(0, len(distinct), 500):
                chunk = distinct[chunk_start : chunk_start + 500]
                marks = placeholders(len(chunk))
                rows = self._db.fetch_all(
                    f"""
                    SELECT row_id, annotation_id, column_name
                    FROM {_ATTACHMENTS_TABLE}
                    WHERE table_name = ? AND row_id IN ({marks})
                    """,
                    (table, *chunk),
                    shard=shard,
                )
                for row_id, annotation_id, column in rows:
                    per_row[row_id].setdefault(annotation_id, set()).add(column)
        return {
            row_id: {
                annotation_id: frozenset(columns)
                for annotation_id, columns in attachments.items()
            }
            for row_id, attachments in per_row.items()
        }

    def annotation_ids_for_row(self, table: str, row_id: int) -> set[int]:
        """Ids of all annotations attached to a base row (a fan-out —
        each shard contributes the edges whose annotations it homes)."""
        ids: set[int] = set()
        for shard in self._all_shards():
            rows = self._db.fetch_all(
                f"""
                SELECT DISTINCT annotation_id FROM {_ATTACHMENTS_TABLE}
                WHERE table_name = ? AND row_id = ?
                """,
                (table, row_id),
                shard=shard,
            )
            ids.update(row[0] for row in rows)
        return ids

    def rows_for_annotation(self, annotation_id: int) -> set[tuple[str, int]]:
        """``(table, row_id)`` pairs the annotation attaches to — one
        query on the annotation's home shard."""
        rows = self._db.fetch_all(
            f"""
            SELECT DISTINCT table_name, row_id FROM {_ATTACHMENTS_TABLE}
            WHERE annotation_id = ?
            """,
            (annotation_id,),
            shard=self._ann_shard(annotation_id),
        )
        return {(table, row_id) for table, row_id in rows}


def _annotation_from_row(row: Sequence[object]) -> Annotation:
    annotation_id, body, author, created_at, kind, title = row
    return Annotation(
        annotation_id=int(annotation_id),  # type: ignore[arg-type]
        text=str(body),
        author=str(author),
        created_at=float(created_at),  # type: ignore[arg-type]
        kind=AnnotationKind(kind),
        title=str(title),
    )
