"""Vetted SQL-construction helpers.

The engine's SQL-safety invariant (enforced by insightlint rule IN003,
DESIGN.md §10) is *parameterized-only* SQL: dynamic **values** travel as
``?`` bindings, never as string fragments.  SQLite cannot parameterize
**identifiers** (table and column names) or the arity of an ``IN`` list,
though — those two cases, and only those two, go through this module:

* :func:`quote_ident` — one validated, double-quoted identifier;
* :func:`quoted_csv` — a comma-separated list of quoted identifiers
  (column lists in DDL and INSERT);
* :func:`placeholders` — ``?, ?, ...`` marks for an ``IN`` list or a
  VALUES row.

insightlint recognizes calls to these helpers (by name) inside SQL
f-strings as safe; everything else interpolated into an ``execute*()``
argument is a finding.  Keeping the allowed surface this small is the
point: a reviewer only ever has to re-verify three tiny functions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import StorageError


def quote_ident(name: str) -> str:
    """``name`` as a double-quoted SQL identifier, validated.

    Doubling embedded quotes is SQLite's escape rule, so any name SQLite
    accepts round-trips; NUL bytes can never be part of an identifier
    and are rejected outright rather than silently truncated at the C
    layer.
    """
    if not isinstance(name, str):
        raise StorageError(f"identifier must be a string, got {name!r}")
    if not name:
        raise StorageError("identifier must not be empty")
    if "\x00" in name:
        raise StorageError(f"identifier contains a NUL byte: {name!r}")
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def quoted_csv(names: Iterable[str]) -> str:
    """Comma-separated :func:`quote_ident` of every name, in order."""
    return ", ".join(quote_ident(name) for name in names)


def placeholders(count: int) -> str:
    """``count`` comma-separated ``?`` marks (``IN`` lists, VALUES rows)."""
    if count < 1:
        raise StorageError(f"placeholder count must be >= 1, got {count}")
    return ", ".join(["?"] * count)
