"""Vetted SQL-construction helpers.

The engine's SQL-safety invariant (enforced by insightlint rule IN003,
DESIGN.md §10) is *parameterized-only* SQL: dynamic **values** travel as
``?`` bindings, never as string fragments.  SQLite cannot parameterize
**identifiers** (table and column names) or the arity of an ``IN`` list,
though — those two cases, and only those two, go through this module:

* :func:`quote_ident` — one validated, double-quoted identifier;
* :func:`quoted_csv` — a comma-separated list of quoted identifiers
  (column lists in DDL and INSERT);
* :func:`placeholders` — ``?, ?, ...`` marks for an ``IN`` list or a
  VALUES row;
* :func:`aggregate_select` — the SELECT list of a pushed-down
  aggregation: quoted key columns followed by SQL aggregate calls over
  quoted (or ``*``) arguments, the aggregate function names restricted
  to a fixed allow-list.

insightlint recognizes calls to these helpers (by name) inside SQL
f-strings as safe; everything else interpolated into an ``execute*()``
argument is a finding.  Keeping the allowed surface this small is the
point: a reviewer only ever has to re-verify three tiny functions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import StorageError


def quote_ident(name: str) -> str:
    """``name`` as a double-quoted SQL identifier, validated.

    Doubling embedded quotes is SQLite's escape rule, so any name SQLite
    accepts round-trips; NUL bytes can never be part of an identifier
    and are rejected outright rather than silently truncated at the C
    layer.
    """
    if not isinstance(name, str):
        raise StorageError(f"identifier must be a string, got {name!r}")
    if not name:
        raise StorageError("identifier must not be empty")
    if "\x00" in name:
        raise StorageError(f"identifier contains a NUL byte: {name!r}")
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def quoted_csv(names: Iterable[str]) -> str:
    """Comma-separated :func:`quote_ident` of every name, in order."""
    return ", ".join(quote_ident(name) for name in names)


def placeholders(count: int) -> str:
    """``count`` comma-separated ``?`` marks (``IN`` lists, VALUES rows)."""
    if count < 1:
        raise StorageError(f"placeholder count must be >= 1, got {count}")
    return ", ".join(["?"] * count)


#: SQL aggregate functions the engine may push into storage.  The
#: planner only ever emits names from the dialect's aggregate grammar,
#: but the allow-list keeps this helper safe independent of its caller.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def aggregate_select(
    key_columns: Iterable[str],
    aggregates: Iterable[tuple[str, str | None]],
) -> str:
    """SELECT list of a pushed-down aggregation, fully quoted.

    ``key_columns`` become leading quoted identifiers (the GROUP BY
    keys); each ``(function, column)`` aggregate renders as
    ``function(column)`` with the column quoted, or ``function(*)``
    when ``column`` is None (``count(*)``).  Functions outside
    :data:`AGGREGATE_FUNCTIONS` are rejected — identifiers are the only
    dynamic text, and every one goes through :func:`quote_ident`.
    """
    parts = [quote_ident(name) for name in key_columns]
    for function, column in aggregates:
        if function not in AGGREGATE_FUNCTIONS:
            raise StorageError(
                f"aggregate function not allowed in SQL: {function!r}"
            )
        argument = "*" if column is None else quote_ident(column)
        parts.append(f"{function}({argument})")
    if not parts:
        raise StorageError("aggregate select list must not be empty")
    return ", ".join(parts)
