"""SQLite-backed storage layer.

Hosts the three persistent stores of InsightNotes:

* :class:`~repro.storage.database.Database` — the user's base relations.
* :class:`~repro.storage.annotations.AnnotationStore` — raw annotations
  and their cell-level attachments.
* :class:`~repro.storage.catalog.SummaryCatalog` — summary instance
  definitions, instance-to-relation links, and the persisted per-tuple
  summary state objects.

All three share one SQLite connection (file-backed or in-memory), so a
single database file holds the data, the metadata, and the summaries.
"""

from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.storage.schema import TableSchema

__all__ = ["AnnotationStore", "Database", "SummaryCatalog", "TableSchema"]
