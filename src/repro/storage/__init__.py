"""SQLite-backed storage layer.

Hosts the three persistent stores of InsightNotes:

* :class:`~repro.storage.database.Database` — the user's base relations.
* :class:`~repro.storage.annotations.AnnotationStore` — raw annotations
  and their cell-level attachments.
* :class:`~repro.storage.catalog.SummaryCatalog` — summary instance
  definitions, instance-to-relation links, and the persisted per-tuple
  summary state objects.

All three share one :class:`~repro.storage.backend.StorageBackend` — by
default a :class:`~repro.storage.backend.SingleFileBackend` (one SQLite
file holds the data, the metadata, and the summaries), or a
:class:`~repro.storage.sharded.ShardedBackend` that hash-partitions the
same layout across N files with per-shard writers.
"""

from repro.storage.annotations import AnnotationStore
from repro.storage.backend import SingleFileBackend, StorageBackend
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.storage.schema import TableSchema
from repro.storage.sharded import ShardedBackend

__all__ = [
    "AnnotationStore",
    "Database",
    "ShardedBackend",
    "SingleFileBackend",
    "StorageBackend",
    "SummaryCatalog",
    "TableSchema",
]
