"""EXP-S1 — Storage overhead of summaries vs. raw annotations.

For the paper's annotation ratios, compares the serialized size of the
persisted summary state (all instances, including the maintenance-time
heavy state) against the raw annotation text, and reports the
query-time payload (the stripped objects that actually travel through
plans).

Shape expected: raw text grows linearly with the ratio; the query-time
summary payload grows far slower (counts, ids, top-k previews); the
full persisted state sits in between (it keeps per-member vectors for
incremental clustering).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_RATIOS, write_report
from repro.workloads import WorkloadConfig, build_workload

_WORKLOADS: dict[int, object] = {}


def _workload(ratio: int):
    if ratio not in _WORKLOADS:
        _WORKLOADS[ratio] = build_workload(
            WorkloadConfig(
                num_birds=4,
                num_sightings=0,
                annotations_per_row=ratio,
                document_fraction=0.02,
                seed=37,
            )
        )
    return _WORKLOADS[ratio]


def _measure(ratio: int) -> tuple[int, int, int]:
    workload = _workload(ratio)
    session = workload.session
    raw_bytes = session.annotations.total_text_bytes()
    persisted_bytes = session.catalog.summary_bytes("birds")
    result = session.query("SELECT name, species, region, weight FROM birds")
    query_payload = sum(row.total_summary_size() for row in result.tuples)
    return raw_bytes, persisted_bytes, query_payload


@pytest.mark.parametrize("ratio", PAPER_RATIOS)
def test_storage_measurement(benchmark, ratio):
    benchmark.extra_info["ratio"] = ratio
    benchmark.pedantic(lambda: _measure(ratio), rounds=1, iterations=1)


def test_report_series(benchmark):
    rows = []
    payloads = {}
    raws = {}
    for ratio in PAPER_RATIOS:
        raw_bytes, persisted, payload = _measure(ratio)
        raws[ratio] = raw_bytes
        payloads[ratio] = payload
        rows.append(
            (
                f"{ratio}x",
                raw_bytes // 1024,
                persisted // 1024,
                payload // 1024,
                raw_bytes / max(1, payload),
            )
        )
    write_report(
        "exp_s1_storage",
        "EXP-S1: raw text vs persisted summary state vs query payload (KiB)",
        ["ratio", "raw KiB", "persisted KiB", "query payload KiB",
         "raw/query"],
        rows,
    )
    # Shape: the query payload compresses harder as the ratio grows.
    low = raws[PAPER_RATIOS[0]] / payloads[PAPER_RATIOS[0]]
    high = raws[PAPER_RATIOS[-1]] / payloads[PAPER_RATIOS[-1]]
    assert high > low
    assert all(
        raws[ratio] > payloads[ratio] for ratio in PAPER_RATIOS
    )
    benchmark(lambda: None)
