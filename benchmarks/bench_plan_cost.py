"""EXP-CP — Cost-based planning vs. the rule-based planner.

Sweeps the three plan shapes the cost planner rewrites, comparing the
rule-based pipeline (``cost_planner=False``) against the cost-driven
one (the current default) on identical data:

* ``join_3way`` — a three-way star join written in the worst FROM
  order (both dimensions before the fact table).  The rule planner
  joins left-to-right and materializes the dimension cross product —
  every intermediate tuple paying summary-merge cost — before the fact
  predicate prunes anything; the cost planner starts from the filtered
  fact table and avoids the cross product entirely.
* ``topk_agg`` — a top-k ``GROUP BY`` over a summary-free readings
  table at ~1% / ~10% / ~50% selectivity.  The cost planner pushes the
  whole aggregation into the storage engine (one SQL statement, group
  rows out), the rule planner streams every surviving base row through
  the in-engine operators.
* ``hydrate`` — the paper's 250x annotation ratio with a mixed
  residual predicate: a non-sargable value conjunct (column vs column,
  so it cannot be compiled into the scan) ANDed with a summary-function
  conjunct.  The rule planner hydrates every scanned row before
  filtering; the cost planner splits the residual and hydrates only
  the ~10% of rows the value conjunct keeps.

Both modes run with the deserialization cache off so hydration pays
its real storage cost, and each measured repeat drops the maintenance
caches first (the ``bench_query_pushdown`` discipline).  Results are
byte-identical across modes in every cell — the equivalence suite
(``tests/engine/test_cost_equivalence.py``) pins that property; this
benchmark records what the identical answers *cost*.

Reusable pieces (:func:`build_join_session`, :func:`build_topk_session`,
:func:`build_hydrate_session`, :func:`measure_plan_query`) are shared
with ``run_bench.py --bench plan``, which records the trajectory in
``BENCH_plan.json``.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from benchmarks.conftest import write_report
from repro.engine.session import InsightNotes

#: Planner configurations under comparison.  Everything else is the
#: session default; the object cache is off so every hydration pays its
#: storage cost (cache warmth is BENCH_scan's subject, not ours).
MODES = {
    "rule": {"cost_planner": False, "object_cache_size": 0},
    "cost": {"cost_planner": True, "object_cache_size": 0},
}

#: Target fraction of readings each top-k workload's predicate keeps.
SELECTIVITIES = {
    "sel_1pct": 0.01,
    "sel_10pct": 0.10,
    "sel_50pct": 0.50,
}


def _annotate_rows(
    session: InsightNotes,
    table: str,
    row_ids: list[int],
    per_row: int,
    rng: random.Random,
) -> None:
    """Attach ``per_row`` short comments to every row of ``table``."""
    phrases = (
        "observed feeding near the shore",
        "unusual plumage pattern today",
        "possible wing injury reported",
        "nesting behaviour in progress",
    )
    specs = [
        {
            "text": f"{rng.choice(phrases)} #{i}",
            "table": table,
            "row_id": row_id,
        }
        for row_id in row_ids
        for i in range(per_row)
    ]
    session.add_annotations(specs)


def build_join_session(
    mode: str,
    suppliers: int = 150,
    parts: int = 120,
    orders: int = 3000,
    annotations_per_dim_row: int = 3,
    seed: int = 29,
) -> InsightNotes:
    """A star schema whose dimensions carry summarized annotations."""
    session = InsightNotes(**MODES[mode])
    rng = random.Random(seed)
    session.create_table("suppliers", ["sname", "region"])
    session.create_table("parts", ["pname", "kind"])
    session.create_table("orders", ["supplier", "part", "qty"])
    supplier_ids = session.insert_many(
        "suppliers", [(f"s{i}", f"r{i % 5}") for i in range(suppliers)]
    )
    part_ids = session.insert_many(
        "parts", [(f"p{i}", f"k{i % 3}") for i in range(parts)]
    )
    session.insert_many(
        "orders",
        [
            (
                f"s{rng.randrange(suppliers)}",
                f"p{rng.randrange(parts)}",
                rng.randrange(10_000),
            )
            for _ in range(orders)
        ],
    )
    session.define_classifier(
        "DimClass",
        labels=["Behavior", "Anatomy", "Other"],
        training=[
            ("observed feeding near the shore", "Behavior"),
            ("unusual plumage pattern today", "Anatomy"),
        ],
    )
    session.link("DimClass", "suppliers")
    session.link("DimClass", "parts")
    _annotate_rows(
        session, "suppliers", supplier_ids, annotations_per_dim_row, rng
    )
    _annotate_rows(session, "parts", part_ids, annotations_per_dim_row, rng)
    session.analyze()
    return session


#: The worst FROM order: both dimensions before the fact table.  Rule
#: planning joins left-to-right, so suppliers x parts cross-multiply.
JOIN_SQL = (
    "SELECT s.sname, p.pname, o.qty FROM suppliers s, parts p, orders o "
    "WHERE s.sname = o.supplier AND p.pname = o.part AND o.qty > 9700"
)


def build_topk_session(
    mode: str, readings: int = 15_000, seed: int = 31
) -> InsightNotes:
    """A summary-free readings table for the aggregation pushdown."""
    session = InsightNotes(**MODES[mode])
    rng = random.Random(seed)
    session.create_table("readings", ["region", "sensor", "value"])
    session.insert_many(
        "readings",
        [
            (
                f"r{rng.randrange(12)}",
                f"s{rng.randrange(40)}",
                rng.randrange(1_000_000),
            )
            for _ in range(readings)
        ],
    )
    session.analyze()
    return session


def value_threshold(session: InsightNotes, fraction: float) -> int:
    """Value cutoff keeping ~``fraction`` of readings under ``value > t``."""
    values = sorted(
        (row[2] for _, row in session.db.rows("readings")), reverse=True
    )
    keep = max(1, round(fraction * len(values)))
    if keep >= len(values):
        return values[-1] - 1
    return (values[keep - 1] + values[keep]) // 2


def topk_sql(threshold: int) -> str:
    return (
        "SELECT region, count(*), sum(value) FROM readings "
        f"WHERE value > {threshold} "
        "GROUP BY region ORDER BY count(*) DESC LIMIT 5"
    )


def build_hydrate_session(
    mode: str, rows: int = 150, ratio: int = 250, seed: int = 37
) -> InsightNotes:
    """The 250x-annotated table behind the hydrate-placement workload.

    ``cut10`` holds the 10%-selectivity cutoff as a *column*, so
    ``value < cut10`` is column-vs-column — correct but not sargable,
    exactly the residual shape the hydrate split exists for.
    """
    session = InsightNotes(**MODES[mode])
    rng = random.Random(seed)
    session.create_table("obs", ["value", "cut10"])
    cutoff = max(1, rows // 10)
    row_ids = session.insert_many(
        "obs", [(i, cutoff) for i in range(rows)]
    )
    session.define_classifier(
        "ObsClass",
        labels=["Behavior", "Other"],
        training=[("observed feeding near the shore", "Behavior")],
    )
    session.link("ObsClass", "obs")
    _annotate_rows(session, "obs", row_ids, ratio, rng)
    session.analyze()
    return session


HYDRATE_SQL = (
    "SELECT value FROM obs WHERE value < cut10 "
    "AND SUMMARY_COUNT('ObsClass') >= 0"
)


def measure_plan_query(session: InsightNotes, sql: str, repeats: int) -> dict:
    """Timings plus statement/row counters for ``sql`` on ``session``."""
    samples = []
    for _ in range(repeats):
        # Cold-cache steady state for every run: plan quality is the
        # measured quantity, not leftover maintenance warmth.
        session.manager.drop_caches()
        started = time.perf_counter()
        session.query(sql)
        samples.append(time.perf_counter() - started)
    session.manager.drop_caches()
    with session.db.track_queries() as counter:
        result = session.query(sql)
    assert result.stats is not None
    return {
        "median_s": round(statistics.median(samples), 6),
        "statements": counter.count,
        "rows": len(result.tuples),
        "rows_scanned": result.stats.rows_scanned,
        "rows_hydrated": result.stats.rows_hydrated,
    }


# -- pytest-benchmark entry points -----------------------------------------

_BENCH_REPEATS = 3


@pytest.fixture(scope="module")
def plan_sessions():
    sessions = {
        mode: {
            "join": build_join_session(
                mode, suppliers=40, parts=30, orders=600
            ),
            "topk": build_topk_session(mode, readings=3000),
            "hydrate": build_hydrate_session(mode, rows=50, ratio=30),
        }
        for mode in MODES
    }
    yield sessions
    for per_mode in sessions.values():
        for session in per_mode.values():
            session.close()


@pytest.mark.parametrize("mode", sorted(MODES))
def test_plan_join_time(benchmark, plan_sessions, mode):
    session = plan_sessions[mode]["join"]
    benchmark.extra_info["mode"] = mode
    benchmark(lambda: session.query(JOIN_SQL))


@pytest.mark.parametrize("mode", sorted(MODES))
def test_plan_topk_time(benchmark, plan_sessions, mode):
    session = plan_sessions[mode]["topk"]
    sql = topk_sql(value_threshold(session, 0.10))
    benchmark.extra_info["mode"] = mode
    benchmark(lambda: session.query(sql))


@pytest.mark.parametrize("mode", sorted(MODES))
def test_plan_hydrate_time(benchmark, plan_sessions, mode):
    session = plan_sessions[mode]["hydrate"]
    benchmark.extra_info["mode"] = mode
    benchmark(lambda: session.query(HYDRATE_SQL))


def test_plan_cost_report(plan_sessions):
    """Series table: identical answers, rule vs cost plan economics."""
    rows = []
    for workload, sql_of in (
        ("join_3way", lambda s: JOIN_SQL),
        ("topk_10pct", lambda s: topk_sql(value_threshold(s, 0.10))),
        ("hydrate", lambda s: HYDRATE_SQL),
    ):
        key = {"join_3way": "join", "topk_10pct": "topk", "hydrate": "hydrate"}[
            workload
        ]
        cells = {}
        answers = {}
        for mode in MODES:
            session = plan_sessions[mode][key]
            sql = sql_of(session)
            cells[mode] = measure_plan_query(session, sql, _BENCH_REPEATS)
            answers[mode] = session.query(sql).rows()
        # Plan choice must never change the answer.
        assert answers["rule"] == answers["cost"]
        rule, cost = cells["rule"], cells["cost"]
        rows.append(
            [
                workload,
                cost["rows"],
                f"{rule['rows_hydrated']}/{rule['rows_scanned']}",
                f"{cost['rows_hydrated']}/{cost['rows_scanned']}",
                round(rule["median_s"] * 1000, 2),
                round(cost["median_s"] * 1000, 2),
                round(rule["median_s"] / max(cost["median_s"], 1e-9), 2),
            ]
        )
    write_report(
        "exp_cp_plan_cost",
        "EXP-CP: cost-based vs rule-based plans "
        "(hydrated/scanned rows and wall-clock)",
        ["workload", "rows", "hyd/scan rule", "hyd/scan cost",
         "rule ms", "cost ms", "speedup"],
        rows,
    )
