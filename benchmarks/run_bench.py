"""Perf-trajectory harness for the scan and ingest pipelines.

``--bench scan`` (the default) times the three scan-shaped workloads the
paper's evaluation leans on — full-table scan, SPJ propagation, and
group-by aggregation — at the paper's annotation ratios, in both
pipeline configurations:

* ``before`` — per-row loading (``scan_block_size=1``, deserialization
  cache disabled): the pipeline prior to the block-prefetch rework.
* ``after`` — the current defaults (block prefetch + LRU cache).

``--bench ingest`` times bulk annotation ingestion at the same ratios in
the two write-path configurations (see ``bench_ingest.py``):

* ``single`` — one ``add_annotation`` call per annotation,
* ``batched`` — the whole load through one ``add_annotations`` call.

``--bench query`` sweeps query selectivity (~1% / ~10% / ~50%) at the
same ratios in the two scan pipelines (see ``bench_query_pushdown.py``):

* ``eager`` — ``pushdown=False``: in-memory predicates, hydrate-at-scan,
* ``lazy`` — sargable predicates compiled into the storage statement and
  hydration deferred to surviving rows.

``--bench plan`` compares the cost-based planner against the
rule-based one on the three plan shapes it rewrites (see
``bench_plan_cost.py``) — a skewed three-way join, top-k aggregates at
~1/10/50% selectivity, and a 250x-annotated hydrate-placement
workload:

* ``rule`` — ``cost_planner=False``: the rule-based plans,
* ``cost`` — statistics-driven join ordering, aggregation pushdown,
  and hydrate placement (the session default).

``--bench concurrency`` sweeps the number of client threads (1/2/4/8)
issuing pushdown queries against a file-backed database while a writer
thread ingests annotation batches (see ``bench_concurrency.py``):

* ``serial`` — all reads on the lock-serialized writer connection (the
  pre-pool topology),
* ``pooled`` — per-thread read-only WAL connections that never wait for
  the writer.

``--bench shard`` sweeps the storage shard count (1/2/4/8) under mixed
load — four writer threads bulk-ingesting annotations while eight
reader threads run scatter-gather pushdown queries (see
``bench_sharding.py``); ``shards_1`` is the single-file baseline and
``shards_N`` partitions the store over N files with independently
serialized per-shard writers.

``--bench serve`` drives the annotation **service layer** end to end:
N asyncio clients (1/4/16; 1/4 in --quick) issue a mixed workload —
sargable queries, zoom-ins, and bulk ``add_annotations`` batches —
against a long-running :class:`AnnotationServer` (see
``bench_serve.py``), reporting sustained QPS plus p50/p99 request
latency per cell:

* ``single`` — the single-file backend behind the async front end,
* ``sharded`` — 4 hash shards plus a second writer-lane thread.

``--bench zoomin`` replays a Zipf-skewed zoom-in reference stream over
four concurrent threads against the production **two-tier result
cache** (see ``bench_zoomin_cache.py``) at two memory/disk byte-budget
points, reporting hit ratio and p50/p99 zoom-in latency per cell:

* ``nocache`` — admission rejects everything: every zoom-in re-executes
  its referenced query (the lower bound),
* ``lru`` — LRU replacement with admit-all over the two tiers,
* ``rco`` — RCO replacement plus cost-aware admission (the production
  default).

A separate ``stampede`` cell fires 16 concurrent zoom-ins at one cold
qid and records how many times the query actually ran — the
single-flight guarantee is exactly once, and the gate enforces it even
in --quick mode.

Each cell reports the median of five runs plus the SQLite statement
count of a cold run, and the result lands in ``BENCH_scan.json`` /
``BENCH_ingest.json`` / ... at the repository root so successive commits
leave a comparable perf trajectory (the ``BENCH_*.json`` convention).
The ingest report also records annotations/second, and the run fails if
the batched path does not cut statements by at least 3x at the top
ratio; the concurrency run fails if pooled reads do not at least double
aggregate throughput at 4 client threads.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py \
        [--bench {scan,ingest,query,concurrency,shard,serve,zoomin}] \
        [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.session import InsightNotes  # noqa: E402
from repro.workloads import WorkloadConfig, build_workload  # noqa: E402

FULL_RATIOS = (30, 60, 120, 250)
QUICK_RATIOS = (30,)
REPEATS = 5

QUERIES = {
    "scan": "SELECT name, species, region, weight FROM birds",
    "spj": (
        "SELECT b.name, b.species, s.observer FROM birds b, sightings s "
        "WHERE b.species = s.species"
    ),
    "group_by": "SELECT species, count(*) FROM birds GROUP BY species",
}

MODES = {
    # Per-row loading with the deserialization cache off — the pipeline
    # before the block-prefetch rework.
    "before": {"scan_block_size": 1, "object_cache_size": 0},
    # Current defaults: block prefetch + LRU deserialization cache.
    "after": {},
}


def build_session(ratio: int, mode: str, quick: bool):
    """A populated workload session in the given pipeline configuration."""
    session = InsightNotes(**MODES[mode])
    return build_workload(
        WorkloadConfig(
            num_birds=4 if quick else 8,
            num_sightings=8 if quick else 16,
            annotations_per_row=ratio,
            document_fraction=0.02,
            seed=29,
        ),
        session=session,
    )


def median_of_runs(session, sql: str, repeats: int) -> float:
    """Median wall-clock seconds over ``repeats`` runs of ``sql``."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        session.query(sql)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def cold_statement_count(session, sql: str) -> int:
    """SQLite statements issued by one cold (cache-dropped) run."""
    session.manager.drop_caches()
    restore = session.catalog.object_cache_info()["capacity"]
    session.catalog.configure_object_cache(0)
    try:
        with session.db.track_queries() as counter:
            session.query(sql)
    finally:
        session.catalog.configure_object_cache(restore)
    return counter.count


def run_scan(quick: bool, repeats: int) -> dict:
    ratios = QUICK_RATIOS if quick else FULL_RATIOS
    results: dict = {}
    for ratio in ratios:
        for mode in MODES:
            workload = build_session(ratio, mode, quick)
            session = workload.session
            try:
                for name, sql in QUERIES.items():
                    cell = results.setdefault(name, {}).setdefault(
                        f"{ratio}x", {}
                    )
                    cell[mode] = {
                        "median_s": round(
                            median_of_runs(session, sql, repeats), 6
                        ),
                        "statements": cold_statement_count(session, sql),
                    }
            finally:
                session.close()
    for name, series in results.items():
        for ratio_key, cell in series.items():
            before, after = cell["before"], cell["after"]
            cell["speedup"] = round(
                before["median_s"] / max(after["median_s"], 1e-9), 3
            )
            cell["statement_ratio"] = round(
                before["statements"] / max(after["statements"], 1), 2
            )
    return results


def run_ingest(quick: bool, repeats: int) -> dict:
    """Median-of-``repeats`` ingest timings, single vs batched."""
    from benchmarks.bench_ingest import measure_ingest

    ratios = QUICK_RATIOS if quick else FULL_RATIOS
    num_birds = 4 if quick else 8
    results: dict = {"ingest": {}}
    for ratio in ratios:
        cell: dict = {}
        for mode in ("single", "batched"):
            runs = [
                measure_ingest(num_birds, ratio, mode) for _ in range(repeats)
            ]
            median_s = statistics.median(r["seconds"] for r in runs)
            annotations = runs[0]["annotations"]
            cell[mode] = {
                "median_s": round(median_s, 6),
                "statements": runs[0]["statements"],
                "annotations": annotations,
                "annotations_per_s": round(annotations / max(median_s, 1e-9)),
            }
        single, batched = cell["single"], cell["batched"]
        cell["speedup"] = round(
            single["median_s"] / max(batched["median_s"], 1e-9), 3
        )
        cell["statement_ratio"] = round(
            single["statements"] / max(batched["statements"], 1), 2
        )
        results["ingest"][f"{ratio}x"] = cell
    return results


def run_query(quick: bool, repeats: int) -> dict:
    """Selectivity-swept query timings, eager vs lazy scan pipeline."""
    from benchmarks.bench_query_pushdown import (
        MODES as QUERY_MODES,
        SELECTIVITIES,
        build_query_session,
        measure_query,
        query_sql,
        weight_threshold,
    )

    ratios = QUICK_RATIOS if quick else FULL_RATIOS
    num_birds = 80 if quick else 240
    results: dict = {}
    for ratio in ratios:
        for mode in QUERY_MODES:
            session = build_query_session(num_birds, ratio, mode)
            try:
                for name, fraction in SELECTIVITIES.items():
                    sql = query_sql(weight_threshold(session, fraction))
                    cell = results.setdefault(name, {}).setdefault(
                        f"{ratio}x", {}
                    )
                    cell[mode] = measure_query(session, sql, repeats)
            finally:
                session.close()
    for name, series in results.items():
        for ratio_key, cell in series.items():
            eager, lazy = cell["eager"], cell["lazy"]
            cell["speedup"] = round(
                eager["median_s"] / max(lazy["median_s"], 1e-9), 3
            )
            cell["statement_ratio"] = round(
                eager["summary_statements"]
                / max(lazy["summary_statements"], 1),
                2,
            )
    return results


def run_plan(quick: bool, repeats: int) -> dict:
    """Rule-vs-cost plan timings over the three rewritten shapes."""
    from benchmarks.bench_plan_cost import (
        HYDRATE_SQL,
        JOIN_SQL,
        MODES as PLAN_MODES,
        SELECTIVITIES,
        build_hydrate_session,
        build_join_session,
        build_topk_session,
        measure_plan_query,
        topk_sql,
        value_threshold,
    )

    join_sizes = (25, 20, 300) if quick else (150, 120, 3000)
    topk_rows = 2000 if quick else 15_000
    hydrate_shape = (40, 30) if quick else (150, 250)
    results: dict = {}
    for mode in PLAN_MODES:
        suppliers, parts, orders = join_sizes
        session = build_join_session(
            mode, suppliers=suppliers, parts=parts, orders=orders
        )
        try:
            cell = results.setdefault("join_3way", {}).setdefault(
                f"{orders}f", {}
            )
            cell[mode] = measure_plan_query(session, JOIN_SQL, repeats)
        finally:
            session.close()
        session = build_topk_session(mode, readings=topk_rows)
        try:
            for name, fraction in SELECTIVITIES.items():
                sql = topk_sql(value_threshold(session, fraction))
                cell = results.setdefault("topk_agg", {}).setdefault(name, {})
                cell[mode] = measure_plan_query(session, sql, repeats)
        finally:
            session.close()
        rows, ratio = hydrate_shape
        session = build_hydrate_session(mode, rows=rows, ratio=ratio)
        try:
            cell = results.setdefault("hydrate", {}).setdefault(
                f"{ratio}x", {}
            )
            cell[mode] = measure_plan_query(session, HYDRATE_SQL, repeats)
        finally:
            session.close()
    for series in results.values():
        for cell in series.values():
            rule, cost = cell["rule"], cell["cost"]
            cell["speedup"] = round(
                rule["median_s"] / max(cost["median_s"], 1e-9), 3
            )
            cell["statement_ratio"] = round(
                rule["statements"] / max(cost["statements"], 1), 2
            )
    return results


def run_concurrency(quick: bool, repeats: int) -> dict:
    """Client-thread sweep under concurrent ingest, serial vs pooled."""
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from benchmarks.bench_concurrency import (
        MODES as CONCURRENCY_MODES,
        THREAD_COUNTS,
        build_concurrency_session,
        measure_concurrency,
        reader_statements,
        warm_clients,
    )

    thread_counts = (1, 4) if quick else THREAD_COUNTS
    num_rows = 10_000 if quick else 50_000
    batch_rows = 20_000 if quick else 30_000
    per_reader = 4 if quick else 8
    results: dict = {"read_under_ingest": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for mode in CONCURRENCY_MODES:
            session = build_concurrency_session(
                f"{tmp}/{mode}.db", num_rows, mode
            )
            executor = ThreadPoolExecutor(max_workers=max(thread_counts))
            try:
                warm_clients(session, executor, max(thread_counts))
                statements = reader_statements(session)
                for n_readers in thread_counts:
                    runs = [
                        measure_concurrency(
                            session, executor, n_readers,
                            per_reader, batch_rows,
                        )
                        for _ in range(repeats)
                    ]
                    median_s = statistics.median(
                        run["seconds"] for run in runs
                    )
                    queries = runs[0]["queries"]
                    cell = results["read_under_ingest"].setdefault(
                        f"{n_readers}t", {}
                    )
                    cell[mode] = {
                        "median_s": round(median_s, 6),
                        "statements": statements,
                        "queries": queries,
                        "queries_per_s": round(
                            queries / max(median_s, 1e-9), 1
                        ),
                        "writer_batches": int(
                            statistics.median(
                                run["writer_batches"] for run in runs
                            )
                        ),
                    }
            finally:
                executor.shutdown()
                session.close()
    for cell in results["read_under_ingest"].values():
        serial, pooled = cell["serial"], cell["pooled"]
        cell["speedup"] = round(
            serial["median_s"] / max(pooled["median_s"], 1e-9), 3
        )
        cell["statement_ratio"] = round(
            serial["statements"] / max(pooled["statements"], 1), 2
        )
    return results


def run_shard(quick: bool, repeats: int) -> dict:
    """Shard-count sweep under mixed ingest/read load (bench_sharding).

    ``ingest_under_read`` (the gated workload) times four writer threads
    draining a fixed number of bulk batches while eight reader threads
    query continuously; ``read_under_ingest`` times a fixed read load
    under continuous ingest.  Quick mode runs the 1- and 4-shard
    endpoints only; full mode sweeps 1/2/4/8 shards.
    """
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from benchmarks.bench_sharding import (
        BATCH_ROWS,
        MODES as SHARD_MODES,
        READERS,
        WRITERS,
        build_sharding_session,
        ingest_statements,
        make_batches,
        measure_ingest_under_read,
        measure_read_under_ingest,
        shard_write_batches,
        warm_readers,
    )

    modes = ("shards_1", "shards_4") if quick else tuple(SHARD_MODES)
    num_rows = 4_000 if quick else 20_000
    batches_per_writer = 6 if quick else 60
    per_reader = 2 if quick else 6
    ingest_key = f"{WRITERS}w"
    read_key = f"{READERS}t"
    results: dict = {"ingest_under_read": {}, "read_under_ingest": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for mode in modes:
            session = build_sharding_session(
                f"{tmp}/{mode}.db", num_rows, mode
            )
            writer_pool = ThreadPoolExecutor(max_workers=WRITERS)
            reader_pool = ThreadPoolExecutor(max_workers=READERS)
            try:
                warm_readers(session, reader_pool, READERS)
                batches = make_batches(
                    WRITERS, batches_per_writer, BATCH_ROWS, num_rows
                )
                statements = ingest_statements(session, batches[0][0])
                # One unmeasured run brings WAL files and page caches to
                # their steady state before timing starts.
                measure_ingest_under_read(
                    session, writer_pool, reader_pool, batches, READERS
                )
                before = session.db.backend.counters()
                runs = [
                    measure_ingest_under_read(
                        session, writer_pool, reader_pool, batches, READERS
                    )
                    for _ in range(repeats)
                ]
                after = session.db.backend.counters()
                median_s = statistics.median(run["seconds"] for run in runs)
                annotations = runs[0]["annotations"]
                cell = results["ingest_under_read"].setdefault(ingest_key, {})
                cell[mode] = {
                    "median_s": round(median_s, 6),
                    "statements": statements,
                    "annotations": annotations,
                    "annotations_per_s": int(
                        round(annotations / max(median_s, 1e-9))
                    ),
                    "writer_batches": runs[0]["writer_batches"],
                    "reader_queries": int(
                        statistics.median(
                            run["reader_queries"] for run in runs
                        )
                    ),
                    "shard_write_batches": shard_write_batches(before, after),
                }
                read_runs = [
                    measure_read_under_ingest(
                        session, writer_pool, reader_pool, batches,
                        READERS, per_reader,
                    )
                    for _ in range(repeats)
                ]
                read_median = statistics.median(
                    run["seconds"] for run in read_runs
                )
                queries = read_runs[0]["queries"]
                cell = results["read_under_ingest"].setdefault(read_key, {})
                cell[mode] = {
                    "median_s": round(read_median, 6),
                    "statements": statements,
                    "queries": queries,
                    "queries_per_s": round(queries / max(read_median, 1e-9), 1),
                    "writer_batches": int(
                        statistics.median(
                            run["writer_batches"] for run in read_runs
                        )
                    ),
                }
            finally:
                writer_pool.shutdown()
                reader_pool.shutdown()
                session.close()
    for series in results.values():
        for cell in series.values():
            base, sharded = cell["shards_1"], cell["shards_4"]
            cell["speedup"] = round(
                base["median_s"] / max(sharded["median_s"], 1e-9), 3
            )
            cell["statement_ratio"] = round(
                base["statements"] / max(sharded["statements"], 1), 2
            )
    return results


def run_serve(quick: bool, repeats: int) -> dict:
    """Client-count sweep through the served asyncio front end."""
    import asyncio
    import tempfile

    from benchmarks.bench_serve import (
        CLIENT_COUNTS,
        MODES as SERVE_MODES,
        build_serve_server,
        measure_serve,
        run_load,
    )

    client_counts = (1, 4) if quick else CLIENT_COUNTS
    num_rows = 4_000 if quick else 20_000
    per_client = 16 if quick else 48
    results: dict = {"mixed_load": {}}

    async def sweep() -> None:
        with tempfile.TemporaryDirectory() as tmp:
            for mode in SERVE_MODES:
                server = await build_serve_server(
                    f"{tmp}/{mode}.db", num_rows, mode, max(client_counts)
                )
                try:
                    # One unmeasured run at full fan-out warms worker
                    # threads, WAL readers, and the summary caches.
                    await run_load(server, max(client_counts), per_client)
                    for n_clients in client_counts:
                        cell = results["mixed_load"].setdefault(
                            f"{n_clients}c", {}
                        )
                        cell[mode] = await measure_serve(
                            server, n_clients, per_client, repeats
                        )
                finally:
                    await server.stop()

    asyncio.run(sweep())
    for cell in results["mixed_load"].values():
        single, sharded = cell["single"], cell["sharded"]
        cell["speedup"] = round(
            single["median_s"] / max(sharded["median_s"], 1e-9), 3
        )
    return results


def run_zoomin(quick: bool, repeats: int) -> dict:
    """Concurrent Zipf replay over the tiered zoom-in result cache.

    ``zipf_replay`` sweeps three cache modes (no-cache lower bound,
    LRU + admit-all, RCO + cost-aware admission) at two memory/disk
    byte-budget points; ``stampede`` is the single-flight cell — 16
    concurrent zoom-ins at one cold qid, recomputations counted.
    """
    from benchmarks.bench_zoomin_cache import (
        STAMPEDE_THREADS,
        TIERED_MODES,
        build_tiered_state,
        measure_stampede,
        measure_tiered,
    )

    state = build_tiered_state(quick)
    total = state["total_bytes"]
    # Budgets are fractions of the working set's in-memory footprint,
    # both chosen to keep the replacement policy under genuine pressure
    # ("tight" fits the head of the Zipf distribution only, "mid" the
    # hot set but not the tail) — an unconstrained cache measures only
    # its admission policy, not replacement.
    budgets = {
        "tight": (max(4096, int(total * 0.15)), max(8192, int(total * 0.3))),
        "mid": (max(4096, int(total * 0.2)), max(8192, int(total * 0.4))),
    }
    results: dict = {"zipf_replay": {}}
    try:
        for budget_key, (memory_bytes, disk_bytes) in budgets.items():
            cell = results["zipf_replay"].setdefault(budget_key, {})
            for mode in TIERED_MODES:
                cell[mode] = measure_tiered(
                    state, mode, memory_bytes, disk_bytes, repeats
                )
            cell["speedup"] = round(
                cell["nocache"]["median_s"]
                / max(cell["rco"]["median_s"], 1e-9),
                3,
            )
            cell["p50_speedup"] = round(
                cell["nocache"]["p50_ms"]
                / max(cell["rco"]["p50_ms"], 1e-9),
                3,
            )
        results["stampede"] = {
            f"{STAMPEDE_THREADS}t": measure_stampede(state)
        }
    finally:
        state["session"].close()
    return results


def check_zoomin_gate(results: dict, quick: bool) -> list[str]:
    """The tiered zoom-in acceptance gate (empty list = pass).

    Hard in every mode: the stampede cell must have executed its query
    exactly once — the single-flight guarantee is structural, not a
    timing property, so even --quick enforces it.  In full mode
    additionally, at every budget point: RCO must match or beat LRU on
    hit ratio at the same byte budgets (and clear a 0.35 absolute
    floor), and the RCO path must serve zoom-ins at least 2x faster at
    p50 than the no-cache lower bound.  --quick workloads are too small
    for stable latency, so those misses only warn.
    """
    failures: list[str] = []
    stampede = results["stampede"].get(
        next(iter(results["stampede"]), ""), {}
    )
    if stampede.get("computes") != 1:
        failures.append(
            f"zoomin stampede: {stampede.get('computes')} query "
            f"executions under {stampede.get('threads')} concurrent "
            "misses — single-flight must run the query exactly once"
        )
    for budget_key, cell in results["zipf_replay"].items():
        rco, lru = cell["rco"], cell["lru"]
        soft: list[str] = []
        if rco["hit_ratio"] < lru["hit_ratio"] - 0.02:
            soft.append(
                f"zoomin {budget_key}: RCO hit ratio "
                f"{rco['hit_ratio']:.3f} below LRU "
                f"{lru['hit_ratio']:.3f} at the same byte budget"
            )
        if rco["hit_ratio"] < 0.35:
            soft.append(
                f"zoomin {budget_key}: RCO hit ratio "
                f"{rco['hit_ratio']:.3f} below the 0.35 floor"
            )
        if cell["p50_speedup"] < 2.0:
            soft.append(
                f"zoomin {budget_key}: p50 speedup "
                f"{cell['p50_speedup']:.2f}x — the cached path must be "
                "at least 2x faster than no-cache at p50"
            )
        for message in soft:
            if quick:
                print(f"warning: {message} (tolerated in --quick mode)")
            else:
                failures.append(message)
    return failures


def check_serve_gate(results: dict, quick: bool) -> list[str]:
    """The served-load acceptance gate (empty list = pass).

    Hard in every mode: each cell must finish healthy — zero rejected,
    timed-out, or failed requests.  Queues are sized to the offered
    load, so any nonzero health counter means the server dropped work
    and the cell's QPS is fiction.  In full mode there is additionally
    a no-collapse bound: at every measured client count the single-file
    configuration must sustain at least 0.4x the 1-client QPS.  The
    mixed workload is hydration-heavy, so aggregate throughput is
    GIL-bound and roughly *flat* as clients are added — the gate does
    not demand scaling, but a fall below the bound is the signature of
    a serialization bug (e.g. reads accidentally queueing behind the
    writer lock).  In --quick mode the workload is too small for stable
    timings, so a throughput miss only warns.
    """
    failures: list[str] = []
    series = results["mixed_load"]
    for clients_key, cell in series.items():
        for mode in ("single", "sharded"):
            health = cell[mode]["health"]
            if any(health.values()):
                failures.append(
                    f"serve {clients_key}/{mode}: unhealthy run {health} — "
                    "a served benchmark that drops requests reports "
                    "fantasy QPS"
                )
    baseline_qps = series.get("1c", {}).get("single", {}).get("qps")
    if baseline_qps is None:
        return failures + ["serve: no 1-client single-file cell measured"]
    for clients_key, cell in series.items():
        sustained = cell["single"]["qps"]
        if sustained < 0.4 * baseline_qps:
            message = (
                f"serve {clients_key}/single: {sustained:.1f} qps vs "
                f"{baseline_qps:.1f} qps at 1c — sustained throughput "
                "collapsed below 0.4x of the 1-client baseline"
            )
            if quick:
                print(f"warning: {message} (tolerated in --quick mode)")
            else:
                failures.append(message)
    return failures


def check_shard_gate(results: dict, quick: bool) -> list[str]:
    """The sharded-ingest acceptance gate (empty list = pass).

    With four writers under continuous read pressure, four shards must
    at least double ingest throughput over the single-file baseline —
    the write work is fixed, so ``speedup >= 2.0`` on wall-clock is a
    2x throughput gain.  In --quick mode the workload is too small for
    stable timings under scheduler noise, so a miss only warns.
    """
    failures: list[str] = []
    cell = results["ingest_under_read"].get("4w")
    if cell is None:
        return ["shard: no 4-writer ingest cell was measured"]
    if cell["speedup"] < 2.0:
        message = (
            f"shard ingest at 4w: speedup {cell['speedup']:.2f}x — four "
            "shards must at least double ingest throughput under "
            "concurrent reads over the single-file baseline"
        )
        if quick:
            print(f"warning: {message} (tolerated in --quick mode)")
        else:
            failures.append(message)
    return failures


def check_plan_gate(results: dict, quick: bool) -> list[str]:
    """The cost-planner acceptance gate (empty list = pass).

    Across the swept workloads the cost planner must at least double
    wall-clock on one skewed configuration — the shapes exist because
    the rule plans are badly wrong there — and must never regress any
    cell below 0.9x (a cost model that wins one workload by losing
    another is mistuned).  In --quick mode the workloads are too small
    for stable timings under scheduler noise, so misses only warn.
    """
    failures: list[str] = []
    best = 0.0
    best_key = "?"
    for name, series in results.items():
        for cell_key, cell in series.items():
            if cell["speedup"] > best:
                best, best_key = cell["speedup"], f"{name}/{cell_key}"
            if cell["speedup"] < 0.9:
                message = (
                    f"plan {name} at {cell_key}: speedup "
                    f"{cell['speedup']:.2f}x — the cost planner must not "
                    "regress any workload below 0.9x of the rule plans"
                )
                if quick:
                    print(f"warning: {message} (tolerated in --quick mode)")
                else:
                    failures.append(message)
    if best < 2.0:
        message = (
            f"plan: best speedup {best:.2f}x ({best_key}) — the cost "
            "planner must at least double wall-clock on one skewed "
            "configuration"
        )
        if quick:
            print(f"warning: {message} (tolerated in --quick mode)")
        else:
            failures.append(message)
    return failures


def check_concurrency_gate(results: dict, quick: bool) -> list[str]:
    """The concurrent-read acceptance gate (empty list = pass).

    At 4 client threads the pooled topology must at least double the
    aggregate read throughput of the serialized baseline — fixed read
    work, so a 2x throughput gain is ``speedup >= 2.0`` on wall-clock.
    In --quick mode the workload is too small for stable timings under
    scheduler noise, so a miss only warns.
    """
    failures: list[str] = []
    cell = results["read_under_ingest"].get("4t")
    if cell is None:
        return ["concurrency: no 4-thread cell was measured"]
    if cell["speedup"] < 2.0:
        message = (
            f"concurrency at 4t: speedup {cell['speedup']:.2f}x — pooled "
            "reads must at least double aggregate throughput over the "
            "serialized baseline"
        )
        if quick:
            print(f"warning: {message} (tolerated in --quick mode)")
        else:
            failures.append(message)
    return failures


def check_query_gate(results: dict, quick: bool) -> list[str]:
    """The pushdown acceptance gate: returns failure messages (empty = pass).

    At the top measured ratio, for every selectivity at or below 10%,
    the lazy pipeline must issue at least 3x fewer summary-catalog/
    attachment statements and, in full mode, win on wall-clock too (in
    --quick mode the workload is too small for stable timings, so a
    wall-clock loss only warns).
    """
    failures: list[str] = []
    for name in ("sel_1pct", "sel_10pct"):
        series = results[name]
        top = max(series, key=lambda key: int(key.rstrip("x")))
        cell = series[top]
        if cell["statement_ratio"] < 3.0:
            failures.append(
                f"query {name} at {top}: statement_ratio "
                f"{cell['statement_ratio']:.2f} < 3.0 — the lazy pipeline "
                "must cut summary statements by at least 3x"
            )
        if cell["speedup"] <= 1.0:
            message = (
                f"query {name} at {top}: speedup {cell['speedup']:.2f}x — "
                "the lazy pipeline did not win on wall-clock"
            )
            if quick:
                print(f"warning: {message} (tolerated in --quick mode)")
            else:
                failures.append(message)
    return failures


def check_ingest_gate(results: dict, quick: bool) -> list[str]:
    """The ingest acceptance gate: returns failure messages (empty = pass).

    At the top measured ratio the batched path must issue at least 3x
    fewer SQLite statements and, in full mode, win on wall-clock too
    (in --quick mode the workload is too small for stable timings, so a
    wall-clock loss only warns).
    """
    failures: list[str] = []
    series = results["ingest"]
    top = max(series, key=lambda key: int(key.rstrip("x")))
    cell = series[top]
    if cell["statement_ratio"] < 3.0:
        failures.append(
            f"ingest at {top}: statement_ratio {cell['statement_ratio']:.2f} "
            "< 3.0 — the batched path must cut statements by at least 3x"
        )
    if cell["speedup"] <= 1.0:
        message = (
            f"ingest at {top}: speedup {cell['speedup']:.2f}x — the batched "
            "path did not win on wall-clock"
        )
        if quick:
            print(f"warning: {message} (tolerated in --quick mode)")
        else:
            failures.append(message)
    return failures


BENCHES = {
    "scan": {
        "run": run_scan,
        "benchmark": "scan_pipeline",
        "output": "BENCH_scan.json",
        "modes": {
            "before": "scan_block_size=1, deserialization cache off",
            "after": "block prefetch (256) + LRU deserialization cache",
        },
        "pair": ("before", "after"),
    },
    "ingest": {
        "run": run_ingest,
        "benchmark": "ingest_pipeline",
        "output": "BENCH_ingest.json",
        "modes": {
            "single": "one add_annotation call per annotation",
            "batched": "whole load through one add_annotations call",
        },
        "pair": ("single", "batched"),
        "gate": check_ingest_gate,
    },
    "query": {
        "run": run_query,
        "benchmark": "query_pushdown",
        "output": "BENCH_query.json",
        "modes": {
            "eager": "pushdown off: in-memory predicates, hydrate-at-scan",
            "lazy": "storage pushdown + lazy block-wise hydration",
        },
        "pair": ("eager", "lazy"),
        "gate": check_query_gate,
    },
    "plan": {
        "run": run_plan,
        "benchmark": "plan_cost",
        "output": "BENCH_plan.json",
        "modes": {
            "rule": "cost_planner=False: rule-based plans",
            "cost": "statistics-driven join order, aggregation "
            "pushdown, hydrate placement",
        },
        "pair": ("rule", "cost"),
        "gate": check_plan_gate,
    },
    "concurrency": {
        "run": run_concurrency,
        "benchmark": "concurrent_reads",
        "output": "BENCH_concurrency.json",
        "modes": {
            "serial": "all reads on the lock-serialized writer connection",
            "pooled": "per-thread read-only WAL connections",
        },
        "pair": ("serial", "pooled"),
        "gate": check_concurrency_gate,
    },
    "shard": {
        "run": run_shard,
        "benchmark": "sharded_ingest",
        "output": "BENCH_shard.json",
        "modes": {
            "shards_1": "single-file baseline (one serialized writer)",
            "shards_2": "2 hash shards, per-shard writers and pools",
            "shards_4": "4 hash shards, per-shard writers and pools",
            "shards_8": "8 hash shards, per-shard writers and pools",
        },
        "pair": ("shards_1", "shards_4"),
        "gate": check_shard_gate,
    },
    "serve": {
        "run": run_serve,
        "benchmark": "served_mixed_load",
        "output": "BENCH_serve.json",
        "modes": {
            "single": "single-file backend behind the asyncio server",
            "sharded": "4 hash shards + second writer lane behind the "
            "asyncio server",
        },
        "pair": ("single", "sharded"),
        "gate": check_serve_gate,
    },
    "zoomin": {
        "run": run_zoomin,
        "benchmark": "zoomin_tiered_cache",
        "output": "BENCH_zoomin.json",
        "modes": {
            "nocache": "admission rejects everything: every zoom-in "
            "re-executes its query",
            "lru": "LRU replacement + admit-all over the two-tier cache",
            "rco": "RCO replacement + cost-aware admission "
            "(production default)",
        },
        "pair": ("nocache", "rco"),
        "gate": check_zoomin_gate,
    },
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", choices=sorted(BENCHES), default="scan",
        help="which pipeline to measure (default: scan)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload, 30x only (CI smoke run)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS,
        help=f"timed runs per cell (median reported; default {REPEATS})",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="where to write the JSON report "
        "(default: BENCH_<bench>.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    bench = BENCHES[args.bench]
    output = args.output or REPO_ROOT / bench["output"]
    if not output.parent.is_dir():
        parser.error(f"--output directory does not exist: {output.parent}")

    results = bench["run"](quick=args.quick, repeats=args.repeats)
    report = {
        "benchmark": bench["benchmark"],
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "quick": args.quick,
        "repeats": args.repeats,
        "modes": bench["modes"],
        "results": results,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {output}")
    first, second = bench["pair"]
    for name, series in results.items():
        for ratio_key, cell in series.items():
            if first not in cell or second not in cell:
                # Single-measurement cells (e.g. the single-flight
                # stampede) carry their numbers directly.
                detail = "  ".join(
                    f"{key} {value}" for key, value in cell.items()
                )
                print(f"  {name:9s} {ratio_key:>5s}  {detail}")
                continue
            if "hit_ratio" in cell[first]:
                # Cache-replay cells report hit ratio and per-reference
                # latency rather than statement counts.
                print(
                    f"  {name:9s} {ratio_key:>5s}  "
                    f"{first} p50 {cell[first]['p50_ms']:7.2f} ms "
                    f"(hit {cell[first]['hit_ratio']:.2f})  "
                    f"{second} p50 {cell[second]['p50_ms']:7.2f} ms "
                    f"(hit {cell[second]['hit_ratio']:.2f})  "
                    f"p50 speedup {cell['p50_speedup']:.2f}x"
                )
                continue
            if "statements" not in cell[first]:
                # Served cells report throughput/latency, not statement
                # counts (the request mix spans the whole engine).
                print(
                    f"  {name:9s} {ratio_key:>5s}  "
                    f"{first} {cell[first]['qps']:7.1f} q/s "
                    f"(p99 {cell[first]['p99_ms']:8.2f} ms)  "
                    f"{second} {cell[second]['qps']:7.1f} q/s "
                    f"(p99 {cell[second]['p99_ms']:8.2f} ms)  "
                    f"speedup {cell['speedup']:.2f}x"
                )
                continue
            extra = (
                f"  ann/s {cell[first]['annotations_per_s']:6d} -> "
                f"{cell[second]['annotations_per_s']:6d}"
                if "annotations_per_s" in cell[first]
                else ""
            )
            print(
                f"  {name:9s} {ratio_key:>5s}  "
                f"{first} {cell[first]['median_s'] * 1000:8.2f} ms "
                f"({cell[first]['statements']:6d} stmts)  "
                f"{second} {cell[second]['median_s'] * 1000:8.2f} ms "
                f"({cell[second]['statements']:6d} stmts)  "
                f"speedup {cell['speedup']:.2f}x, "
                f"stmts {cell['statement_ratio']:.1f}x fewer{extra}"
            )
    gate = bench.get("gate")
    if gate is not None:
        failures = gate(results, quick=args.quick)
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
