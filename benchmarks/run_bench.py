"""Perf-trajectory harness for the scan pipeline.

Times the three scan-shaped workloads the paper's evaluation leans on —
full-table scan, SPJ propagation, and group-by aggregation — at the
paper's annotation ratios, in both pipeline configurations:

* ``before`` — per-row loading (``scan_block_size=1``, deserialization
  cache disabled): the pipeline prior to the block-prefetch rework.
* ``after`` — the current defaults (block prefetch + LRU cache).

Each (workload, ratio, mode) cell reports the median of five runs plus
the SQLite statement count of a cold run, and the result lands in
``BENCH_scan.json`` at the repository root so successive commits leave a
comparable perf trajectory (the ``BENCH_*.json`` convention).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.session import InsightNotes  # noqa: E402
from repro.workloads import WorkloadConfig, build_workload  # noqa: E402

FULL_RATIOS = (30, 60, 120, 250)
QUICK_RATIOS = (30,)
REPEATS = 5

QUERIES = {
    "scan": "SELECT name, species, region, weight FROM birds",
    "spj": (
        "SELECT b.name, b.species, s.observer FROM birds b, sightings s "
        "WHERE b.species = s.species"
    ),
    "group_by": "SELECT species, count(*) FROM birds GROUP BY species",
}

MODES = {
    # Per-row loading with the deserialization cache off — the pipeline
    # before the block-prefetch rework.
    "before": {"scan_block_size": 1, "object_cache_size": 0},
    # Current defaults: block prefetch + LRU deserialization cache.
    "after": {},
}


def build_session(ratio: int, mode: str, quick: bool):
    """A populated workload session in the given pipeline configuration."""
    session = InsightNotes(**MODES[mode])
    return build_workload(
        WorkloadConfig(
            num_birds=4 if quick else 8,
            num_sightings=8 if quick else 16,
            annotations_per_row=ratio,
            document_fraction=0.02,
            seed=29,
        ),
        session=session,
    )


def median_of_runs(session, sql: str, repeats: int) -> float:
    """Median wall-clock seconds over ``repeats`` runs of ``sql``."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        session.query(sql)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def cold_statement_count(session, sql: str) -> int:
    """SQLite statements issued by one cold (cache-dropped) run."""
    session.manager.drop_caches()
    restore = session.catalog.object_cache_info()["capacity"]
    session.catalog.configure_object_cache(0)
    try:
        with session.db.track_queries() as counter:
            session.query(sql)
    finally:
        session.catalog.configure_object_cache(restore)
    return counter.count


def run(quick: bool, repeats: int) -> dict:
    ratios = QUICK_RATIOS if quick else FULL_RATIOS
    results: dict = {}
    for ratio in ratios:
        for mode in MODES:
            workload = build_session(ratio, mode, quick)
            session = workload.session
            try:
                for name, sql in QUERIES.items():
                    cell = results.setdefault(name, {}).setdefault(
                        f"{ratio}x", {}
                    )
                    cell[mode] = {
                        "median_s": round(
                            median_of_runs(session, sql, repeats), 6
                        ),
                        "statements": cold_statement_count(session, sql),
                    }
            finally:
                session.close()
    for name, series in results.items():
        for ratio_key, cell in series.items():
            before, after = cell["before"], cell["after"]
            cell["speedup"] = round(
                before["median_s"] / max(after["median_s"], 1e-9), 3
            )
            cell["statement_ratio"] = round(
                before["statements"] / max(after["statements"], 1), 2
            )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload, 30x only (CI smoke run)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS,
        help=f"timed runs per cell (median reported; default {REPEATS})",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_scan.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if not args.output.parent.is_dir():
        parser.error(f"--output directory does not exist: {args.output.parent}")

    results = run(quick=args.quick, repeats=args.repeats)
    report = {
        "benchmark": "scan_pipeline",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "quick": args.quick,
        "repeats": args.repeats,
        "modes": {
            "before": "scan_block_size=1, deserialization cache off",
            "after": "block prefetch (256) + LRU deserialization cache",
        },
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    for name, series in results.items():
        for ratio_key, cell in series.items():
            print(
                f"  {name:9s} {ratio_key:>5s}  "
                f"before {cell['before']['median_s'] * 1000:8.2f} ms "
                f"({cell['before']['statements']:5d} stmts)  "
                f"after {cell['after']['median_s'] * 1000:8.2f} ms "
                f"({cell['after']['statements']:5d} stmts)  "
                f"speedup {cell['speedup']:.2f}x, "
                f"stmts {cell['statement_ratio']:.1f}x fewer"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
