"""EXP-M4 — Bulk annotation ingestion vs. one-at-a-time maintenance.

Measures annotation ingest throughput at the paper's annotation ratios
(30x-250x) in the two write-path configurations:

* ``single`` — one :meth:`~repro.engine.session.InsightNotes.add_annotation`
  call per annotation: per-annotation transactions, per-annotation
  instance resolution, per-annotation summary write-back.
* ``batched`` — one
  :meth:`~repro.engine.session.InsightNotes.add_annotations` call for the
  whole load: two ``executemany`` inserts for the raw annotations,
  instances resolved once per table, summary objects bulk-loaded, each
  annotation analyzed at most once per instance, and one bulk
  ``executemany`` summary write-back.

Both paths produce byte-identical summary state (the equivalence
property test holds them to it); the benchmark quantifies what the
batching buys — SQLite statements issued and annotations/second.

Shape expected: the statement count of the batched path collapses to a
small multiple of the touched-object count (≥3x fewer statements is the
gate at the top ratio), and throughput rises accordingly.

Reusable pieces (:func:`make_specs`, :func:`measure_ingest`) are shared
with ``run_bench.py --bench ingest``, which records the trajectory in
``BENCH_ingest.json``.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import PAPER_RATIOS, write_report
from repro.engine.session import InsightNotes
from repro.model.cell import CellRef
from repro.workloads import WorkloadConfig, build_workload
from repro.workloads.corpus import AnnotationFactory

#: Generation knobs mirroring the workload generator's annotation mix.
DOCUMENT_FRACTION = 0.02
COLUMN_FRACTION = 0.3
MULTI_ROW_FRACTION = 0.1

_AUTHORS = ["aria", "ben", "carla", "dmitri", "elena", "farid"]


def build_empty_workload(
    num_birds: int, seed: int = 29
) -> tuple[InsightNotes, list[int], tuple[str, ...]]:
    """A session with tables and linked instances but zero annotations.

    Returns ``(session, bird row ids, bird columns)`` — the fixed target
    every ingest run starts from.
    """
    workload = build_workload(
        WorkloadConfig(
            num_birds=num_birds,
            num_sightings=2 * num_birds,
            annotations_per_row=0,
            seed=seed,
        )
    )
    session = workload.session
    return session, workload.bird_rows, session.db.columns("birds")


def make_specs(
    row_ids: list[int],
    columns: tuple[str, ...],
    ratio: int,
    seed: int = 29,
) -> list[dict]:
    """Deterministic ``add_annotations`` specs at ``ratio`` per row.

    Mirrors the workload generator's annotation mix: a small fraction of
    large documents, a fraction attached to one column, and a fraction
    attached to two rows (the multi-tuple annotations whose contributions
    the batch analyzes once — the summarize-once guarantee batch-wide).
    """
    rng = random.Random(seed)
    factory = AnnotationFactory(seed=seed)
    specs: list[dict] = []
    for row_id in row_ids:
        for _ in range(ratio):
            if rng.random() < DOCUMENT_FRACTION:
                title, body = factory.draw_document()
                specs.append(
                    {
                        "text": body,
                        "table": "birds",
                        "row_id": row_id,
                        "document": True,
                        "title": title,
                        "author": rng.choice(_AUTHORS),
                    }
                )
                continue
            text, _category = factory.draw()
            spec: dict = {"text": text, "table": "birds", "row_id": row_id}
            if rng.random() < COLUMN_FRACTION:
                spec["columns"] = [rng.choice(columns)]
            if rng.random() < MULTI_ROW_FRACTION and len(row_ids) > 1:
                other = rng.choice([r for r in row_ids if r != row_id])
                column = rng.choice(columns)
                spec = {
                    "text": text,
                    "cells": [
                        CellRef("birds", row_id, column),
                        CellRef("birds", other, column),
                    ],
                }
            spec["author"] = rng.choice(_AUTHORS)
            specs.append(spec)
    return specs


def ingest_single(session: InsightNotes, specs: list[dict]) -> None:
    """The one-at-a-time write path: one ``add_annotation`` per spec."""
    for spec in specs:
        session.add_annotation(**spec)


def ingest_batched(session: InsightNotes, specs: list[dict]) -> None:
    """The bulk write path: the whole load in one ``add_annotations``."""
    session.add_annotations(specs)


INGEST_MODES = {"single": ingest_single, "batched": ingest_batched}


def measure_ingest(num_birds: int, ratio: int, mode: str) -> dict:
    """Statements issued and wall-clock seconds for one cold ingest run.

    Builds a fresh annotation-free session (construction not counted),
    then times the whole load going through ``mode``'s write path under
    the statement tracer.
    """
    import time

    session, row_ids, columns = build_empty_workload(num_birds)
    try:
        specs = make_specs(row_ids, columns, ratio)
        run = INGEST_MODES[mode]
        with session.db.track_queries() as counter:
            started = time.perf_counter()
            run(session, specs)
            elapsed = time.perf_counter() - started
    finally:
        session.close()
    return {
        "annotations": len(specs),
        "seconds": elapsed,
        "statements": counter.count,
    }


# -- pytest-benchmark entry points -----------------------------------------

_BENCH_BIRDS = 6
_BENCH_RATIOS = (30, 120)


@pytest.mark.parametrize("ratio", _BENCH_RATIOS)
@pytest.mark.parametrize("mode", sorted(INGEST_MODES))
def test_ingest_throughput(benchmark, ratio, mode):
    run = INGEST_MODES[mode]

    def setup():
        session, row_ids, columns = build_empty_workload(_BENCH_BIRDS)
        return (session, make_specs(row_ids, columns, ratio)), {}

    benchmark.extra_info["ratio"] = ratio
    benchmark.extra_info["mode"] = mode
    benchmark.pedantic(run, setup=setup, rounds=3)


def test_ingest_statement_reduction_report():
    """Series table: statements and throughput per ratio, both modes."""
    rows = []
    for ratio in PAPER_RATIOS:
        cells = {
            mode: measure_ingest(_BENCH_BIRDS, ratio, mode)
            for mode in INGEST_MODES
        }
        single, batched = cells["single"], cells["batched"]
        ratio_stmts = single["statements"] / max(batched["statements"], 1)
        rows.append(
            [
                f"{ratio}x",
                single["annotations"],
                single["statements"],
                batched["statements"],
                round(ratio_stmts, 1),
                round(single["annotations"] / max(single["seconds"], 1e-9)),
                round(batched["annotations"] / max(batched["seconds"], 1e-9)),
            ]
        )
        assert ratio_stmts >= 3.0, (
            f"batched ingest at {ratio}x issued only {ratio_stmts:.1f}x "
            "fewer statements (expected >= 3x)"
        )
    write_report(
        "exp_m4_ingest",
        "EXP-M4: bulk ingest vs one-at-a-time (statements and ann/s)",
        ["ratio", "anns", "stmts single", "stmts batched", "stmt ratio",
         "ann/s single", "ann/s batched"],
        rows,
    )
