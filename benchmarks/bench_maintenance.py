"""EXP-M1 — Incremental maintenance vs. recompute-from-scratch.

Measures the cost of absorbing one new annotation into a row's summaries
as a function of how many annotations the row already carries, for the
incremental :class:`~repro.maintenance.incremental.SummaryManager` and
the :class:`~repro.maintenance.rebuild.RebuildMaintainer` baseline.

Shape expected: rebuild cost grows linearly with the existing annotation
count (it re-summarizes everything); incremental cost stays nearly flat,
so the speedup factor grows with the corpus — the scalability argument
of §2.3.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro import InsightNotes
from repro.maintenance.rebuild import RebuildMaintainer
from repro.model.cell import CellRef
from repro.workloads.corpus import AnnotationFactory

EXISTING_COUNTS = (25, 50, 100, 200)


def _session_with_row(existing: int) -> InsightNotes:
    notes = InsightNotes()
    notes.create_table("birds", ["name", "species"])
    notes.insert("birds", ("Swan Goose", "Anser cygnoides"))
    factory = AnnotationFactory(seed=41)
    training = factory.training_set(8)
    labels = sorted({label for _, label in training})
    notes.define_classifier("Cf", labels, training)
    notes.define_cluster("Cl", threshold=0.3)
    notes.link("Cf", "birds")
    notes.link("Cl", "birds")
    for _ in range(existing):
        text, _category = factory.draw()
        notes.add_annotation(text, table="birds", row_id=1)
    return notes


def _add_one(notes: InsightNotes, maintainer, factory: AnnotationFactory):
    text, _category = factory.draw()
    annotation = notes.annotations.add(text, [CellRef("birds", 1, "name")])
    maintainer.on_annotation_added(
        annotation, notes.annotations.cells_of(annotation.annotation_id)
    )


@pytest.mark.parametrize("existing", EXISTING_COUNTS)
def test_incremental_insert(benchmark, existing):
    notes = _session_with_row(existing)
    factory = AnnotationFactory(seed=97)
    benchmark.extra_info["existing"] = existing
    benchmark(lambda: _add_one(notes, notes.manager, factory))
    notes.close()


@pytest.mark.parametrize("existing", EXISTING_COUNTS)
def test_rebuild_insert(benchmark, existing):
    notes = _session_with_row(existing)
    maintainer = RebuildMaintainer(notes.db, notes.annotations, notes.catalog)
    factory = AnnotationFactory(seed=97)
    benchmark.extra_info["existing"] = existing
    benchmark(lambda: _add_one(notes, maintainer, factory))
    notes.close()


def test_report_series(benchmark):
    rows = []
    speedups = {}
    for existing in EXISTING_COUNTS:
        incremental_notes = _session_with_row(existing)
        factory = AnnotationFactory(seed=97)
        incremental = time_call(
            lambda: _add_one(incremental_notes, incremental_notes.manager,
                             factory),
            repeats=3,
        )
        rebuild_notes = _session_with_row(existing)
        maintainer = RebuildMaintainer(
            rebuild_notes.db, rebuild_notes.annotations, rebuild_notes.catalog
        )
        rebuild = time_call(
            lambda: _add_one(rebuild_notes, maintainer, factory), repeats=3
        )
        speedups[existing] = rebuild / incremental
        rows.append(
            (existing, incremental * 1000, rebuild * 1000, speedups[existing])
        )
        incremental_notes.close()
        rebuild_notes.close()
    write_report(
        "exp_m1_maintenance",
        "EXP-M1: cost of absorbing one annotation vs existing annotations",
        ["existing", "incremental ms", "rebuild ms", "speedup"],
        rows,
    )
    # Shape: incremental wins at every size and the gap grows.
    assert all(speedup > 1 for speedup in speedups.values())
    assert speedups[EXISTING_COUNTS[-1]] > speedups[EXISTING_COUNTS[0]]
    benchmark(lambda: None)
