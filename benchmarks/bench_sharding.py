"""EXP-SH — Bulk-ingest and read throughput across storage shard counts.

Sweeps the shard count (1 / 2 / 4 / 8) of the hash-partitioned storage
backend under the mixed load the sharding rework targets: **four writer
threads bulk-ingesting annotation batches while eight reader threads
run scatter-gather pushdown queries**.  ``shards_1`` is the single-file
compatibility baseline (one lock-serialized writer); at ``shards_N``
each shard has its own SQLite file, connection pool, and independently
serialized writer, so concurrent batches land on disjoint write locks
and overlap their commit / WAL work instead of queueing.

Two workloads:

* ``ingest_under_read`` (the gated one) — wall-clock for the four
  writers to finish a fixed number of ``AnnotationStore.add_many``
  batches each while the readers query continuously.  Fixed write work,
  so the ``shards_1 / shards_4`` wall-clock ratio *is* the ingest
  throughput gain; the acceptance gate wants >= 2x.
* ``read_under_ingest`` (informational) — wall-clock for the readers to
  finish a fixed number of queries each while the writers ingest
  continuously; shows what scatter-gather scans cost / gain under write
  pressure.

Ingest goes through the storage layer (``session.annotations.add_many``)
rather than the session facade: the benchmark isolates the storage
backend, and the facade's summary-maintenance fold holds a single
process-wide lock that would serialize both topologies equally.  The
annotation shape follows the paper's setting — **~600-byte bodies
attached to three cells each** (one observation often concerns several
tuples), ingested in small frequent batches (10 per commit).  That is
the regime per-shard writers target: every commit is a write-lock
acquisition plus WAL append on the baseline's one file, while the
block-affine id placement gives each sharded batch a private shard —
under heavy concurrent read pressure the baseline writer that holds
the single write lock keeps losing its GIL timeslice to readers,
convoying every other writer behind it, which per-shard locks avoid.

Reusable pieces (:func:`build_sharding_session`, :func:`make_batches`,
:func:`measure_ingest_under_read`, :func:`measure_read_under_ingest`)
are shared with ``run_bench.py --bench shard``, which records the
trajectory in ``BENCH_shard.json``.
"""

from __future__ import annotations

import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import write_report
from repro.engine.session import InsightNotes
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationDraft

MODES = {
    "shards_1": {"shards": 1},
    "shards_2": {"shards": 2},
    "shards_4": {"shards": 4},
    "shards_8": {"shards": 8},
}

#: Concurrent ingest threads; also the cell key (``4w``).
WRITERS = 4

#: Concurrent query threads; also the cell key (``8t``).  Deliberately
#: heavier than the writer side: the paper's scenario is many consumers
#: browsing summaries while annotations stream in, and read pressure is
#: what amplifies the baseline's single-write-lock convoy.
READERS = 8

#: Annotations per ``add_many`` batch — small frequent commits.
BATCH_ROWS = 10

#: Cells attached per annotation (the same observation attached to
#: several tuples).
CELLS_PER_ANNOTATION = 3

#: Sargable mix: every predicate/LIMIT compiles into the storage scan,
#: so sharded runs exercise the scatter-gather merge end to end.
QUERIES = [
    "SELECT name, species FROM birds "
    "WHERE weight > 64.6 AND region = 'north' LIMIT 25",
    "SELECT name FROM birds WHERE species = 'species7' AND weight < 0.4",
    "SELECT name, weight FROM birds WHERE weight >= 129.3",
]

#: ~600 bytes per annotation ("even metadata is getting big") — enough
#: WAL payload per batch that commit work is measurable, small enough
#: that batches stay frequent.
_TEXT = (
    "observed feeding on stonewort near the reed bed at dawn; "
    "ring read, condition good, no sign of avian pox or influenza "
) * 5


def build_sharding_session(path: str, num_rows: int, mode: str
                           ) -> InsightNotes:
    """A file-backed session with a scannable ``birds`` relation.

    ``birds`` is the query target *and* the attachment target of the
    ingested annotations, so reads scatter-gather over exactly the
    shards the writers are committing into.
    """
    session = InsightNotes(path, **MODES[mode])
    session.create_table("birds", ["name", "species", "region", "weight"])
    names = ["finch", "heron", "plover", "warbler", "sparrow", "egret"]
    session.insert_many(
        "birds",
        [
            (
                f"{names[i % 6]} {i}",
                f"species{i % 12}",
                ("north", "south", "east", "west")[i % 4],
                (i * 7 % 13000) / 100.0,
            )
            for i in range(num_rows)
        ],
    )
    return session


def make_batches(
    n_writers: int, batches_per_writer: int, batch_rows: int, num_rows: int
) -> list[list[list[AnnotationDraft]]]:
    """Prebuilt per-writer draft batches (``[writer][batch] -> drafts``).

    Drafts are immutable value objects, so the same batches can be
    replayed across repeats; texts are distinct, every annotation
    attaches to :data:`CELLS_PER_ANNOTATION` cells, and rows cycle over
    the whole relation so attachments spread across every shard.
    """
    batches: list[list[list[AnnotationDraft]]] = []
    for writer in range(n_writers):
        per_writer: list[list[AnnotationDraft]] = []
        for batch in range(batches_per_writer):
            start = (writer * batches_per_writer + batch) * batch_rows
            per_writer.append(
                [
                    AnnotationDraft(
                        text=f"{_TEXT}#{start + i}",
                        cells=tuple(
                            CellRef(
                                "birds",
                                (start + i + k * 97) % num_rows + 1,
                                "name",
                            )
                            for k in range(CELLS_PER_ANNOTATION)
                        ),
                    )
                    for i in range(batch_rows)
                ]
            )
        batches.append(per_writer)
    return batches


def warm_readers(
    session: InsightNotes, executor: ThreadPoolExecutor, workers: int
) -> None:
    """Run the query mix once on every reader thread (opens and warms
    each thread's pooled read connections before measurement)."""
    barrier = threading.Barrier(workers)

    def warm() -> None:
        barrier.wait(timeout=30)
        for sql in QUERIES:
            session.query(sql)

    futures = [executor.submit(warm) for _ in range(workers)]
    for future in futures:
        future.result()


def measure_ingest_under_read(
    session: InsightNotes,
    writer_pool: ThreadPoolExecutor,
    reader_pool: ThreadPoolExecutor,
    batches: list[list[list[AnnotationDraft]]],
    n_readers: int,
) -> dict:
    """Wall-clock for every writer to drain its batch list while
    ``n_readers`` query threads run the mix continuously.

    The write work is fixed, so ``seconds`` across modes compares ingest
    throughput directly; reader progress is reported so a mode cannot
    "win" by starving reads.
    """
    stop = threading.Event()
    barrier = threading.Barrier(len(batches))

    def writer(worker: int) -> int:
        barrier.wait(timeout=30)
        done = 0
        for batch in batches[worker]:
            session.annotations.add_many(batch)
            done += 1
        return done

    def reader(worker: int) -> int:
        done = 0
        while not stop.is_set():
            session.query(QUERIES[(worker + done) % len(QUERIES)])
            done += 1
        return done

    reader_futures = [reader_pool.submit(reader, k) for k in range(n_readers)]
    started = time.perf_counter()
    writer_futures = [
        writer_pool.submit(writer, k) for k in range(len(batches))
    ]
    batch_count = sum(future.result() for future in writer_futures)
    elapsed = time.perf_counter() - started
    stop.set()
    queries = sum(future.result() for future in reader_futures)
    annotations = batch_count * len(batches[0][0])
    return {
        "seconds": elapsed,
        "annotations": annotations,
        "annotations_per_s": annotations / max(elapsed, 1e-9),
        "writer_batches": batch_count,
        "reader_queries": queries,
    }


def measure_read_under_ingest(
    session: InsightNotes,
    writer_pool: ThreadPoolExecutor,
    reader_pool: ThreadPoolExecutor,
    batches: list[list[list[AnnotationDraft]]],
    n_readers: int,
    per_reader: int,
) -> dict:
    """Wall-clock for ``n_readers`` threads to finish ``per_reader``
    queries each while every writer thread ingests continuously."""
    stop = threading.Event()

    def writer(worker: int) -> int:
        done = 0
        while not stop.is_set():
            session.annotations.add_many(
                batches[worker][done % len(batches[worker])]
            )
            done += 1
        return done

    def reader(worker: int) -> None:
        for round_number in range(per_reader):
            session.query(QUERIES[(worker + round_number) % len(QUERIES)])

    writer_futures = [
        writer_pool.submit(writer, k) for k in range(len(batches))
    ]
    started = time.perf_counter()
    reader_futures = [reader_pool.submit(reader, k) for k in range(n_readers)]
    for future in reader_futures:
        future.result()
    elapsed = time.perf_counter() - started
    stop.set()
    batch_count = sum(future.result() for future in writer_futures)
    queries = n_readers * per_reader
    return {
        "seconds": elapsed,
        "queries": queries,
        "queries_per_s": queries / max(elapsed, 1e-9),
        "writer_batches": batch_count,
    }


def ingest_statements(
    session: InsightNotes, batch: list[AnnotationDraft]
) -> int:
    """SQLite statements issued by one single-threaded ingest batch."""
    with session.db.track_queries() as counter:
        session.annotations.add_many(batch)
    return counter.count


def shard_write_batches(before: dict, after: dict) -> dict[str, int]:
    """Per-shard writer-batch deltas between two counter snapshots."""
    return {
        shard: after[shard]["write_batches"]
        - before.get(shard, {}).get("write_batches", 0)
        for shard in sorted(after, key=int)
    }


# -- pytest entry point ----------------------------------------------------

_SMOKE_ROWS = 2_000
_SMOKE_BATCH = 50
_SMOKE_BATCHES_PER_WRITER = 3
_SMOKE_PER_READER = 2


@pytest.mark.parametrize("mode", ["shards_1", "shards_4"])
def test_sharded_ingest_report(tmp_path, mode):
    """Series table: ingest-under-read wall-clock, one shard count."""
    session = build_sharding_session(
        str(tmp_path / f"{mode}.db"), _SMOKE_ROWS, mode
    )
    writer_pool = ThreadPoolExecutor(max_workers=WRITERS)
    reader_pool = ThreadPoolExecutor(max_workers=READERS)
    try:
        warm_readers(session, reader_pool, READERS)
        batches = make_batches(
            WRITERS, _SMOKE_BATCHES_PER_WRITER, _SMOKE_BATCH, _SMOKE_ROWS
        )
        runs = [
            measure_ingest_under_read(
                session, writer_pool, reader_pool, batches, READERS
            )
            for _ in range(3)
        ]
        median = statistics.median(run["seconds"] for run in runs)
        counters = session.db.backend.counters()
        # Sanity, not a perf gate (CI machines vary too much): every
        # batch landed, readers made progress, and — when sharded —
        # every shard took writes.
        assert all(
            run["writer_batches"] == WRITERS * _SMOKE_BATCHES_PER_WRITER
            for run in runs
        )
        assert all(run["reader_queries"] >= 1 for run in runs)
        assert all(
            pool["write_batches"] >= 1 for pool in counters.values()
        )
        write_report(
            f"exp_sh_sharding_{mode}",
            f"EXP-SH: ingest under concurrent reads ({mode})",
            ["mode", "writers", "median ms", "annotations/s"],
            [
                [
                    mode,
                    WRITERS,
                    round(median * 1000, 1),
                    round(runs[0]["annotations"] / max(median, 1e-9), 1),
                ]
            ],
        )
    finally:
        writer_pool.shutdown()
        reader_pool.shutdown()
        session.close()
