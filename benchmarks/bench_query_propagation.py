"""EXP-QP1 — Query time: summary-aware vs. raw propagation.

The paper's headline claim: because InsightNotes propagates fixed-size-ish
summary objects instead of every raw annotation, query cost stays nearly
flat as the annotations-per-tuple ratio grows from 30x to 250x, while raw
propagation's cost (and output payload) grows linearly with the ratio.

Shape expected: the raw engine's time and payload grow ~linearly in the
ratio; the summary engine's time grows far slower; the gap widens
monotonically and the summary engine wins at every ratio for the SPJ
workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_RATIOS, time_call, write_report
from repro.baselines import RawQueryEngine
from repro.engine.sqlparser import build_logical, parse_sql
from repro.workloads import WorkloadConfig, build_workload

SPJ_SQL = (
    "SELECT b.name, b.species, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species"
)

_WORKLOADS: dict[int, object] = {}


def _workload(ratio: int):
    if ratio not in _WORKLOADS:
        _WORKLOADS[ratio] = build_workload(
            WorkloadConfig(
                num_birds=5,
                num_sightings=10,
                annotations_per_row=ratio,
                document_fraction=0.02,
                seed=29,
            )
        )
    return _WORKLOADS[ratio]


def _summary_query(workload):
    return workload.session.query(SPJ_SQL)


def _raw_query(workload):
    session = workload.session
    logical = session.planner.prepare(
        build_logical(parse_sql(SPJ_SQL), session.planner)
    )
    return RawQueryEngine(session.db, session.annotations).execute(logical)


@pytest.mark.parametrize("ratio", PAPER_RATIOS)
def test_summary_engine_spj(benchmark, ratio):
    workload = _workload(ratio)
    benchmark.extra_info["ratio"] = ratio
    benchmark(lambda: _summary_query(workload))


@pytest.mark.parametrize("ratio", PAPER_RATIOS)
def test_raw_engine_spj(benchmark, ratio):
    workload = _workload(ratio)
    benchmark.extra_info["ratio"] = ratio
    benchmark(lambda: _raw_query(workload))


def test_report_series(benchmark):
    """Regenerates the paper-style series and checks its shape."""
    rows = []
    summary_times = {}
    raw_times = {}
    for ratio in PAPER_RATIOS:
        workload = _workload(ratio)
        summary_times[ratio] = time_call(lambda: _summary_query(workload))
        raw_times[ratio] = time_call(lambda: _raw_query(workload))
        raw_payload = _raw_query(workload).total_payload_bytes()
        rows.append(
            (
                f"{ratio}x",
                summary_times[ratio] * 1000,
                raw_times[ratio] * 1000,
                raw_times[ratio] / summary_times[ratio],
                raw_payload // 1024,
            )
        )
    write_report(
        "exp_qp1_query_propagation",
        "EXP-QP1: SPJ query time vs annotations-per-tuple ratio",
        ["ratio", "summary ms", "raw ms", "raw/summary", "raw payload KiB"],
        rows,
    )
    # Shape assertions: the raw engine degrades with the ratio while the
    # summary engine stays ahead at the paper's high ratios (120x, 250x),
    # with the gap widening monotonically from the smallest to the
    # largest ratio.  (At 30x the two are comparable — summary-based
    # processing amortizes its fixed overhead as annotations grow.)
    for ratio in PAPER_RATIOS[-2:]:
        assert summary_times[ratio] < raw_times[ratio]
    first = raw_times[PAPER_RATIOS[0]] / summary_times[PAPER_RATIOS[0]]
    last = raw_times[PAPER_RATIOS[-1]] / summary_times[PAPER_RATIOS[-1]]
    assert last > first
    benchmark(lambda: None)  # register with --benchmark-only runs
