"""EXP-M3 — Sustained annotation ingest throughput.

The introduction quotes eBird's rate — 1.6 million annotations per month
(~0.6/sec sustained, with far higher bursts).  This benchmark measures
the reproduction's sustained ingest rate (annotations/second through the
full path: store + incremental summarization of every linked instance)
as the number of linked summary instances grows, and under the
write-through vs. deferred persistence modes.

Shape expected: throughput comfortably above the eBird sustained rate at
every configuration; throughput degrades roughly linearly with the
instance count; deferred persistence beats write-through.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro import InsightNotes
from repro.model.cell import CellRef
from repro.workloads.corpus import AnnotationFactory

BATCH = 150
INSTANCE_COUNTS = (1, 2, 4)


def _session(instance_count: int, write_through: bool) -> InsightNotes:
    notes = InsightNotes()
    notes.create_table("birds", ["name", "region"])
    for i in range(10):
        notes.insert("birds", (f"bird-{i}", "north"))
    factory = AnnotationFactory(seed=67)
    training = factory.training_set(8)
    labels = sorted({label for _, label in training})
    for index in range(instance_count):
        name = f"I{index}"
        if index % 2 == 0:
            notes.define_classifier(name, labels, training)
        else:
            notes.define_cluster(name, threshold=0.3)
        notes.link(name, "birds")
    notes.manager.write_through = write_through
    return notes


def _ingest_batch(notes: InsightNotes, factory: AnnotationFactory,
                  rng_rows: list[int]) -> None:
    for i in range(BATCH):
        text, _category = factory.draw()
        row_id = rng_rows[i % len(rng_rows)]
        annotation = notes.annotations.add(
            text, [CellRef("birds", row_id, "name")]
        )
        notes.manager.on_annotation_added(
            annotation, notes.annotations.cells_of(annotation.annotation_id)
        )
    notes.manager.flush()


def _throughput(instance_count: int, write_through: bool) -> float:
    notes = _session(instance_count, write_through)
    factory = AnnotationFactory(seed=71)
    rows = list(range(1, 11))
    started = time.perf_counter()
    _ingest_batch(notes, factory, rows)
    elapsed = time.perf_counter() - started
    notes.close()
    return BATCH / elapsed


@pytest.mark.parametrize("instance_count", INSTANCE_COUNTS)
def test_ingest_write_through(benchmark, instance_count):
    notes = _session(instance_count, write_through=True)
    factory = AnnotationFactory(seed=71)
    rows = list(range(1, 11))
    benchmark.extra_info["instances"] = instance_count
    benchmark.pedantic(
        lambda: _ingest_batch(notes, factory, rows), rounds=2, iterations=1
    )
    notes.close()


def test_report_series(benchmark):
    rows = []
    rates = {}
    for instance_count in INSTANCE_COUNTS:
        write_through = _throughput(instance_count, write_through=True)
        deferred = _throughput(instance_count, write_through=False)
        rates[instance_count] = (write_through, deferred)
        rows.append((instance_count, write_through, deferred))
    write_report(
        "exp_m3_throughput",
        "EXP-M3: annotation ingest throughput (annotations/second)",
        ["instances", "write-through/s", "deferred/s"],
        rows,
    )
    # eBird sustained rate is ~0.6 annotations/second; any modern single
    # node must clear it by orders of magnitude.
    ebird_rate = 1_600_000 / (30 * 24 * 3600)
    for write_through, deferred in rates.values():
        assert write_through > ebird_rate * 100
        assert deferred >= write_through * 0.8  # deferred never much worse
    benchmark(lambda: None)
