"""EXP-SP1 — Scan pipeline: block prefetch vs. per-row loading.

The block-oriented scan loads each block's summary objects and attachment
maps in bulk (chunked IN-list queries) and serves repeats from the
catalog's deserialization LRU.  The "before" configuration —
``scan_block_size=1`` with the catalog cache disabled — reproduces the
per-row path the scan used previously.

Shape expected: the blocked pipeline issues at least 5x fewer SQLite
statements on a full-table scan and wins wall-clock on the SPJ workload;
the gap grows with the annotations-per-tuple ratio because every
annotation inflates the summary payloads deserialized per row.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro.engine.session import InsightNotes
from repro.workloads import WorkloadConfig, build_workload

SCAN_SQL = "SELECT name, species, region, weight FROM birds"
SPJ_SQL = (
    "SELECT b.name, b.species, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species"
)
GROUP_SQL = "SELECT species, count(*) FROM birds GROUP BY species"

BENCH_RATIOS = (30, 120)

_WORKLOADS: dict[tuple[int, str], object] = {}


def _workload(ratio: int, mode: str):
    """A generated workload in ``blocked`` or ``per_row`` configuration."""
    key = (ratio, mode)
    if key not in _WORKLOADS:
        session = (
            InsightNotes()
            if mode == "blocked"
            else InsightNotes(scan_block_size=1, object_cache_size=0)
        )
        _WORKLOADS[key] = build_workload(
            WorkloadConfig(
                num_birds=16,
                num_sightings=32,
                annotations_per_row=ratio,
                document_fraction=0.02,
                seed=29,
            ),
            session=session,
        )
    return _WORKLOADS[key]


@pytest.mark.parametrize("ratio", BENCH_RATIOS)
@pytest.mark.parametrize("mode", ("blocked", "per_row"))
def test_scan(benchmark, ratio, mode):
    workload = _workload(ratio, mode)
    benchmark.extra_info.update(ratio=ratio, mode=mode)
    benchmark(lambda: workload.session.query(SCAN_SQL))


@pytest.mark.parametrize("ratio", BENCH_RATIOS)
@pytest.mark.parametrize("mode", ("blocked", "per_row"))
def test_spj(benchmark, ratio, mode):
    workload = _workload(ratio, mode)
    benchmark.extra_info.update(ratio=ratio, mode=mode)
    benchmark(lambda: workload.session.query(SPJ_SQL))


def test_report_series(benchmark):
    """Regenerates the roundtrip/time series and checks its shape."""
    rows = []
    for ratio in BENCH_RATIOS:
        blocked = _workload(ratio, "blocked")
        per_row = _workload(ratio, "per_row")
        for workload in (blocked, per_row):
            workload.session.manager.drop_caches()
        blocked.session.catalog.configure_object_cache(0)
        try:
            with blocked.session.db.track_queries() as fast:
                blocked.session.query(SCAN_SQL)
            with per_row.session.db.track_queries() as slow:
                per_row.session.query(SCAN_SQL)
        finally:
            blocked.session.catalog.configure_object_cache(8192)
        blocked_spj = time_call(lambda: blocked.session.query(SPJ_SQL))
        per_row_spj = time_call(lambda: per_row.session.query(SPJ_SQL))
        rows.append(
            (
                f"{ratio}x",
                fast.count,
                slow.count,
                slow.count / max(1, fast.count),
                blocked_spj * 1000,
                per_row_spj * 1000,
                per_row_spj / blocked_spj,
            )
        )
        # The tentpole targets: >=5x fewer roundtrips on the full scan
        # and a wall-clock win on SPJ propagation.
        assert slow.count >= 5 * fast.count
        assert blocked_spj < per_row_spj
    write_report(
        "exp_sp1_scan_pipeline",
        "EXP-SP1: block-prefetch scan vs per-row loading",
        ["ratio", "blocked stmts", "per-row stmts", "stmt ratio",
         "blocked SPJ ms", "per-row SPJ ms", "speedup"],
        rows,
    )
    benchmark(lambda: None)  # register with --benchmark-only runs
