"""EXP-SV — Served mixed-workload latency and throughput under load.

Drives the annotation **service layer** end to end: N simulated clients
(asyncio tasks) issue a deterministic mixed workload — sargable SQL
queries, zoom-ins back to raw annotations, and bulk ``add_annotations``
ingest batches — against one long-running :class:`AnnotationServer`,
in two storage configurations:

* ``single`` — the single-file backend: one serialized writer, pooled
  per-thread readers.
* ``sharded`` — ``shards=4``: hash-partitioned storage with per-shard
  writers and pools, plus a second writer-lane thread so concurrent
  ingest batches can actually overlap their per-shard commits.

Each cell fixes the offered load (``n_clients x per_client`` requests)
and measures the wall-clock to complete it plus **per-request latency
percentiles by operation class** — the tail-latency-under-contention
numbers nothing in the library-level benchmarks measures.  Admission
queues are sized to the offered load, so a healthy run completes with
zero rejections/timeouts; any other outcome fails the gate outright
(a load generator that silently drops work reports fantasy QPS).

Reusable pieces (:func:`build_serve_server`, :func:`run_load`,
:func:`measure_serve`) are shared with ``run_bench.py --bench serve``,
which records the trajectory in ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import statistics
import time

import pytest

from benchmarks.conftest import write_report
from repro.serve.server import AnnotationServer, ServerConfig
from repro.serve.stats import percentile

MODES = {
    "single": {"shards": 1, "writers": 1},
    "sharded": {"shards": 4, "writers": 2},
}

CLIENT_COUNTS = (1, 4, 16)

#: Reader-lane worker threads — the served analogue of the concurrency
#: bench's pooled topology (SQLite scans release the GIL, so reader
#: threads overlap).
READERS = 4

#: Sargable reader mix over the stable ``birds`` relation (never written
#: during measurement, so every query has one deterministic answer).
QUERIES = [
    "SELECT name, species FROM birds "
    "WHERE weight > 64.6 AND region = 'north' LIMIT 25",
    "SELECT name FROM birds WHERE species = 'species7' AND weight < 0.4",
    "SELECT name, weight FROM birds WHERE weight >= 129.3",
]

#: The zoom-in reference query: its rows are all annotated at build
#: time, so the ZOOMIN expansion always has components to fetch.
ZOOM_QUERY = "SELECT name, species FROM birds LIMIT 30"

#: Annotations per ingest request (one bulk add_annotations call).
INGEST_BATCH = 10

#: ~600-byte annotation bodies, as in the sharding bench ("even
#: metadata is getting big").
_TEXT = (
    "observed feeding on stonewort near the reed bed at dawn; "
    "ring read, condition good, no sign of avian pox or influenza "
) * 5

_TRAINING = [
    ("observed feeding on stonewort at dawn", "Behavior"),
    ("seen foraging among pond weeds", "Behavior"),
    ("shows symptoms of avian influenza", "Disease"),
    ("appears infected with avian pox", "Disease"),
]


async def build_serve_server(
    path: str, num_rows: int, mode: str, max_clients: int
) -> AnnotationServer:
    """A started server over a populated file-backed workload session.

    Admission queues are sized to the sweep's maximum client count:
    the benchmark measures latency under contention, not the rejection
    path (the error-path tests own that).
    """
    settings = dict(MODES[mode])
    writers = settings.pop("writers")
    config = ServerConfig(
        readers=READERS,
        writers=writers,
        read_queue_depth=max(32, 4 * max_clients),
        write_queue_depth=max(16, 2 * max_clients),
        request_timeout_s=None,
    )
    server = AnnotationServer(config=config, path=path, **settings)
    await server.start()
    session = server.session
    session.create_table("birds", ["name", "species", "region", "weight"])
    session.create_table("sightings", ["site", "count"])
    names = ["finch", "heron", "plover", "warbler", "sparrow", "egret"]
    await server.insert_many(
        "birds",
        [
            (
                f"{names[i % 6]} {i}",
                f"species{i % 12}",
                ("north", "south", "east", "west")[i % 4],
                (i * 7 % 13000) / 100.0,
            )
            for i in range(num_rows)
        ],
    )
    await server.insert_many(
        "sightings", [(f"site{i % 20}", i) for i in range(200)]
    )
    session.define_classifier("BirdClass", ["Behavior", "Disease"], _TRAINING)
    session.link("BirdClass", "birds")
    # Annotate every ZOOM_QUERY row (so expansions always match) plus a
    # sprinkle across the relation.
    await server.add_annotations(
        [
            {
                "text": "observed feeding on stonewort at dawn",
                "table": "birds",
                "row_id": row_id,
            }
            for row_id in range(1, 31)
        ]
        + [
            {
                "text": f"observed feeding note {i}",
                "table": "birds",
                "row_id": i * 200 + 31,
            }
            for i in range((num_rows - 31) // 200)
        ]
    )
    return server


def ingest_specs(worker: int, round_number: int) -> list[dict]:
    """One bulk-ingest request's annotation batch (sightings rows)."""
    return [
        {
            "text": f"{_TEXT} w{worker} r{round_number} i{i}",
            "table": "sightings",
            "row_id": (worker * 31 + round_number * 7 + i) % 200 + 1,
        }
        for i in range(INGEST_BATCH)
    ]


async def run_load(
    server: AnnotationServer, n_clients: int, per_client: int
) -> dict:
    """Drive the fixed mixed load; returns wall-clock plus latencies.

    Each client walks a deterministic schedule of ``per_client`` slots:
    slot 7 of every 8 is a bulk ingest, slot 3 is a zoom-in (reference
    query + ZOOMIN expansion), everything else is a sargable query.
    Latencies are recorded per request, keyed by operation class.
    """
    latencies: dict[str, list[float]] = {
        "query": [],
        "ingest": [],
        "zoomin": [],
    }

    async def timed(kind: str, coroutine) -> object:
        started = time.perf_counter()
        result = await coroutine
        latencies[kind].append(time.perf_counter() - started)
        return result

    async def client(worker: int) -> None:
        for slot in range(per_client):
            if slot % 8 == 7:
                await timed(
                    "ingest",
                    server.add_annotations(ingest_specs(worker, slot)),
                )
            elif slot % 8 == 3:
                reference = await timed("query", server.query(ZOOM_QUERY))
                await timed(
                    "zoomin",
                    server.zoomin(
                        f"ZOOMIN REFERENCE QID = {reference.qid} "
                        "ON BirdClass DETAIL FULL"
                    ),
                )
            else:
                sql = QUERIES[(worker + slot) % len(QUERIES)]
                await timed("query", server.query(sql))

    started = time.perf_counter()
    await asyncio.gather(*(client(worker) for worker in range(n_clients)))
    elapsed = time.perf_counter() - started
    requests = sum(len(samples) for samples in latencies.values())
    return {
        "seconds": elapsed,
        "requests": requests,
        "latencies": latencies,
    }


def _health(server: AnnotationServer) -> dict[str, int]:
    """Rejection/timeout/failure totals across both lanes."""
    totals = {"rejected": 0, "timed_out": 0, "failed": 0}
    for lane in server.stats.snapshot()["lanes"].values():
        totals["rejected"] += (
            lane["rejected_overload"] + lane["rejected_closed"]
        )
        totals["timed_out"] += lane["timed_out"]
        totals["failed"] += lane["failed"]
    return totals


async def measure_serve(
    server: AnnotationServer,
    n_clients: int,
    per_client: int,
    repeats: int,
) -> dict:
    """Median-of-``repeats`` cell for one (server, client-count) pair.

    Wall-clock is the median across runs; latency percentiles pool every
    run's samples (more tail resolution than any single run).  Health
    counters are the *delta* across the cell, so a dirty earlier cell
    cannot hide — or fabricate — problems here.
    """
    before = _health(server)
    runs = [
        await run_load(server, n_clients, per_client) for _ in range(repeats)
    ]
    after = _health(server)
    pooled: dict[str, list[float]] = {"query": [], "ingest": [], "zoomin": []}
    for run in runs:
        for kind, samples in run["latencies"].items():
            pooled[kind].extend(samples)
    every = [sample for samples in pooled.values() for sample in samples]
    median_s = statistics.median(run["seconds"] for run in runs)
    requests = runs[0]["requests"]
    cell = {
        "median_s": round(median_s, 6),
        "requests": requests,
        "qps": round(requests / max(median_s, 1e-9), 1),
        "p50_ms": round(percentile(every, 0.50) * 1000, 3),
        "p99_ms": round(percentile(every, 0.99) * 1000, 3),
        "ops": {
            kind: {
                "count": len(samples),
                "p50_ms": round(percentile(samples, 0.50) * 1000, 3),
                "p99_ms": round(percentile(samples, 0.99) * 1000, 3),
            }
            for kind, samples in pooled.items()
            if samples
        },
        "health": {
            key: after[key] - before[key] for key in after
        },
    }
    return cell


# -- pytest entry point ----------------------------------------------------

_SMOKE_ROWS = 4_000
_SMOKE_PER_CLIENT = 12


@pytest.mark.parametrize("mode", sorted(MODES))
def test_served_mixed_workload_report(tmp_path, mode):
    """Series table: client sweep through the served front end."""

    async def scenario() -> list[list[object]]:
        server = await build_serve_server(
            str(tmp_path / f"{mode}.db"), _SMOKE_ROWS, mode, max_clients=4
        )
        rows = []
        try:
            await run_load(server, 4, _SMOKE_PER_CLIENT)  # warm
            for n_clients in (1, 4):
                cell = await measure_serve(
                    server, n_clients, _SMOKE_PER_CLIENT, repeats=3
                )
                assert cell["health"] == {
                    "rejected": 0,
                    "timed_out": 0,
                    "failed": 0,
                }
                rows.append(
                    [
                        mode,
                        n_clients,
                        cell["qps"],
                        cell["p50_ms"],
                        cell["p99_ms"],
                    ]
                )
        finally:
            await server.stop()
        return rows

    rows = asyncio.run(scenario())
    write_report(
        f"exp_sv_serve_{mode}",
        f"EXP-SV: served mixed workload ({mode} backend)",
        ["mode", "clients", "qps", "p50 ms", "p99 ms"],
        rows,
    )
