"""EXP-X1 — Cost profile of the extension summary types.

The extensibility claim (§2.3) is only credible if types added through
the public contract behave like the built-ins.  This benchmark gives each
type family the same workload — maintenance (absorb one annotation into a
row carrying 50) and querying (scan + propagate) — and compares.

Shape expected: the extension types (Terms, Timeline) fall within the
range spanned by the built-ins on both axes: none of the engine's paths
privilege the built-in types.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro import InsightNotes
from repro.model.cell import CellRef
from repro.summaries import extended_registry
from repro.workloads.corpus import AnnotationFactory

EXISTING = 50

TYPE_CONFIGS = {
    "Classifier": ("Classifier", {"labels": ["a", "b", "c"]}),
    "Cluster": ("Cluster", {"threshold": 0.3}),
    "Snippet": ("Snippet", {"documents_only": False, "max_sentences": 2}),
    "Terms": ("Terms", {"top_k": 5}),
    "Timeline": ("Timeline", {"bucket_seconds": 3600}),
}


def _session(kind: str) -> InsightNotes:
    type_name, config = TYPE_CONFIGS[kind]
    notes = InsightNotes(registry=extended_registry())
    notes.create_table("t", ["v"])
    notes.insert("t", ("x",))
    instance = notes.catalog.define_instance(type_name, "Probe", config)
    if type_name == "Classifier":
        instance.train([("alpha words", "a"), ("beta words", "b"),
                        ("gamma words", "c")])
    notes.link("Probe", "t")
    factory = AnnotationFactory(seed=83)
    for _ in range(EXISTING):
        text, _category = factory.draw()
        notes.add_annotation(text, table="t", row_id=1,
                             created_at=factory._rng.uniform(0, 30 * 86400))
    return notes


def _absorb_one(notes: InsightNotes, factory: AnnotationFactory) -> None:
    text, _category = factory.draw()
    annotation = notes.annotations.add(text, [CellRef("t", 1, "v")])
    notes.manager.on_annotation_added(
        annotation, notes.annotations.cells_of(annotation.annotation_id)
    )


@pytest.mark.parametrize("kind", sorted(TYPE_CONFIGS))
def test_maintenance_per_type(benchmark, kind):
    notes = _session(kind)
    factory = AnnotationFactory(seed=89)
    benchmark.extra_info["type"] = kind
    benchmark(lambda: _absorb_one(notes, factory))
    notes.close()


@pytest.mark.parametrize("kind", sorted(TYPE_CONFIGS))
def test_query_per_type(benchmark, kind):
    notes = _session(kind)
    notes.query("SELECT v FROM t")  # warm
    benchmark.extra_info["type"] = kind
    benchmark(lambda: notes.query("SELECT v FROM t"))
    notes.close()


def test_report_series(benchmark):
    rows = []
    maintenance = {}
    query = {}
    for kind in TYPE_CONFIGS:
        notes = _session(kind)
        factory = AnnotationFactory(seed=89)
        maintenance[kind] = time_call(lambda: _absorb_one(notes, factory))
        notes.query("SELECT v FROM t")
        query[kind] = time_call(lambda: notes.query("SELECT v FROM t"))
        rows.append((kind, maintenance[kind] * 1000, query[kind] * 1000))
        notes.close()
    write_report(
        "exp_x1_extension_types",
        f"EXP-X1: per-type cost (1 row, {EXISTING} existing annotations)",
        ["type", "maintain ms", "query ms"],
        rows,
    )
    builtins = ("Classifier", "Cluster", "Snippet")
    extensions = ("Terms", "Timeline")
    # Shape: the extension types stay within the cost envelope the
    # built-ins span, on both axes.  The tolerance absorbs timer noise on
    # sub-millisecond measurements — the claim is "same order, no
    # privileged path", not microsecond equality.
    for metric in (maintenance, query):
        ceiling = max(metric[k] for k in builtins) * 2.0
        for kind in extensions:
            assert metric[kind] <= ceiling
    benchmark(lambda: None)
