"""EXP-CC — Aggregate read throughput under concurrent ingest.

Sweeps the number of client threads (1 / 2 / 4 / 8) issuing pushdown
queries against a file-backed database **while a writer thread ingests
annotation batches**, in the two read topologies:

* ``serial`` — ``serialize_reads=True``: every read statement runs on
  the single writer connection behind the write lock (the pre-pool
  engine).  Each client blocks for the full duration of any in-flight
  ingest transaction.
* ``pooled`` — the current default: per-thread read-only WAL connections
  that see a consistent committed snapshot and never wait for the
  writer.

The query mix is fully sargable (predicates + LIMIT compiled into the
storage scan), so per-query time is dominated by SQLite's C-level table
scan; the ingest batches are large enough that a serial-mode client
queues behind a multi-thousand-row write transaction on every
collision.  The measured quantity per cell is the wall-clock for all
clients to finish a fixed number of queries each (``median_s``), i.e.
fixed read work under sustained background write load — the scenario a
shared annotation store actually faces.

Client threads are reused across repeats (a persistent executor), so
each thread's pooled read connection — and its page cache — stays warm,
as it would in a long-lived server.

Reusable pieces (:func:`build_concurrency_session`,
:func:`measure_concurrency`, :func:`reader_statements`) are shared with
``run_bench.py --bench concurrency``, which records the trajectory in
``BENCH_concurrency.json``.
"""

from __future__ import annotations

import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import write_report
from repro.engine.session import InsightNotes

MODES = {
    "serial": {"serialize_reads": True},
    "pooled": {},
}

THREAD_COUNTS = (1, 2, 4, 8)

#: Sargable mix: every predicate/LIMIT compiles into the storage scan,
#: so a query's cost is one C-level SQLite pass plus a small hydration.
QUERIES = [
    "SELECT name, species FROM birds "
    "WHERE weight > 129.2 AND region = 'north' LIMIT 25",
    "SELECT name FROM birds WHERE species = 'species7' AND weight < 0.4",
    "SELECT name, weight FROM birds WHERE weight >= 129.93",
]

_TRAINING = [
    ("observed feeding on stonewort at dawn", "Behavior"),
    ("seen foraging among pond weeds", "Behavior"),
    ("shows symptoms of avian influenza", "Disease"),
    ("appears infected with avian pox", "Disease"),
]


def build_concurrency_session(
    path: str, num_rows: int, mode: str
) -> InsightNotes:
    """A file-backed session with a large scannable ``birds`` relation.

    ``birds`` (queried by the clients) is annotated and never written
    during measurement, so every client query has one deterministic
    answer; ``sightings`` is the ingest target.
    """
    session = InsightNotes(path, **MODES[mode])
    session.create_table("birds", ["name", "species", "region", "weight"])
    session.create_table("sightings", ["site", "count"])
    names = ["finch", "heron", "plover", "warbler", "sparrow", "egret"]
    session.insert_many(
        "birds",
        [
            (
                f"{names[i % 6]} {i}",
                f"species{i % 12}",
                ("north", "south", "east", "west")[i % 4],
                (i * 7 % 13000) / 100.0,
            )
            for i in range(num_rows)
        ],
    )
    session.insert_many(
        "sightings", [(f"site{i % 20}", i) for i in range(200)]
    )
    session.define_classifier(
        "BirdClass", ["Behavior", "Disease"], _TRAINING
    )
    session.link("BirdClass", "birds")
    session.add_annotations(
        [
            {
                "text": f"observed feeding note {i}",
                "table": "birds",
                "row_id": i * 200 + 1,
            }
            for i in range(num_rows // 200)
        ]
    )
    return session


def warm_clients(
    session: InsightNotes, executor: ThreadPoolExecutor, workers: int
) -> None:
    """Run the query mix once on every executor thread.

    The barrier forces all ``workers`` threads into existence so each
    opens (and warms) its pooled read connection before measurement.
    """
    barrier = threading.Barrier(workers)

    def warm() -> None:
        barrier.wait(timeout=30)
        for sql in QUERIES:
            session.query(sql)

    futures = [executor.submit(warm) for _ in range(workers)]
    for future in futures:
        future.result()


def measure_concurrency(
    session: InsightNotes,
    executor: ThreadPoolExecutor,
    n_readers: int,
    per_reader: int,
    batch_rows: int,
) -> dict:
    """Wall-clock for ``n_readers`` clients to finish ``per_reader``
    queries each while one writer runs back-to-back ``batch_rows``-row
    ingest transactions for the whole window.

    The batch payload is prebuilt so each writer iteration is one long
    write-lock window of almost pure SQLite C work — the write load a
    bulk loader produces, and the window a serial-mode client queues
    behind in full.
    """
    stop = threading.Event()
    batches = 0
    payload = [(f"site{i % 20}", i) for i in range(batch_rows)]
    insert_sql = 'INSERT INTO "sightings" VALUES (?, ?)'

    def writer() -> None:
        nonlocal batches
        while not stop.is_set():
            with session.db.transaction() as connection:
                connection.executemany(insert_sql, payload)
            batches += 1

    def reader(worker: int) -> None:
        for round_number in range(per_reader):
            session.query(QUERIES[(worker + round_number) % len(QUERIES)])

    ingest = threading.Thread(target=writer)
    started = time.perf_counter()
    ingest.start()
    futures = [executor.submit(reader, k) for k in range(n_readers)]
    for future in futures:
        future.result()
    elapsed = time.perf_counter() - started
    stop.set()
    ingest.join()
    queries = n_readers * per_reader
    return {
        "seconds": elapsed,
        "queries": queries,
        "queries_per_s": queries / max(elapsed, 1e-9),
        "writer_batches": batches,
    }


def reader_statements(session: InsightNotes) -> int:
    """SQLite statements for one cold single-thread pass of the mix."""
    session.manager.drop_caches()
    with session.db.track_queries() as counter:
        for sql in QUERIES:
            session.query(sql)
    return counter.count


# -- pytest entry point ----------------------------------------------------

_SMOKE_ROWS = 10_000
_SMOKE_BATCH = 800
_SMOKE_PER_READER = 4


@pytest.mark.parametrize("mode", sorted(MODES))
def test_concurrent_read_throughput_report(tmp_path, mode):
    """Series table: client-thread sweep under ingest, one mode."""
    session = build_concurrency_session(
        str(tmp_path / f"{mode}.db"), _SMOKE_ROWS, mode
    )
    executor = ThreadPoolExecutor(max_workers=max(THREAD_COUNTS))
    try:
        warm_clients(session, executor, max(THREAD_COUNTS))
        rows = []
        for n_readers in (1, 4):
            runs = [
                measure_concurrency(
                    session, executor, n_readers,
                    _SMOKE_PER_READER, _SMOKE_BATCH,
                )
                for _ in range(3)
            ]
            median = statistics.median(run["seconds"] for run in runs)
            rows.append(
                [
                    mode,
                    n_readers,
                    round(median * 1000, 1),
                    round(runs[0]["queries"] / max(median, 1e-9), 1),
                ]
            )
            # Sanity, not a perf gate (CI machines vary too much): all
            # queries completed and the writer made progress.
            assert all(run["writer_batches"] >= 1 for run in runs)
        write_report(
            f"exp_cc_concurrency_{mode}",
            f"EXP-CC: read throughput under ingest ({mode} reads)",
            ["mode", "clients", "median ms", "queries/s"],
            rows,
        )
    finally:
        executor.shutdown()
        session.close()
