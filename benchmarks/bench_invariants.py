"""EXP-M2 — The summarize-once optimization (invariant properties).

An annotation attached to *k* tuples must be analyzed once when the
instance is annotation- and data-invariant (§2.3), versus *k* times when
the optimization is disabled.  Measures insertion cost for multi-tuple
annotations with the contribution cache on (classifier instance with
default invariants) and off (same instance declared non-invariant).

Shape expected: with summarize-once, analyze calls stay at 1 per
annotation regardless of fan-out and insertion time grows only with the
per-object application cost; without it, analyze calls and time grow
linearly with the fan-out.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro import InsightNotes
from repro.model.cell import CellRef
from repro.workloads.corpus import AnnotationFactory

FANOUTS = (1, 8, 32)


def _session(invariant: bool) -> InsightNotes:
    notes = InsightNotes()
    notes.create_table("birds", ["name"])
    for i in range(max(FANOUTS)):
        notes.insert("birds", (f"bird-{i}",))
    factory = AnnotationFactory(seed=53)
    training = factory.training_set(8)
    labels = sorted({label for _, label in training})
    instance = notes.catalog.define_instance(
        "Classifier",
        "Cf",
        {
            "labels": labels,
            "annotation_invariant": invariant,
            "data_invariant": invariant,
        },
    )
    instance.train(training)
    notes.link("Cf", "birds")
    return notes


def _add_multi_tuple(notes: InsightNotes, factory: AnnotationFactory,
                     fanout: int) -> None:
    text, _category = factory.draw()
    cells = [CellRef("birds", row_id, "name") for row_id in range(1, fanout + 1)]
    annotation = notes.annotations.add(text, cells)
    notes.manager.on_annotation_added(annotation, cells)


@pytest.mark.parametrize("fanout", FANOUTS)
def test_summarize_once_enabled(benchmark, fanout):
    notes = _session(invariant=True)
    factory = AnnotationFactory(seed=71)
    benchmark.extra_info["fanout"] = fanout
    benchmark(lambda: _add_multi_tuple(notes, factory, fanout))
    notes.close()


@pytest.mark.parametrize("fanout", FANOUTS)
def test_summarize_once_disabled(benchmark, fanout):
    notes = _session(invariant=False)
    factory = AnnotationFactory(seed=71)
    benchmark.extra_info["fanout"] = fanout
    benchmark(lambda: _add_multi_tuple(notes, factory, fanout))
    notes.close()


def test_report_series(benchmark):
    rows = []
    for fanout in FANOUTS:
        with_cache = _session(invariant=True)
        factory = AnnotationFactory(seed=71)
        cached_time = time_call(
            lambda: _add_multi_tuple(with_cache, factory, fanout)
        )
        cached_stats = with_cache.manager.contributions.stats

        without_cache = _session(invariant=False)
        uncached_time = time_call(
            lambda: _add_multi_tuple(without_cache, factory, fanout)
        )
        uncached_stats = without_cache.manager.contributions.stats
        rows.append(
            (
                fanout,
                cached_time * 1000,
                uncached_time * 1000,
                # analyze calls per annotation insert
                cached_stats.analyze_calls / max(1, cached_stats.hits
                                                 + cached_stats.misses
                                                 + cached_stats.bypasses) * fanout,
                uncached_stats.analyze_calls
                / max(1, uncached_stats.bypasses) * fanout,
            )
        )
        with_cache.close()
        without_cache.close()
    write_report(
        "exp_m2_invariants",
        "EXP-M2: multi-tuple annotation insert, summarize-once on/off",
        ["fanout", "invariant ms", "non-invariant ms",
         "analyze/annot (inv)", "analyze/annot (non-inv)"],
        rows,
    )
    benchmark(lambda: None)


def test_analyze_call_counts(benchmark):
    """Hard check: fan-out 32 analyzes once vs 32 times."""
    invariant = _session(invariant=True)
    factory = AnnotationFactory(seed=71)
    _add_multi_tuple(invariant, factory, 32)
    assert invariant.manager.contributions.stats.misses == 1
    assert invariant.manager.contributions.stats.hits == 31
    invariant.close()

    variant = _session(invariant=False)
    _add_multi_tuple(variant, AnnotationFactory(seed=71), 32)
    assert variant.manager.contributions.stats.bypasses == 32
    variant.close()
    benchmark(lambda: None)
