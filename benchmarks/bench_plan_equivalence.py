"""EXP-QP3 — Cost and effect of Theorems 1-2 plan normalization.

Measures the planner's normalization overhead and the execution-time
effect of projecting un-needed annotations before merges, and re-asserts
the correctness property the normalization buys (equivalent plans, equal
summaries).

Shape expected: normalization itself is microseconds (pure plan rewrite);
normalized execution is no slower — and on plans that drag wide tuples
into the join, faster — than as-written execution, because merges see
fewer annotations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro.engine.sqlparser import build_logical, parse_sql

WIDE_JOIN_SQL = (
    "SELECT b.name, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species"
)


def _logical(session):
    return build_logical(parse_sql(WIDE_JOIN_SQL), session.planner)


def test_normalization_rewrite_cost(benchmark, bench_workload):
    session = bench_workload.session
    logical = _logical(session)
    benchmark(lambda: session.planner.prepare(logical))


def test_execute_normalized(benchmark, bench_workload):
    session = bench_workload.session
    logical = _logical(session)
    session.planner.normalize_plans = True
    benchmark(lambda: session.execute_logical(logical))


def test_execute_as_written(benchmark, bench_workload):
    session = bench_workload.session
    logical = _logical(session)
    session.planner.normalize_plans = False
    try:
        benchmark(lambda: session.execute_logical(logical))
    finally:
        session.planner.normalize_plans = True


def test_report_series(benchmark, bench_workload):
    session = bench_workload.session
    logical = _logical(session)

    rewrite = time_call(lambda: session.planner.prepare(logical))
    session.planner.normalize_plans = True
    normalized = time_call(lambda: session.execute_logical(logical))
    session.planner.normalize_plans = False
    as_written = time_call(lambda: session.execute_logical(logical))
    session.planner.normalize_plans = True

    write_report(
        "exp_qp3_plan_equivalence",
        "EXP-QP3: plan normalization (project-before-merge)",
        ["variant", "ms"],
        [
            ("normalization rewrite only", rewrite * 1000),
            ("execute normalized", normalized * 1000),
            ("execute as-written (merge first)", as_written * 1000),
        ],
    )
    # The rewrite is negligible next to execution.
    assert rewrite < normalized / 5
    # And normalization never loses tuples: both executions agree.
    session.planner.normalize_plans = True
    first = session.execute_logical(logical)
    session.planner.normalize_plans = False
    second = session.execute_logical(logical)
    session.planner.normalize_plans = True
    assert sorted(map(str, first.rows())) == sorted(map(str, second.rows()))
    benchmark(lambda: None)
