"""EXP-QP4 — Scalability with the number of linked summary instances.

Defines 1, 2, 4, and 8 summary instances over the same relation and
measures query time.  Each instance adds one summary object per tuple
that every operator must carry and (at merges) combine.

Shape expected: query time grows roughly linearly — and gently — in the
number of linked instances; doubling the instances must not blow up the
cost superlinearly, since instances are independent of each other.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro.workloads import WorkloadConfig, build_workload

INSTANCE_COUNTS = (1, 2, 4, 8)

SQL = (
    "SELECT b.name, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species"
)

_SESSIONS: dict[int, object] = {}


def _session(instance_count: int):
    if instance_count not in _SESSIONS:
        workload = build_workload(
            WorkloadConfig(
                num_birds=8,
                num_sightings=16,
                annotations_per_row=25,
                with_classifiers=False,
                with_cluster=False,
                with_snippet=False,
                seed=31,
            )
        )
        session = workload.session
        from repro.workloads.corpus import AnnotationFactory

        factory = AnnotationFactory(seed=31)
        training = factory.training_set(8)
        labels = sorted({label for _, label in training})
        for index in range(instance_count):
            name = f"Inst{index}"
            if index % 2 == 0:
                session.define_classifier(name, labels, training)
            else:
                session.define_cluster(name, threshold=0.3)
            session.link(name, "birds")
        session.query(SQL)  # warm caches
        _SESSIONS[instance_count] = session
    return _SESSIONS[instance_count]


@pytest.mark.parametrize("instance_count", INSTANCE_COUNTS)
def test_query_with_instances(benchmark, instance_count):
    session = _session(instance_count)
    benchmark.extra_info["instances"] = instance_count
    benchmark(lambda: session.query(SQL))


def test_report_series(benchmark):
    times = {}
    rows = []
    for count in INSTANCE_COUNTS:
        session = _session(count)
        times[count] = time_call(lambda: session.query(SQL))
        rows.append((count, times[count] * 1000, times[count] / times[1]))
    write_report(
        "exp_qp4_instances",
        "EXP-QP4: SPJ query time vs number of linked summary instances",
        ["instances", "ms", "vs 1 instance"],
        rows,
    )
    # Roughly linear growth: cost rises monotonically with the instance
    # count, and doubling from 4 to 8 instances costs at most ~2x plus
    # measurement slack (no superlinear blow-up).  The ratio against one
    # instance is noisy because the 1-instance baseline is dominated by
    # fixed per-query overhead, so it is reported but not asserted.
    assert times[1] < times[4] < times[8]
    assert times[8] < times[4] * 3
    benchmark(lambda: None)
