"""EXP-Q1 — Quality of the produced summaries.

Scores the summarization output against the generator's ground truth:

* classifier accuracy (predicted label vs. the generating category's
  mapped label) for ClassBird1;
* cluster purity (fraction of each group belonging to its majority
  ground-truth category) and compression (groups per annotation) across
  a threshold sweep;
* snippet compression (extracted sentences vs. document sentences);
* the representative-election ablation from DESIGN.md —
  centroid-closest vs. oldest-member representatives, scored by mean
  similarity to the group centroid.

Shape expected: classifier accuracy well above the majority-class
baseline; purity rises and compression falls as the clustering
threshold rises; centroid-closest representatives are at least as
central as oldest-member ones.
"""

from __future__ import annotations

from collections import Counter

import pytest

from benchmarks.conftest import write_report
from repro.text.similarity import cosine_similarity
from repro.workloads import WorkloadConfig, build_workload
from repro.workloads.generator import CLASSBIRD1_MAPPING

_WORKLOAD: list[object] = []


def _workload():
    if not _WORKLOAD:
        _WORKLOAD.append(
            build_workload(
                WorkloadConfig(
                    num_birds=6,
                    num_sightings=0,
                    annotations_per_row=60,
                    document_fraction=0.03,
                    cluster_threshold=0.3,
                    training_per_category=20,
                    seed=43,
                )
            )
        )
    return _WORKLOAD[0]


def _classifier_accuracy() -> tuple[float, float]:
    """(accuracy, majority-class baseline) for ClassBird1."""
    workload = _workload()
    session = workload.session
    instance = session.catalog.get_instance("ClassBird1")
    correct = 0
    total = 0
    label_counts: Counter[str] = Counter()
    for annotation in session.annotations.iter_all():
        truth = CLASSBIRD1_MAPPING[workload.ground_truth[annotation.annotation_id]]
        label_counts[truth] += 1
        if instance.analyze(annotation) == truth:
            correct += 1
        total += 1
    baseline = label_counts.most_common(1)[0][1] / total
    return correct / total, baseline


def _cluster_quality(threshold: float) -> tuple[float, float]:
    """(purity, groups-per-annotation) at a clustering threshold."""
    from repro.model.annotation import Annotation
    from repro.summaries.cluster import ClusterInstance

    workload = _workload()
    session = workload.session
    instance = ClusterInstance("probe", threshold=threshold)
    purities = []
    compressions = []
    for row_id in workload.bird_rows:
        obj = instance.new_object()
        pairs = session.annotations.annotations_for_row("birds", row_id)
        for annotation, _columns in pairs:
            instance.add_to(obj, annotation, instance.analyze(annotation))
        if not pairs:
            continue
        pure = 0
        for group in obj.groups:
            votes = Counter(
                workload.ground_truth[member] for member in group.member_ids
            )
            pure += votes.most_common(1)[0][1]
        purities.append(pure / len(pairs))
        compressions.append(len(obj.groups) / len(pairs))
    return sum(purities) / len(purities), sum(compressions) / len(compressions)


def _snippet_compression() -> float:
    """Extracted sentences / original sentences over the documents."""
    from repro.text.sentences import split_sentences

    workload = _workload()
    session = workload.session
    instance = session.catalog.get_instance("TextSummary1")
    kept = 0
    total = 0
    for annotation_id in workload.document_ids:
        annotation = session.annotations.get(annotation_id)
        entry = instance.analyze(annotation)
        kept += len(entry.sentences)
        total += len(split_sentences(annotation.text))
    return kept / max(1, total)


def _representative_centrality() -> tuple[float, float]:
    """Mean cosine(representative, centroid): ranked vs oldest-member."""
    from repro.summaries.cluster import ClusterInstance

    workload = _workload()
    session = workload.session
    instance = ClusterInstance("probe", threshold=0.3)
    ranked_scores = []
    oldest_scores = []
    for row_id in workload.bird_rows:
        obj = instance.new_object()
        for annotation, _columns in session.annotations.annotations_for_row(
            "birds", row_id
        ):
            instance.add_to(obj, annotation, instance.analyze(annotation))
        for group in obj.groups:
            if group.size < 2:
                continue
            centroid = group.centroid()
            assert group.vectors is not None
            ranked = group.representative
            oldest = min(group.member_ids)
            ranked_scores.append(
                cosine_similarity(group.vectors[ranked], centroid)
            )
            oldest_scores.append(
                cosine_similarity(group.vectors[oldest], centroid)
            )
    return (
        sum(ranked_scores) / len(ranked_scores),
        sum(oldest_scores) / len(oldest_scores),
    )


def test_classifier_accuracy(benchmark):
    accuracy, baseline = _classifier_accuracy()
    benchmark.extra_info["accuracy"] = accuracy
    assert accuracy > baseline + 0.15
    assert accuracy > 0.7
    benchmark(lambda: None)


@pytest.mark.parametrize("threshold", (0.2, 0.3, 0.45, 0.6))
def test_cluster_threshold(benchmark, threshold):
    purity, compression = _cluster_quality(threshold)
    benchmark.extra_info.update(purity=purity, compression=compression)
    benchmark.pedantic(lambda: _cluster_quality(threshold), rounds=1,
                       iterations=1)


def test_report_series(benchmark):
    accuracy, baseline = _classifier_accuracy()
    rows = [("classifier accuracy", accuracy),
            ("majority-class baseline", baseline),
            ("snippet compression", _snippet_compression())]
    ranked, oldest = _representative_centrality()
    rows.append(("representative centrality (centroid-ranked)", ranked))
    rows.append(("representative centrality (oldest member)", oldest))
    write_report(
        "exp_q1_quality_scalars",
        "EXP-Q1: summary quality scalars",
        ["metric", "value"],
        rows,
    )
    sweep_rows = []
    purities = {}
    compressions = {}
    for threshold in (0.2, 0.3, 0.45, 0.6):
        purity, compression = _cluster_quality(threshold)
        purities[threshold] = purity
        compressions[threshold] = compression
        sweep_rows.append((threshold, purity, compression))
    write_report(
        "exp_q1_cluster_sweep",
        "EXP-Q1: cluster purity / compression vs threshold",
        ["threshold", "purity", "groups per annotation"],
        sweep_rows,
    )
    # Shapes: purity rises with the threshold; compression loosens
    # (more groups); the ranked representative is at least as central.
    assert purities[0.6] >= purities[0.2]
    assert compressions[0.6] >= compressions[0.2]
    assert ranked >= oldest - 1e-9
    assert _snippet_compression() < 0.5
    benchmark(lambda: None)
