"""Perf-regression gate over the ``BENCH_*.json`` trajectory reports.

Compares a freshly measured candidate report (typically a CI ``--quick``
smoke run) against the committed baseline for the same benchmark, cell
by cell: every timed cell present in **both** reports must not be
slower than ``threshold`` times the baseline median.  Cells are found
by walking the ``results`` tree recursively — a cell is any object
carrying a ``median_s`` — so arbitrarily nested result keys (e.g. the
shard sweep's ``results.read_under_ingest.8t.shards_4``) gate exactly
like the flat (workload, ratio, mode) layout of the older reports.

The quick smoke workloads are smaller than the committed full-run
workloads, so candidate medians normally sit well *below* the baseline;
the gate is a backstop that catches order-of-magnitude regressions (a
pipeline accidentally degenerating to per-row / per-annotation work)
without being noise-sensitive.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_scan.json --candidate bench-smoke.json \
        [--threshold 2.0]

Exits 1 when any common cell regresses past the threshold, or when the
two reports share no cells at all (a misconfigured gate must not pass
silently).  Cells present on only one side are logged explicitly —
``SKIPPED`` for candidate-only, ``MISSING`` for baseline-only — with a
coverage summary line, so a gate comparing fewer cells than intended
is visible in the log rather than silently green.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def iter_cells(report: dict):
    """Yield ``(path, median_s)`` for every timed cell in a report.

    ``path`` is the tuple of keys from ``results`` down to the cell — a
    cell being the first dict on a branch that carries ``median_s``.
    Recursion stops at a cell, so auxiliary nested dicts inside it (per-
    shard counters, say) are never mistaken for cells of their own.
    """

    def walk(node, path):
        if not isinstance(node, dict):
            return
        if "median_s" in node:
            yield path, node["median_s"]
            return
        for key, value in node.items():
            yield from walk(value, path + (str(key),))

    yield from walk(report.get("results", {}), ())


def compare(baseline: dict, candidate: dict, threshold: float) -> list[str]:
    """Failure messages for every common cell slower than allowed."""
    if baseline.get("benchmark") != candidate.get("benchmark"):
        return [
            "benchmark mismatch: baseline is "
            f"{baseline.get('benchmark')!r}, candidate is "
            f"{candidate.get('benchmark')!r}"
        ]
    base = dict(iter_cells(baseline))
    failures: list[str] = []
    compared: set[tuple[str, ...]] = set()
    skipped: list[str] = []
    for path, median in iter_cells(candidate):
        allowed = base.get(path)
        label = " ".join(path)
        if allowed is None:
            # Candidate-only cell: nothing to gate against.  Logged
            # loudly — an ungated cell must never look like a pass.
            skipped.append(label)
            print(
                f"  {label:32s} baseline --------     "
                f"candidate {median * 1000:9.2f} ms  SKIPPED (no baseline)"
            )
            continue
        compared.add(path)
        verdict = "ok"
        if median > threshold * allowed:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: candidate {median:.6f}s > "
                f"{threshold:.1f}x baseline {allowed:.6f}s"
            )
        print(
            f"  {label:32s} "
            f"baseline {allowed * 1000:9.2f} ms  "
            f"candidate {median * 1000:9.2f} ms  {verdict}"
        )
    # Baseline-only cells are expected for --quick candidates (smaller
    # sweeps), but they must be visible: a gate that quietly compares a
    # shrinking subset of the trajectory is not a gate.
    missing = sorted(
        " ".join(path) for path in set(base) - compared
    )
    for label in missing:
        print(f"  {label:32s} MISSING from candidate (not gated)")
    print(
        f"gated {len(compared)} cell(s); "
        f"{len(skipped)} candidate-only skipped, "
        f"{len(missing)} baseline-only missing"
    )
    if not compared:
        failures.append(
            "the reports share no timed cells — "
            "wrong baseline/candidate pairing?"
        )
    return failures


def load_report(path: pathlib.Path, role: str) -> dict | None:
    """Parse one report file; None (with a message on stderr) on failure.

    A gate that crashes with a traceback on a missing or corrupt report
    reads as CI infrastructure flakiness; a one-line diagnostic and a
    clean exit 1 reads as what it is — a misconfigured comparison.
    """
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        print(f"FAIL: cannot read {role} report {path}: {exc}",
              file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"FAIL: {role} report {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"FAIL: {role} report {path} must be a JSON object, "
              f"got {type(data).__name__}", file=sys.stderr)
        return None
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_*.json trajectory report")
    parser.add_argument("--candidate", type=pathlib.Path, required=True,
                        help="freshly measured report to check")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed candidate/baseline median ratio "
                        "(default 2.0)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")
    baseline = load_report(args.baseline, "baseline")
    candidate = load_report(args.candidate, "candidate")
    if baseline is None or candidate is None:
        return 1
    print(f"comparing {args.candidate} against {args.baseline} "
          f"(threshold {args.threshold:.1f}x)")
    failures = compare(baseline, candidate, args.threshold)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
