"""EXP-QP2 — Per-operator overhead of summary-aware processing.

Times each extended operator in isolation over the shared workload:
scan (attach summaries), selection (pass-through), narrow projection
(annotation-effect removal), equi-join (dedup-aware merge), grouping
(merge per group), and duplicate elimination.

Shape expected: selection adds almost nothing over scan; projection and
the merging operators (join, group-by, distinct) carry the real summary
manipulation cost, with the merging operators the most expensive — the
same ordering the engine paper reports for its extended operators.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report

OPERATOR_QUERIES = {
    "scan": "SELECT name, species, region, weight FROM birds",
    "select": "SELECT name, species, region, weight FROM birds WHERE weight > 0",
    "project": "SELECT name FROM birds",
    "join": "SELECT b.name, s.observer FROM birds b, sightings s "
            "WHERE b.species = s.species",
    "groupby": "SELECT region, count(*) FROM birds GROUP BY region",
    "distinct": "SELECT DISTINCT region FROM birds",
    "summary-filter": "SELECT name FROM birds "
                      "WHERE SUMMARY_COUNT('ClassBird1', 'Behavior') > 0",
}


@pytest.mark.parametrize("operator", sorted(OPERATOR_QUERIES))
def test_operator(benchmark, bench_workload, operator):
    session = bench_workload.session
    sql = OPERATOR_QUERIES[operator]
    session.query(sql)  # warm caches
    benchmark.extra_info["operator"] = operator
    benchmark(lambda: session.query(sql))


def test_report_series(benchmark, bench_workload):
    session = bench_workload.session
    times = {}
    rows = []
    for operator, sql in OPERATOR_QUERIES.items():
        session.query(sql)  # warm
        times[operator] = time_call(lambda: session.query(sql))
        rows.append((operator, times[operator] * 1000,
                     times[operator] / times["scan"]))
    write_report(
        "exp_qp2_operators",
        "EXP-QP2: per-operator query time (summary-aware engine)",
        ["operator", "ms", "vs scan"],
        rows,
    )
    # Selection must be nearly free relative to the scan it wraps.
    assert times["select"] < times["scan"] * 1.6
    benchmark(lambda: None)
