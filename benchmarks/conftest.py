"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index.  Alongside the pytest-benchmark timings, each module
emits a paper-style series table through :func:`write_report`, collected
under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
import time
from collections.abc import Callable, Sequence

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Annotation ratios quoted in the paper's introduction (DataBank 30x,
#: Hydrologic Earth 120x, AKN 250x) plus one midpoint.
PAPER_RATIOS = (30, 60, 120, 250)


def write_report(name: str, title: str, header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Format a series table, print it, and save it under results/."""
    widths = [len(str(h)) for h in header]
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def time_call(func: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for one call of ``func``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def bench_workload():
    """Medium workload shared by operator-level benchmarks."""
    from repro.workloads import WorkloadConfig, build_workload

    workload = build_workload(
        WorkloadConfig(
            num_birds=10,
            num_sightings=20,
            annotations_per_row=30,
            document_fraction=0.03,
            seed=17,
        )
    )
    yield workload
    workload.session.close()
