"""EXP-QP5 — Predicate/limit pushdown + lazy hydration vs. eager scans.

Sweeps query selectivity (~1%, ~10%, ~50% of the ``birds`` relation,
via weight thresholds computed from the generated data's quantiles) at
the paper's annotation ratios, in the two scan pipelines:

* ``eager`` — ``pushdown=False``: every predicate evaluated in memory
  and every scanned row hydrated at the scan (the pre-pushdown engine).
* ``lazy`` — the current default: sargable predicates compiled into the
  storage statement and hydration deferred to the rows that survive.

Both sessions run with a small hydration block (16) and the
deserialization cache disabled, so summary-catalog and attachment
round-trips are proportional to hydrated rows — the quantity pushdown
is supposed to shrink — rather than hidden by cache warmth (the cache's
own effect is BENCH_scan's subject).

Shape expected: at low selectivity the lazy pipeline touches a
selectivity-proportional slice of the summary store — at 1% it must cut
summary/attachment statements by well over the 3x gate and win on
wall-clock; at 50% the two converge (hydration dominates either way).

Reusable pieces (:func:`build_query_session`, :func:`weight_threshold`,
:func:`measure_query`) are shared with ``run_bench.py --bench query``,
which records the trajectory in ``BENCH_query.json``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import write_report
from repro.engine.session import InsightNotes
from repro.workloads import WorkloadConfig, build_workload

#: Target fraction of base rows each workload's predicate keeps.
SELECTIVITIES = {
    "sel_1pct": 0.01,
    "sel_10pct": 0.10,
    "sel_50pct": 0.50,
}

#: Both modes: block size 16 keeps round-trips proportional to hydrated
#: rows at bench scale; the object cache is off so every hydration pays
#: its storage cost (cache warmth is BENCH_scan's subject, not ours).
MODES = {
    "eager": {"pushdown": False, "scan_block_size": 16,
              "object_cache_size": 0},
    "lazy": {"pushdown": True, "scan_block_size": 16,
             "object_cache_size": 0},
}


def build_query_session(
    num_birds: int, ratio: int, mode: str, seed: int = 29
) -> InsightNotes:
    """A populated workload session in ``mode``'s scan pipeline."""
    session = InsightNotes(**MODES[mode])
    workload = build_workload(
        WorkloadConfig(
            num_birds=num_birds,
            num_sightings=2 * num_birds,
            annotations_per_row=ratio,
            document_fraction=0.02,
            seed=seed,
        ),
        session=session,
    )
    return workload.session


def weight_threshold(session: InsightNotes, fraction: float) -> float:
    """Weight cutoff keeping ~``fraction`` of birds under ``weight > t``.

    Computed from the generated data's actual quantiles so the swept
    selectivities hold at every workload size and seed.
    """
    weights = sorted(
        (values[3] for _, values in session.db.rows("birds")), reverse=True
    )
    keep = max(1, round(fraction * len(weights)))
    if keep >= len(weights):
        return weights[-1] - 1.0
    return (weights[keep - 1] + weights[keep]) / 2


def query_sql(threshold: float) -> str:
    return (
        "SELECT name, species, region, weight FROM birds "
        f"WHERE weight > {threshold}"
    )


def _is_summary_statement(sql: str) -> bool:
    """Does the statement read/write summary state or attachments?"""
    return "_in_summary_state" in sql or "_in_attachments" in sql


def measure_query(session: InsightNotes, sql: str, repeats: int) -> dict:
    """Timings plus statement/row counters for ``sql`` on ``session``."""
    samples = []
    for _ in range(repeats):
        # Cold-cache steady state for every run: the storage fetch cost
        # is the measured quantity, not leftover maintenance warmth.
        session.manager.drop_caches()
        started = time.perf_counter()
        session.query(sql)
        samples.append(time.perf_counter() - started)
    session.manager.drop_caches()
    with session.db.track_queries() as counter:
        result = session.query(sql)
    summary_statements = sum(
        1 for statement in counter.statements
        if _is_summary_statement(statement)
    )
    assert result.stats is not None
    return {
        "median_s": round(statistics.median(samples), 6),
        "statements": counter.count,
        "summary_statements": summary_statements,
        "rows": len(result.tuples),
        "rows_scanned": result.stats.rows_scanned,
        "rows_hydrated": result.stats.rows_hydrated,
    }


# -- pytest-benchmark entry points -----------------------------------------

_BENCH_BIRDS = 60
_BENCH_RATIO = 30


@pytest.fixture(scope="module")
def pushdown_sessions():
    sessions = {
        mode: build_query_session(_BENCH_BIRDS, _BENCH_RATIO, mode)
        for mode in MODES
    }
    yield sessions
    for session in sessions.values():
        session.close()


@pytest.mark.parametrize("selectivity", sorted(SELECTIVITIES))
@pytest.mark.parametrize("mode", sorted(MODES))
def test_pushdown_query_time(benchmark, pushdown_sessions, mode, selectivity):
    session = pushdown_sessions[mode]
    sql = query_sql(weight_threshold(session, SELECTIVITIES[selectivity]))
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["selectivity"] = selectivity
    benchmark(lambda: session.query(sql))


def test_pushdown_statement_reduction_report(pushdown_sessions):
    """Series table: statements and hydrated rows per selectivity."""
    rows = []
    for name, fraction in SELECTIVITIES.items():
        cells = {}
        for mode in MODES:
            session = pushdown_sessions[mode]
            sql = query_sql(weight_threshold(session, fraction))
            cells[mode] = measure_query(session, sql, repeats=3)
        eager, lazy = cells["eager"], cells["lazy"]
        ratio = eager["summary_statements"] / max(
            lazy["summary_statements"], 1
        )
        rows.append(
            [
                name,
                lazy["rows"],
                f"{eager['rows_hydrated']}/{eager['rows_scanned']}",
                f"{lazy['rows_hydrated']}/{lazy['rows_scanned']}",
                eager["summary_statements"],
                lazy["summary_statements"],
                round(ratio, 1),
            ]
        )
        # The lazy pipeline must hydrate only the surviving rows.
        assert lazy["rows_hydrated"] == lazy["rows"]
        if fraction <= 0.10:
            assert ratio >= 3.0, (
                f"lazy pipeline at {name} issued only {ratio:.1f}x fewer "
                "summary statements (expected >= 3x)"
            )
    write_report(
        "exp_qp5_pushdown",
        "EXP-QP5: pushdown + lazy hydration vs eager scans "
        "(hydrated/scanned rows and summary statements)",
        ["selectivity", "rows", "hyd eager", "hyd lazy",
         "stmts eager", "stmts lazy", "stmt ratio"],
        rows,
    )
