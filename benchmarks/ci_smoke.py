"""One-command CI bench harness: every registered bench, gated.

Replaces the per-bench smoke + regression-gate step pairs that used to
be copy-pasted through ``.github/workflows/ci.yml`` (five pairs and
growing — every new bench meant two more YAML steps to forget).  This
driver walks :data:`run_bench.BENCHES` instead, so registering a bench
in ``run_bench.py`` is the *only* step needed to put it under CI:

1. run the bench in ``--quick`` mode, writing ``<name>-smoke.json``
   into ``--output-dir`` (kept as a CI artifact);
2. gate the smoke report against the committed ``BENCH_<name>.json``
   trajectory at the repo root via ``check_regression.py``.

A bench whose smoke run fails its own acceptance gate, whose committed
baseline is missing, or whose regression gate trips is recorded and
reported at the end — the harness runs *every* bench before failing,
so one broken bench does not mask another.

Usage::

    PYTHONPATH=src python benchmarks/ci_smoke.py \
        [--bench NAME ...] [--output-dir DIR] [--threshold 2.0]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks import check_regression, run_bench  # noqa: E402


def run_one(name: str, output_dir: pathlib.Path, threshold: float) -> str | None:
    """Smoke-run one registered bench and gate it; None means healthy."""
    smoke = output_dir / f"{name}-smoke.json"
    print(f"=== {name}: quick smoke run ===", flush=True)
    started = time.perf_counter()
    code = run_bench.main(
        ["--bench", name, "--quick", "--output", str(smoke)]
    )
    print(f"=== {name}: smoke took {time.perf_counter() - started:.1f}s ===")
    if code != 0:
        return f"{name}: quick smoke run exited {code}"
    baseline = REPO_ROOT / run_bench.BENCHES[name]["output"]
    if not baseline.is_file():
        return (
            f"{name}: no committed baseline {baseline.name} to gate "
            "against — run the full bench and commit its report"
        )
    print(f"=== {name}: regression gate vs {baseline.name} ===", flush=True)
    code = check_regression.main(
        [
            "--baseline", str(baseline),
            "--candidate", str(smoke),
            "--threshold", str(threshold),
        ]
    )
    if code != 0:
        return f"{name}: regression gate failed (see log above)"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", action="append", choices=sorted(run_bench.BENCHES),
        default=None, metavar="NAME",
        help="bench to run (repeatable; default: every registered bench)",
    )
    parser.add_argument(
        "--output-dir", type=pathlib.Path, default=pathlib.Path("."),
        help="where <name>-smoke.json reports land (default: cwd)",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="regression-gate candidate/baseline ratio (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")
    if not args.output_dir.is_dir():
        parser.error(f"--output-dir does not exist: {args.output_dir}")
    benches = args.bench or sorted(run_bench.BENCHES)

    failures: list[str] = []
    for name in benches:
        failure = run_one(name, args.output_dir, args.threshold)
        if failure is not None:
            failures.append(failure)
    print(
        f"ci_smoke: {len(benches) - len(failures)}/{len(benches)} "
        f"benches healthy ({', '.join(benches)})"
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
