"""EXP-Z1 — Zoom-in performance under the RCO cache policy.

Replays a Zipf-skewed zoom-in reference stream (interactive users keep
drilling into a few hot results) over a constrained result cache, for RCO
against LRU / LFU / FIFO / SIZE and a no-cache lower bound, sweeping the
cache size.  A miss re-executes the referenced query — exactly the cost
the materialization cache exists to avoid (§2.2).

Shape expected: every policy beats no-cache; RCO matches or beats the
classical policies on hit ratio and total latency at constrained sizes,
because it also weighs recomputation cost and result size; all policies
converge once the cache is large enough to hold everything.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from benchmarks.conftest import time_call, write_report
from repro.workloads import QueryWorkload, WorkloadConfig, build_workload
from repro.workloads.zoomin_workload import ZoomInWorkload
from repro.zoomin.admission import (
    REJECTED_CHEAP,
    AdmissionPolicy,
    AdmissionVerdict,
    AdmitAll,
    CostAwareAdmission,
)
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.executor import ZoomInExecutor
from repro.zoomin.policies import FIFOPolicy, LFUPolicy, LRUPolicy, SizePolicy
from repro.zoomin.rco import RCOPolicy
from repro.zoomin.tiered import TieredZoomInCache

POLICIES = {
    "RCO": RCOPolicy,
    "LRU": LRUPolicy,
    "LFU": LFUPolicy,
    "FIFO": FIFOPolicy,
    "SIZE": SizePolicy,
}

STREAM_LENGTH = 150
QUERY_COUNT = 14

_STATE: dict[str, object] = {}


def _setup():
    """Workload + query log + zoom-in stream, built once."""
    if _STATE:
        return _STATE
    workload = build_workload(
        WorkloadConfig(
            num_birds=8,
            num_sightings=16,
            annotations_per_row=20,
            seed=61,
        )
    )
    session = workload.session
    queries = QueryWorkload(seed=5)
    sqls: dict[int, str] = {}
    results: dict[int, object] = {}
    for query in queries.mixed(QUERY_COUNT):
        result = session.query(query.sql)
        sqls[result.qid] = query.sql
        results[result.qid] = result
    stream = ZoomInWorkload(
        qids=sorted(sqls),
        instances=["ClassBird1", "ClassBird2", "SimCluster"],
        exponent=1.2,
        max_index=3,
        seed=19,
    ).stream(STREAM_LENGTH)
    _STATE.update(session=session, sqls=sqls, results=results, stream=stream)
    return _STATE


def _replay(policy_factory, capacity_fraction: float):
    """Replay the stream against a fresh cache; returns (cache, misses)."""
    state = _setup()
    session = state["session"]
    sqls = state["sqls"]

    total_bytes = sum(
        result.size_estimate() for result in state["results"].values()
    )
    capacity = max(1024, int(total_bytes * capacity_fraction))
    cache = ZoomInCache(capacity_bytes=capacity, policy=policy_factory())

    def recompute(qid: int):
        # A miss re-runs the query (the result registry plays the role of
        # the database here; re-parsing and re-executing is the honest
        # recompute cost).
        fresh = session.query(sqls[qid])
        fresh.qid = qid  # keep the stream's identity
        return fresh

    executor = ZoomInExecutor(session.annotations, cache, recompute)
    for reference in state["stream"]:
        executor.execute(reference.command_text())
    return cache


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_replay_policy(benchmark, policy_name):
    _setup()
    benchmark.extra_info["policy"] = policy_name
    benchmark.pedantic(
        lambda: _replay(POLICIES[policy_name], capacity_fraction=0.3),
        rounds=3,
        iterations=1,
    )


def test_report_series(benchmark):
    rows = []
    hit_ratios: dict[tuple[str, float], float] = {}
    times: dict[tuple[str, float], float] = {}
    for fraction in (0.15, 0.3, 0.6, 1.0):
        for name in POLICIES:
            seconds = time_call(
                lambda: _replay(POLICIES[name], fraction), repeats=1
            )
            cache = _replay(POLICIES[name], fraction)
            hit_ratios[(name, fraction)] = cache.stats.hit_ratio
            times[(name, fraction)] = seconds
            rows.append(
                (f"{fraction:.2f}", name, cache.stats.hit_ratio,
                 cache.stats.evictions, seconds * 1000)
            )
        # no-cache lower bound: every reference recomputes
        no_cache = time_call(
            lambda: _replay(lambda: LRUPolicy(), 1e-9), repeats=1
        )
        rows.append((f"{fraction:.2f}", "none", 0.0, 0, no_cache * 1000))
    write_report(
        "exp_z1_zoomin_cache",
        "EXP-Z1: zoom-in stream replay (hit ratio / evictions / total ms)",
        ["capacity", "policy", "hit ratio", "evictions", "total ms"],
        rows,
    )
    # Shape: at the constrained sizes RCO is at least as good as the
    # classical baselines on hit ratio.
    for fraction in (0.15, 0.3):
        rco = hit_ratios[("RCO", fraction)]
        for name in ("LRU", "LFU", "FIFO", "SIZE"):
            assert rco >= hit_ratios[(name, fraction)] - 0.02
    # At full capacity everything converges.
    full = {hit_ratios[(name, 1.0)] for name in POLICIES}
    assert max(full) - min(full) < 0.05
    benchmark(lambda: None)


def test_disk_store_variant(benchmark):
    """The paper's disk-based materialization: RCO over a SQLite store.

    Hit ratios must match the in-memory store exactly (replacement logic
    is storage-agnostic); only latency differs by the serialization cost.
    """
    from repro.zoomin.stores import SQLiteResultStore

    state = _setup()
    session = state["session"]
    sqls = state["sqls"]
    total_bytes = sum(r.size_estimate() for r in state["results"].values())

    def replay_with_store(store=None):
        capacity = max(1024, int(total_bytes * 0.5))
        cache = ZoomInCache(capacity_bytes=capacity, policy=RCOPolicy(),
                            store=store)

        def recompute(qid: int):
            fresh = session.query(sqls[qid])
            fresh.qid = qid
            return fresh

        executor = ZoomInExecutor(session.annotations, cache, recompute)
        for reference in state["stream"]:
            executor.execute(reference.command_text())
        return cache

    memory_seconds = time_call(lambda: replay_with_store(None), repeats=1)
    disk_seconds = time_call(
        lambda: replay_with_store(
            SQLiteResultStore(registry=session.catalog.registry)
        ),
        repeats=1,
    )
    memory_cache = replay_with_store(None)
    disk_cache = replay_with_store(
        SQLiteResultStore(registry=session.catalog.registry)
    )
    write_report(
        "exp_z1_disk_store",
        "EXP-Z1 variant: in-memory vs disk-based (SQLite) result store",
        ["store", "hit ratio", "total ms"],
        [
            ("memory", memory_cache.stats.hit_ratio, memory_seconds * 1000),
            ("sqlite", disk_cache.stats.hit_ratio, disk_seconds * 1000),
        ],
    )
    # Replacement behaviour is storage-agnostic; note the charged sizes
    # differ (object estimate vs serialized bytes), so allow slack.
    assert abs(
        memory_cache.stats.hit_ratio - disk_cache.stats.hit_ratio
    ) < 0.15
    benchmark(lambda: None)


# -- EXP-Z2: the tiered production path under concurrent Zipf load ----------
#
# Importable helpers driven by ``run_bench.py --bench zoomin``: four
# threads replay a Zipf-skewed zoom-in stream against the two-tier
# cache in three modes at two byte-budget points, plus a single-flight
# stampede cell.  Routing even the no-cache mode through the tiered
# cache keeps the rest of the path (executor, single-flight, tracing)
# identical, so the comparison isolates caching itself.

TIERED_MODES = ("nocache", "lru", "rco")

REPLAY_THREADS = 4
STAMPEDE_THREADS = 16


class RejectAll(AdmissionPolicy):
    """Admission that caches nothing — the no-cache lower bound."""

    def assess(
        self,
        size_bytes: int,
        recompute_cost: float,
        capacity_bytes: int,
        pinned_bytes: int = 0,
    ) -> AdmissionVerdict:
        return AdmissionVerdict(
            admitted=False,
            pinned=False,
            reason=REJECTED_CHEAP,
            recompute_cost=recompute_cost,
            size_bytes=size_bytes,
        )


def make_tiered_cache(
    mode: str, memory_bytes: int, disk_bytes: int
) -> TieredZoomInCache:
    """A fresh two-tier cache in one of the three benchmark modes."""
    if mode == "nocache":
        return TieredZoomInCache(
            memory_bytes=memory_bytes,
            disk_bytes=disk_bytes,
            admission=RejectAll(),
        )
    if mode == "lru":
        return TieredZoomInCache(
            memory_bytes=memory_bytes,
            disk_bytes=disk_bytes,
            policy=LRUPolicy(),
            admission=AdmitAll(),
        )
    if mode == "rco":
        return TieredZoomInCache(
            memory_bytes=memory_bytes,
            disk_bytes=disk_bytes,
            policy=RCOPolicy(),
            admission=CostAwareAdmission(),
        )
    raise ValueError(f"unknown tiered mode {mode!r}")


def build_tiered_state(quick: bool = False) -> dict:
    """Workload session + query log + Zipf zoom-in stream.

    Unlike :func:`_setup` this builds fresh state per call (the driver
    owns its lifetime and closes the session when done).
    """
    workload = build_workload(
        WorkloadConfig(
            num_birds=4 if quick else 8,
            num_sightings=8 if quick else 16,
            annotations_per_row=10 if quick else 20,
            seed=61,
        )
    )
    session = workload.session
    queries = QueryWorkload(seed=5)
    sqls: dict[int, str] = {}
    results: dict[int, object] = {}
    for query in queries.mixed(8 if quick else QUERY_COUNT):
        result = session.query(query.sql)
        sqls[result.qid] = query.sql
        results[result.qid] = result
    stream = ZoomInWorkload(
        qids=sorted(sqls),
        instances=["ClassBird1", "ClassBird2", "SimCluster"],
        exponent=1.2,
        max_index=3,
        seed=19,
    ).stream(60 if quick else STREAM_LENGTH)
    total_bytes = sum(r.size_estimate() for r in results.values())
    return {
        "session": session,
        "sqls": sqls,
        "stream": stream,
        "total_bytes": total_bytes,
    }


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def replay_tiered(
    state: dict,
    mode: str,
    memory_bytes: int,
    disk_bytes: int,
    n_threads: int = REPLAY_THREADS,
) -> dict:
    """One concurrent replay of the stream; per-reference latencies."""
    session = state["session"]
    sqls = state["sqls"]
    cache = make_tiered_cache(mode, memory_bytes, disk_bytes)

    def recompute(qid: int):
        fresh = session.query(sqls[qid])
        fresh.qid = qid  # keep the stream's identity
        return fresh

    executor = ZoomInExecutor(session.annotations, cache, recompute)
    chunks = [state["stream"][i::n_threads] for i in range(n_threads)]
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    gate = threading.Barrier(n_threads + 1)

    def worker(index: int) -> None:
        gate.wait()
        for reference in chunks[index]:
            started = time.perf_counter()
            executor.execute(reference.command_text())
            latencies[index].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    gate.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    return {
        "seconds": time.perf_counter() - started,
        "latencies": [sample for lane in latencies for sample in lane],
        "counters": cache.counters,
    }


def measure_tiered(
    state: dict,
    mode: str,
    memory_bytes: int,
    disk_bytes: int,
    repeats: int,
    n_threads: int = REPLAY_THREADS,
) -> dict:
    """Median-of-``repeats`` replay cell for one mode at one budget."""
    runs = [
        replay_tiered(state, mode, memory_bytes, disk_bytes, n_threads)
        for _ in range(repeats)
    ]
    latencies = [sample for run in runs for sample in run["latencies"]]
    counters = runs[0]["counters"]
    return {
        "median_s": round(
            statistics.median(run["seconds"] for run in runs), 6
        ),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "hit_ratio": round(counters.hit_ratio, 3),
        "memory_hits": counters.memory_hits,
        "disk_hits": counters.disk_hits,
        "recomputes": counters.recomputes,
        "coalesced": counters.coalesced,
        "memory_bytes": memory_bytes,
        "disk_bytes": disk_bytes,
    }


def measure_stampede(
    state: dict, n_threads: int = STAMPEDE_THREADS
) -> dict:
    """N concurrent zoom-ins referencing one cold qid, counted.

    The single-flight guarantee under test: however the scheduler
    interleaves the threads, the referenced query executes exactly once.
    """
    session = state["session"]
    sqls = state["sqls"]
    cache = TieredZoomInCache(memory_bytes=1 << 22, disk_bytes=1 << 24)
    calls: list[int] = []
    call_lock = threading.Lock()

    def recompute(qid: int):
        with call_lock:
            calls.append(1)
        fresh = session.query(sqls[qid])
        fresh.qid = qid
        return fresh

    executor = ZoomInExecutor(session.annotations, cache, recompute)
    command = state["stream"][0].command_text()
    gate = threading.Barrier(n_threads + 1)
    latencies: list[float] = []
    lat_lock = threading.Lock()

    def worker() -> None:
        gate.wait()
        started = time.perf_counter()
        executor.execute(command)
        elapsed = time.perf_counter() - started
        with lat_lock:
            latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    gate.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    return {
        "median_s": round(time.perf_counter() - started, 6),
        "threads": n_threads,
        "computes": len(calls),
        "recomputes": cache.counters.recomputes,
        "coalesced": cache.counters.coalesced,
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


def test_rco_weight_ablation(benchmark):
    """DESIGN.md ablation: sweep RCO's factor weights."""
    from repro.zoomin.rco import RCOWeights

    variants = {
        "balanced": RCOWeights(),
        "recency-only": RCOWeights(frequency=0.0, complexity=0.0, overhead=0.0),
        "no-size-discount": RCOWeights(overhead=0.0),
        "cost-heavy": RCOWeights(complexity=3.0),
    }
    rows = []
    for name, weights in variants.items():
        cache = _replay(lambda w=weights: RCOPolicy(w), capacity_fraction=0.3)
        rows.append((name, cache.stats.hit_ratio, cache.stats.evictions))
    write_report(
        "exp_z1_rco_ablation",
        "EXP-Z1 ablation: RCO weight variants at 0.3x capacity",
        ["weights", "hit ratio", "evictions"],
        rows,
    )
    benchmark(lambda: None)
