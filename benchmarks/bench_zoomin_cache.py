"""EXP-Z1 — Zoom-in performance under the RCO cache policy.

Replays a Zipf-skewed zoom-in reference stream (interactive users keep
drilling into a few hot results) over a constrained result cache, for RCO
against LRU / LFU / FIFO / SIZE and a no-cache lower bound, sweeping the
cache size.  A miss re-executes the referenced query — exactly the cost
the materialization cache exists to avoid (§2.2).

Shape expected: every policy beats no-cache; RCO matches or beats the
classical policies on hit ratio and total latency at constrained sizes,
because it also weighs recomputation cost and result size; all policies
converge once the cache is large enough to hold everything.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import time_call, write_report
from repro.workloads import QueryWorkload, WorkloadConfig, build_workload
from repro.workloads.zoomin_workload import ZoomInWorkload
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.executor import ZoomInExecutor
from repro.zoomin.policies import FIFOPolicy, LFUPolicy, LRUPolicy, SizePolicy
from repro.zoomin.rco import RCOPolicy

POLICIES = {
    "RCO": RCOPolicy,
    "LRU": LRUPolicy,
    "LFU": LFUPolicy,
    "FIFO": FIFOPolicy,
    "SIZE": SizePolicy,
}

STREAM_LENGTH = 150
QUERY_COUNT = 14

_STATE: dict[str, object] = {}


def _setup():
    """Workload + query log + zoom-in stream, built once."""
    if _STATE:
        return _STATE
    workload = build_workload(
        WorkloadConfig(
            num_birds=8,
            num_sightings=16,
            annotations_per_row=20,
            seed=61,
        )
    )
    session = workload.session
    queries = QueryWorkload(seed=5)
    sqls: dict[int, str] = {}
    results: dict[int, object] = {}
    for query in queries.mixed(QUERY_COUNT):
        result = session.query(query.sql)
        sqls[result.qid] = query.sql
        results[result.qid] = result
    stream = ZoomInWorkload(
        qids=sorted(sqls),
        instances=["ClassBird1", "ClassBird2", "SimCluster"],
        exponent=1.2,
        max_index=3,
        seed=19,
    ).stream(STREAM_LENGTH)
    _STATE.update(session=session, sqls=sqls, results=results, stream=stream)
    return _STATE


def _replay(policy_factory, capacity_fraction: float):
    """Replay the stream against a fresh cache; returns (cache, misses)."""
    state = _setup()
    session = state["session"]
    sqls = state["sqls"]

    total_bytes = sum(
        result.size_estimate() for result in state["results"].values()
    )
    capacity = max(1024, int(total_bytes * capacity_fraction))
    cache = ZoomInCache(capacity_bytes=capacity, policy=policy_factory())

    def recompute(qid: int):
        # A miss re-runs the query (the result registry plays the role of
        # the database here; re-parsing and re-executing is the honest
        # recompute cost).
        fresh = session.query(sqls[qid])
        fresh.qid = qid  # keep the stream's identity
        return fresh

    executor = ZoomInExecutor(session.annotations, cache, recompute)
    for reference in state["stream"]:
        executor.execute(reference.command_text())
    return cache


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_replay_policy(benchmark, policy_name):
    _setup()
    benchmark.extra_info["policy"] = policy_name
    benchmark.pedantic(
        lambda: _replay(POLICIES[policy_name], capacity_fraction=0.3),
        rounds=3,
        iterations=1,
    )


def test_report_series(benchmark):
    rows = []
    hit_ratios: dict[tuple[str, float], float] = {}
    times: dict[tuple[str, float], float] = {}
    for fraction in (0.15, 0.3, 0.6, 1.0):
        for name in POLICIES:
            seconds = time_call(
                lambda: _replay(POLICIES[name], fraction), repeats=1
            )
            cache = _replay(POLICIES[name], fraction)
            hit_ratios[(name, fraction)] = cache.stats.hit_ratio
            times[(name, fraction)] = seconds
            rows.append(
                (f"{fraction:.2f}", name, cache.stats.hit_ratio,
                 cache.stats.evictions, seconds * 1000)
            )
        # no-cache lower bound: every reference recomputes
        no_cache = time_call(
            lambda: _replay(lambda: LRUPolicy(), 1e-9), repeats=1
        )
        rows.append((f"{fraction:.2f}", "none", 0.0, 0, no_cache * 1000))
    write_report(
        "exp_z1_zoomin_cache",
        "EXP-Z1: zoom-in stream replay (hit ratio / evictions / total ms)",
        ["capacity", "policy", "hit ratio", "evictions", "total ms"],
        rows,
    )
    # Shape: at the constrained sizes RCO is at least as good as the
    # classical baselines on hit ratio.
    for fraction in (0.15, 0.3):
        rco = hit_ratios[("RCO", fraction)]
        for name in ("LRU", "LFU", "FIFO", "SIZE"):
            assert rco >= hit_ratios[(name, fraction)] - 0.02
    # At full capacity everything converges.
    full = {hit_ratios[(name, 1.0)] for name in POLICIES}
    assert max(full) - min(full) < 0.05
    benchmark(lambda: None)


def test_disk_store_variant(benchmark):
    """The paper's disk-based materialization: RCO over a SQLite store.

    Hit ratios must match the in-memory store exactly (replacement logic
    is storage-agnostic); only latency differs by the serialization cost.
    """
    from repro.zoomin.stores import SQLiteResultStore

    state = _setup()
    session = state["session"]
    sqls = state["sqls"]
    total_bytes = sum(r.size_estimate() for r in state["results"].values())

    def replay_with_store(store=None):
        capacity = max(1024, int(total_bytes * 0.5))
        cache = ZoomInCache(capacity_bytes=capacity, policy=RCOPolicy(),
                            store=store)

        def recompute(qid: int):
            fresh = session.query(sqls[qid])
            fresh.qid = qid
            return fresh

        executor = ZoomInExecutor(session.annotations, cache, recompute)
        for reference in state["stream"]:
            executor.execute(reference.command_text())
        return cache

    memory_seconds = time_call(lambda: replay_with_store(None), repeats=1)
    disk_seconds = time_call(
        lambda: replay_with_store(
            SQLiteResultStore(registry=session.catalog.registry)
        ),
        repeats=1,
    )
    memory_cache = replay_with_store(None)
    disk_cache = replay_with_store(
        SQLiteResultStore(registry=session.catalog.registry)
    )
    write_report(
        "exp_z1_disk_store",
        "EXP-Z1 variant: in-memory vs disk-based (SQLite) result store",
        ["store", "hit ratio", "total ms"],
        [
            ("memory", memory_cache.stats.hit_ratio, memory_seconds * 1000),
            ("sqlite", disk_cache.stats.hit_ratio, disk_seconds * 1000),
        ],
    )
    # Replacement behaviour is storage-agnostic; note the charged sizes
    # differ (object estimate vs serialized bytes), so allow slack.
    assert abs(
        memory_cache.stats.hit_ratio - disk_cache.stats.hit_ratio
    ) < 0.15
    benchmark(lambda: None)


def test_rco_weight_ablation(benchmark):
    """DESIGN.md ablation: sweep RCO's factor weights."""
    from repro.zoomin.rco import RCOWeights

    variants = {
        "balanced": RCOWeights(),
        "recency-only": RCOWeights(frequency=0.0, complexity=0.0, overhead=0.0),
        "no-size-discount": RCOWeights(overhead=0.0),
        "cost-heavy": RCOWeights(complexity=3.0),
    }
    rows = []
    for name, weights in variants.items():
        cache = _replay(lambda w=weights: RCOPolicy(w), capacity_fraction=0.3)
        rows.append((name, cache.stats.hit_ratio, cache.stats.evictions))
    write_report(
        "exp_z1_rco_ablation",
        "EXP-Z1 ablation: RCO weight variants at 0.3x capacity",
        ["weights", "hit ratio", "evictions"],
        rows,
    )
    benchmark(lambda: None)
