"""Failure injection: corrupted catalog state must fail loudly and clearly."""

import pytest

from repro.errors import CatalogError, UnknownSummaryTypeError
from repro.storage.catalog import SummaryCatalog, _INSTANCES_TABLE, _STATE_TABLE
from repro.storage.database import Database
from repro.summaries.classifier import ClassifierSummary


@pytest.fixture
def catalog():
    db = Database()
    db.create_table("birds", ["name"])
    cat = SummaryCatalog(db)
    cat.define_instance("Classifier", "C", {"labels": ["a", "b"]})
    obj = ClassifierSummary("C", ["a", "b"])
    obj.add(1, "a")
    cat.save_object("C", "birds", 1, obj)
    yield db, cat
    db.close()


def _corrupt_object(db: Database, payload: str) -> None:
    with db.connection:
        db.connection.execute(
            f"UPDATE {_STATE_TABLE} SET object = ?", (payload,)
        )


class TestCorruptedObjects:
    def test_invalid_json_raises_catalog_error(self, catalog):
        db, cat = catalog
        _corrupt_object(db, "{not json")
        with pytest.raises(CatalogError, match=r"corrupted summary state.*birds\[1\]"):
            cat.load_object("C", "birds", 1)

    def test_missing_type_tag_raises_catalog_error(self, catalog):
        db, cat = catalog
        _corrupt_object(db, '{"instance": "C"}')
        with pytest.raises(CatalogError, match="corrupted summary state"):
            cat.load_object("C", "birds", 1)

    def test_iter_objects_raises_on_corruption(self, catalog):
        db, cat = catalog
        _corrupt_object(db, "[]")
        with pytest.raises(CatalogError):
            list(cat.iter_objects("C", "birds"))

    def test_unknown_type_tag_propagates(self, catalog):
        db, cat = catalog
        _corrupt_object(db, '{"type": "Vanished", "instance": "C"}')
        with pytest.raises(UnknownSummaryTypeError):
            cat.load_object("C", "birds", 1)

    def test_repair_by_rebuild(self, catalog):
        """A corrupted object is recoverable from the raw annotations."""
        db, cat = catalog
        from repro.maintenance.rebuild import rebuild_row
        from repro.model.cell import CellRef
        from repro.storage.annotations import AnnotationStore

        annotations = AnnotationStore(db)
        annotations.add("some text", [CellRef("birds", 1, "name")])
        _corrupt_object(db, "{broken")
        rebuild_row(annotations, cat, cat.get_instance("C"), "birds", 1)
        restored = cat.load_object("C", "birds", 1)
        assert restored is not None
        assert len(restored.annotation_ids()) == 1


class TestCorruptedInstanceConfig:
    def test_invalid_config_json(self, catalog):
        db, cat = catalog
        with db.connection:
            db.connection.execute(
                f"UPDATE {_INSTANCES_TABLE} SET config = '{{oops'"
            )
        fresh = SummaryCatalog(db)  # bypass the live-instance cache
        with pytest.raises(CatalogError, match="corrupted configuration"):
            fresh.get_instance("C")

    def test_config_missing_required_key(self, catalog):
        db, cat = catalog
        with db.connection:
            db.connection.execute(
                f"UPDATE {_INSTANCES_TABLE} SET config = '{{}}'"
            )
        fresh = SummaryCatalog(db)
        with pytest.raises(CatalogError, match="corrupted configuration"):
            fresh.get_instance("C")
