"""Tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.storage.schema import TableSchema, validate_identifier


class TestValidateIdentifier:
    def test_accepts_valid_names(self):
        for name in ("birds", "_private", "Table2", "a_b_c"):
            assert validate_identifier(name) == name

    def test_rejects_invalid_names(self):
        for name in ("", "2tab", "a-b", "a b", "a.b", "sel;ect"):
            with pytest.raises(SchemaError):
                validate_identifier(name)


class TestTableSchema:
    def test_valid_schema(self):
        schema = TableSchema("birds", ("name", "weight"))
        assert schema.columns == ("name", "weight")

    def test_rejects_empty_columns(self):
        with pytest.raises(SchemaError, match="no columns"):
            TableSchema("birds", ())

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("birds", ("name", "name"))

    def test_rejects_system_prefix(self):
        with pytest.raises(SchemaError, match="system prefix"):
            TableSchema("_in_birds", ("name",))

    def test_rejects_bad_column_name(self):
        with pytest.raises(SchemaError):
            TableSchema("birds", ("ok", "not ok"))

    def test_column_index(self):
        schema = TableSchema("birds", ("name", "weight"))
        assert schema.column_index("weight") == 1

    def test_column_index_unknown_raises(self):
        schema = TableSchema("birds", ("name",))
        with pytest.raises(UnknownColumnError):
            schema.column_index("missing")

    def test_has_column(self):
        schema = TableSchema("birds", ("name",))
        assert schema.has_column("name")
        assert not schema.has_column("weight")

    def test_check_values_arity(self):
        schema = TableSchema("birds", ("name", "weight"))
        schema.check_values(("x", 1))  # no raise
        with pytest.raises(SchemaError, match="expects 2 values"):
            schema.check_values(("x",))
