"""Tests for repro.storage.annotations."""

import pytest

from repro.errors import AnnotationError, UnknownAnnotationError
from repro.model.annotation import AnnotationKind
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationStore
from repro.storage.database import Database


@pytest.fixture
def store():
    db = Database()
    db.create_table("birds", ["name", "weight"])
    db.create_table("areas", ["region"])
    store = AnnotationStore(db)
    yield db, store
    db.close()


class TestAdd:
    def test_add_returns_annotation_with_id(self, store):
        _db, annotations = store
        annotation = annotations.add(
            "hello", [CellRef("birds", 1, "name")], author="aria"
        )
        assert annotation.annotation_id > 0
        assert annotation.text == "hello"
        assert annotation.author == "aria"

    def test_ids_increase(self, store):
        _db, annotations = store
        first = annotations.add("a", [CellRef("birds", 1, "name")])
        second = annotations.add("b", [CellRef("birds", 1, "name")])
        assert second.annotation_id > first.annotation_id

    def test_requires_at_least_one_cell(self, store):
        _db, annotations = store
        with pytest.raises(AnnotationError, match="at least one cell"):
            annotations.add("dangling", [])

    def test_rejects_unknown_column(self, store):
        _db, annotations = store
        with pytest.raises(AnnotationError, match="unknown column"):
            annotations.add("x", [CellRef("birds", 1, "nope")])

    def test_rejects_unknown_table(self, store):
        _db, annotations = store
        with pytest.raises(Exception):
            annotations.add("x", [CellRef("missing", 1, "name")])

    def test_explicit_timestamp(self, store):
        _db, annotations = store
        annotation = annotations.add(
            "x", [CellRef("birds", 1, "name")], created_at=123.5
        )
        assert annotation.created_at == 123.5

    def test_document_kind_round_trips(self, store):
        _db, annotations = store
        annotation = annotations.add(
            "big text",
            [CellRef("birds", 1, "name")],
            kind=AnnotationKind.DOCUMENT,
            title="Article",
        )
        loaded = annotations.get(annotation.annotation_id)
        assert loaded.kind is AnnotationKind.DOCUMENT
        assert loaded.title == "Article"


class TestGet:
    def test_get_round_trip(self, store):
        _db, annotations = store
        added = annotations.add("body", [CellRef("birds", 1, "name")])
        assert annotations.get(added.annotation_id) == added

    def test_get_unknown_raises(self, store):
        _db, annotations = store
        with pytest.raises(UnknownAnnotationError):
            annotations.get(404)

    def test_get_many_ordered(self, store):
        _db, annotations = store
        ids = [
            annotations.add(f"t{i}", [CellRef("birds", 1, "name")]).annotation_id
            for i in range(5)
        ]
        fetched = annotations.get_many(reversed(ids))
        assert [a.annotation_id for a in fetched] == sorted(ids)

    def test_get_many_missing_raises(self, store):
        _db, annotations = store
        real = annotations.add("x", [CellRef("birds", 1, "name")])
        with pytest.raises(UnknownAnnotationError):
            annotations.get_many([real.annotation_id, 999])

    def test_get_many_empty(self, store):
        _db, annotations = store
        assert annotations.get_many([]) == []

    def test_get_many_deduplicates(self, store):
        _db, annotations = store
        added = annotations.add("x", [CellRef("birds", 1, "name")])
        fetched = annotations.get_many([added.annotation_id] * 3)
        assert len(fetched) == 1

    def test_count_and_iter_all(self, store):
        _db, annotations = store
        for i in range(3):
            annotations.add(f"t{i}", [CellRef("birds", 1, "name")])
        assert annotations.count() == 3
        assert len(list(annotations.iter_all())) == 3

    def test_total_text_bytes(self, store):
        _db, annotations = store
        annotations.add("abc", [CellRef("birds", 1, "name")])
        annotations.add("defgh", [CellRef("birds", 1, "name")])
        assert annotations.total_text_bytes() == 8


class TestAttachments:
    def test_cells_of(self, store):
        _db, annotations = store
        cells = [CellRef("birds", 1, "name"), CellRef("birds", 2, "weight")]
        added = annotations.add("multi", cells)
        assert annotations.cells_of(added.annotation_id) == sorted(
            cells, key=lambda c: (c.table, c.row_id, c.column)
        )

    def test_annotations_for_row_groups_columns(self, store):
        _db, annotations = store
        added = annotations.add(
            "x",
            [CellRef("birds", 1, "name"), CellRef("birds", 1, "weight")],
        )
        pairs = annotations.annotations_for_row("birds", 1)
        assert len(pairs) == 1
        annotation, columns = pairs[0]
        assert annotation.annotation_id == added.annotation_id
        assert columns == frozenset({"name", "weight"})

    def test_annotations_for_row_excludes_other_rows(self, store):
        _db, annotations = store
        annotations.add("row1", [CellRef("birds", 1, "name")])
        annotations.add("row2", [CellRef("birds", 2, "name")])
        pairs = annotations.annotations_for_row("birds", 1)
        assert [a.text for a, _ in pairs] == ["row1"]

    def test_annotation_ids_for_row(self, store):
        _db, annotations = store
        a = annotations.add("x", [CellRef("birds", 1, "name")])
        b = annotations.add("y", [CellRef("birds", 1, "weight")])
        assert annotations.annotation_ids_for_row("birds", 1) == {
            a.annotation_id,
            b.annotation_id,
        }

    def test_rows_for_annotation_cross_table(self, store):
        _db, annotations = store
        added = annotations.add(
            "shared",
            [CellRef("birds", 1, "name"), CellRef("areas", 7, "region")],
        )
        assert annotations.rows_for_annotation(added.annotation_id) == {
            ("birds", 1),
            ("areas", 7),
        }

    def test_attachment_count_counts_rows(self, store):
        _db, annotations = store
        added = annotations.add(
            "multi-row",
            [
                CellRef("birds", 1, "name"),
                CellRef("birds", 1, "weight"),
                CellRef("birds", 2, "name"),
            ],
        )
        assert annotations.attachment_count(added.annotation_id) == 2


class TestDelete:
    def test_delete_removes_annotation_and_attachments(self, store):
        _db, annotations = store
        added = annotations.add("x", [CellRef("birds", 1, "name")])
        annotations.delete(added.annotation_id)
        with pytest.raises(UnknownAnnotationError):
            annotations.get(added.annotation_id)
        assert annotations.annotations_for_row("birds", 1) == []

    def test_delete_unknown_raises(self, store):
        _db, annotations = store
        with pytest.raises(UnknownAnnotationError):
            annotations.delete(12345)
