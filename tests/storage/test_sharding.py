"""The hash-sharded storage backend: routing, scatter-gather, lifecycle.

Covers the contracts DESIGN.md §11 commits to:

* routing is a pure, stable function (persisted placement must survive
  reopen and process restarts), with annotation ids block-sliced for
  write affinity;
* DDL replicates to every shard, scatter-gather scans reassemble global
  rowid order (with pushdown and LIMIT short-circuit) and report per-row
  home shards;
* annotation bodies and attachment edges are co-located on one shard,
  and annotation ids stay monotonic (never reused) across reopens;
* error paths fail loudly: in-memory sharding, bad shard counts,
  out-of-range shards, statements after close.
"""

from __future__ import annotations

import sqlite3
import zlib

import pytest

from repro.errors import StorageError
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationDraft, AnnotationStore
from repro.storage.backend import (
    ANNOTATION_BLOCK,
    SingleFileBackend,
    shard_path,
)
from repro.storage.database import Database
from repro.storage.sharded import ShardedBackend


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "store.db"), shards=4)
    yield database
    database.close()


class TestRouting:
    def test_shard_of_is_stable_crc32(self, db):
        backend = db.backend
        for table in ("birds", "sightings"):
            base = zlib.crc32(table.encode("utf-8"))
            for row_id in (1, 2, 7, 1000):
                assert backend.shard_of(table, row_id) == (base + row_id) % 4

    def test_consecutive_rowids_round_robin(self, db):
        shards = [db.backend.shard_of("birds", row) for row in range(1, 9)]
        assert sorted(set(shards)) == [0, 1, 2, 3]
        # ... and adjacent rowids never share a shard.
        assert all(a != b for a, b in zip(shards, shards[1:]))

    def test_annotation_ids_are_block_sliced(self, db):
        backend = db.backend
        block = ANNOTATION_BLOCK
        # A whole block shares one shard; the next block moves on.
        assert {
            backend.shard_of_annotation(i) for i in range(block)
        } == {0}
        assert {
            backend.shard_of_annotation(i) for i in range(block, 2 * block)
        } == {1}
        assert backend.shard_of_annotation(4 * block) == 0

    def test_single_file_routes_everything_to_zero(self):
        backend = SingleFileBackend()
        try:
            assert backend.shard_of("birds", 12345) == 0
            assert backend.shard_of_annotation(999) == 0
        finally:
            backend.close()

    def test_shard_paths(self, tmp_path):
        base = str(tmp_path / "s.db")
        backend = ShardedBackend(base, shards=3)
        try:
            assert backend.shard_paths() == [
                base, f"{base}.shard1", f"{base}.shard2"
            ]
            assert shard_path(base, 0) == base
        finally:
            backend.close()


class TestSchemaAndScan:
    def test_ddl_replicates_to_every_shard_file(self, db):
        db.create_table("birds", ["name", "weight"])
        for path in db.backend.shard_paths():
            with sqlite3.connect(path) as raw:
                tables = {
                    row[0]
                    for row in raw.execute(
                        "SELECT name FROM sqlite_master WHERE type='table'"
                    )
                }
            assert "birds" in tables

    def test_scan_merges_global_rowid_order(self, db):
        db.create_table("birds", ["name", "weight"])
        rows = [(f"bird{i:03d}", float(i)) for i in range(40)]
        row_ids = db.insert_many("birds", rows)
        assert row_ids == list(range(1, 41))
        scanned = list(db.scan("birds"))
        assert [row_id for row_id, _ in scanned] == row_ids
        assert [values for _, values in scanned] == rows

    def test_scan_pushdown_and_limit(self, db):
        db.create_table("birds", ["name", "weight"])
        db.insert_many(
            "birds", [(f"bird{i:03d}", float(i % 10)) for i in range(40)]
        )
        got = list(
            db.scan("birds", where_sql='"weight" >= ?', params=(8.0,),
                    limit=5)
        )
        assert len(got) == 5
        assert [row_id for row_id, _ in got] == sorted(
            row_id for row_id, _ in got
        )
        assert all(values[1] >= 8.0 for _, values in got)

    def test_scan_reports_per_row_home_shard(self, db):
        db.create_table("birds", ["name"])
        db.insert_many("birds", [(f"bird{i}",) for i in range(12)])
        seen: list[int] = []
        rows = list(db.scan("birds", on_row_shard=seen.append))
        assert len(seen) == len(rows)
        assert seen == [
            db.backend.shard_of("birds", row_id) for row_id, _ in rows
        ]

    def test_scan_error_propagates_from_producer(self, db):
        db.create_table("birds", ["name"])
        with pytest.raises(sqlite3.OperationalError):
            list(db.scan("birds", where_sql="no_such_column = 1"))

    def test_row_count_sums_shards(self, db):
        db.create_table("birds", ["name"])
        db.insert_many("birds", [(f"bird{i}",) for i in range(17)])
        assert db.row_count("birds") == 17


class TestAnnotationPlacement:
    def test_body_and_attachments_are_co_located(self, db):
        db.create_table("birds", ["name"])
        db.insert_many("birds", [(f"bird{i}",) for i in range(8)])
        store = AnnotationStore(db)
        annotation = store.add(
            "seen at dawn", [CellRef("birds", 3, "name"),
                             CellRef("birds", 7, "name")]
        )
        home = db.backend.shard_of_annotation(annotation.annotation_id)
        for shard, path in enumerate(db.backend.shard_paths()):
            with sqlite3.connect(path) as raw:
                bodies = raw.execute(
                    "SELECT COUNT(*) FROM _in_annotations"
                ).fetchone()[0]
                edges = raw.execute(
                    "SELECT COUNT(*) FROM _in_attachments"
                ).fetchone()[0]
            expected = 1 if shard == home else 0
            assert bodies == expected
            assert edges == 2 * expected

    def test_batch_of_consecutive_ids_lands_on_one_shard(self, db):
        db.create_table("birds", ["name"])
        db.insert_many("birds", [(f"bird{i}",) for i in range(8)])
        store = AnnotationStore(db)
        drafts = [
            AnnotationDraft(text=f"note {i}",
                            cells=(CellRef("birds", i % 8 + 1, "name"),))
            for i in range(10)
        ]
        annotations = store.add_many(drafts)
        homes = {
            db.backend.shard_of_annotation(a.annotation_id)
            for a in annotations
        }
        assert len(homes) == 1

    def test_ids_stay_monotonic_across_reopen(self, tmp_path):
        path = str(tmp_path / "mono.db")
        database = Database(path, shards=4)
        database.create_table("birds", ["name"])
        database.insert("birds", ("swan",))
        store = AnnotationStore(database)
        first = store.add("one", [CellRef("birds", 1, "name")])
        store.delete(first.annotation_id)  # delete the max id
        database.close()

        database = Database(path, shards=4)
        store = AnnotationStore(database)
        try:
            second = store.add("two", [CellRef("birds", 1, "name")])
            # AUTOINCREMENT's no-reuse rule: the deleted max id must not
            # come back, even though the store was reopened in between.
            assert second.annotation_id > first.annotation_id
        finally:
            database.close()

    def test_sequential_ids_are_gap_free(self, db):
        db.create_table("birds", ["name"])
        db.insert("birds", ("swan",))
        store = AnnotationStore(db)
        ids = [
            store.add(f"note {i}", [CellRef("birds", 1, "name")]).annotation_id
            for i in range(5)
        ]
        batch = store.add_many(
            [
                AnnotationDraft(text=f"bulk {i}",
                                cells=(CellRef("birds", 1, "name"),))
                for i in range(5)
            ]
        )
        assert ids + [a.annotation_id for a in batch] == list(range(1, 11))


class TestErrorPaths:
    def test_in_memory_sharding_is_rejected(self):
        with pytest.raises(StorageError, match="file-backed"):
            ShardedBackend(":memory:", shards=4)

    def test_single_shard_backend_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="at least 2"):
            ShardedBackend(str(tmp_path / "x.db"), shards=1)

    def test_zero_shards_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="shards must be >= 1"):
            Database(str(tmp_path / "x.db"), shards=0)

    def test_shard_out_of_range(self, db):
        with pytest.raises(StorageError, match="out of range"):
            db.backend.pool(9)
        with pytest.raises(StorageError, match="out of range"):
            with db.backend.transaction(-1):
                pass

    def test_statements_after_close_fail_loudly(self, tmp_path):
        database = Database(str(tmp_path / "closed.db"), shards=2)
        database.create_table("birds", ["name"])
        database.close()
        with pytest.raises(RuntimeError, match="closed"):
            database.connection
        with pytest.raises(RuntimeError, match="closed"):
            database.backend.submit_scan(lambda: None)

    def test_close_is_idempotent(self, tmp_path):
        database = Database(str(tmp_path / "twice.db"), shards=2)
        database.close()
        database.close()

    def test_write_fanout_reraises_first_error(self, tmp_path):
        backend = ShardedBackend(str(tmp_path / "f.db"), shards=4)
        try:
            ran: list[int] = []

            def ok(i):
                def thunk():
                    ran.append(i)
                return thunk

            def boom():
                raise ValueError("shard went sideways")

            with pytest.raises(ValueError, match="sideways"):
                backend.run_write_fanout([ok(0), boom, ok(2), ok(3)])
            # Submitted siblings are awaited, not abandoned.
            assert sorted(ran) == [0, 2, 3]
        finally:
            backend.close()


class TestCounters:
    def test_counters_are_keyed_by_shard(self, db):
        db.create_table("birds", ["name"])
        db.insert_many("birds", [(f"bird{i}",) for i in range(8)])
        counters = db.backend.counters()
        assert sorted(counters, key=int) == ["0", "1", "2", "3"]
        assert all(
            pool["write_batches"] >= 1 for pool in counters.values()
        ), "the 8-row insert must have touched every shard"

    def test_single_file_counters_shape(self):
        backend = SingleFileBackend()
        try:
            assert list(backend.counters()) == ["0"]
        finally:
            backend.close()
