"""The read-connection pool and the Database's concurrent plumbing.

Covers the pool's connection topology (per-thread read-only connections
for file-backed databases, lock-serialized shared reads for in-memory),
teardown semantics (clear RuntimeError after close, from any entry
point), and the nesting-safe statement tracing that feeds
``Database.track_queries``.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.storage.database import Database


@pytest.fixture
def file_db(tmp_path):
    db = Database(str(tmp_path / "pool.db"))
    db.create_table("items", ["name", "value"])
    for i in range(20):
        db.insert("items", (f"item{i}", i))
    yield db
    db.close()


class TestTopology:
    def test_file_backed_gets_per_thread_readers(self, file_db):
        readers: dict[str, int] = {}

        def probe(tag: str) -> None:
            with file_db.read_connection() as first:
                with file_db.read_connection() as second:
                    assert first is second  # cached per thread
                readers[tag] = id(first)

        baseline = file_db.pool.reader_count  # main thread's own reader
        threads = [
            threading.Thread(target=probe, args=(f"t{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(readers.values())) == 3  # one connection per thread
        assert file_db.pool.reader_count == baseline + 3

    def test_in_memory_reads_share_the_writer(self):
        with Database() as db:
            db.create_table("items", ["name"])
            assert db.pool.serialized_reads
            with db.read_connection() as connection:
                assert connection is db.connection
            assert db.pool.reader_count == 0

    def test_pooled_readers_are_query_only(self, file_db):
        with file_db.read_connection() as connection:
            with pytest.raises(sqlite3.OperationalError):
                connection.execute("INSERT INTO items VALUES ('x', 1)")

    def test_readers_see_committed_writes(self, file_db):
        with file_db.read_connection():
            pass  # open this thread's reader before the write
        file_db.insert("items", ("late", 99))
        rows = file_db.fetch_all(
            "SELECT name FROM items WHERE value = 99"
        )
        assert rows == [("late",)]

    def test_transaction_rolls_back_on_error(self, file_db):
        with pytest.raises(RuntimeError, match="boom"):
            with file_db.transaction() as connection:
                connection.execute("DELETE FROM items")
                raise RuntimeError("boom")
        assert file_db.row_count("items") == 20

    def test_write_lock_is_reentrant(self, file_db):
        with file_db.transaction() as outer:
            with file_db.pool.write() as inner:
                assert inner is outer


class TestClose:
    def test_close_is_idempotent(self, file_db):
        file_db.close()
        file_db.close()

    def test_checkout_after_close_raises_clear_error(self, file_db):
        with file_db.read_connection():
            pass
        file_db.close()
        with pytest.raises(RuntimeError, match="closed"):
            with file_db.pool.read():
                pass
        with pytest.raises(RuntimeError, match="closed"):
            with file_db.transaction():
                pass
        with pytest.raises(RuntimeError, match="closed"):
            file_db.connection

    def test_close_tears_down_other_threads_readers(self, file_db):
        opened = threading.Event()
        release = threading.Event()

        def hold() -> None:
            with file_db.read_connection():
                opened.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=hold)
        thread.start()
        opened.wait(timeout=5)
        release.set()
        thread.join()
        assert file_db.pool.reader_count >= 1
        file_db.close()
        with pytest.raises(RuntimeError, match="closed"):
            file_db.fetch_all("SELECT 1")


class TestTrackQueriesNesting:
    def test_nested_counters_both_record(self, file_db):
        with file_db.track_queries() as outer:
            file_db.row_count("items")
            with file_db.track_queries() as inner:
                file_db.row_count("items")
            file_db.row_count("items")
        assert inner.count == 1
        # The outer counter must see all three — nesting used to clobber
        # the trace callback so only the innermost context counted.
        assert outer.count == 3

    def test_counts_statements_from_pooled_readers(self, file_db):
        with file_db.track_queries() as counter:
            seen: list[int] = []

            def read() -> None:
                seen.append(len(file_db.fetch_all("SELECT * FROM items")))

            threads = [threading.Thread(target=read) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert seen == [20, 20, 20]
        assert counter.count == 3
        assert counter.by_prefix() == {"SELECT": 3}

    def test_counts_readers_opened_mid_context(self, file_db):
        with file_db.track_queries() as counter:
            # This thread's reader does not exist yet; it is opened inside
            # the tracking context and must still be traced.
            thread = threading.Thread(
                target=lambda: file_db.fetch_one("SELECT COUNT(*) FROM items")
            )
            thread.start()
            thread.join()
        assert counter.count == 1
