"""Tests for the bulk read paths and caches added for the block scan."""

import pytest

from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.summaries.classifier import ClassifierSummary


@pytest.fixture
def stack():
    db = Database()
    db.create_table("birds", ["name", "weight"])
    store = AnnotationStore(db)
    catalog = SummaryCatalog(db, object_cache_size=4)
    yield db, store, catalog
    db.close()


class TestAttachmentsForRows:
    def test_matches_per_row_results(self, stack):
        db, store, _catalog = stack
        for i in range(6):
            db.insert("birds", (f"b{i}", float(i)))
        store.add("note one", [CellRef("birds", 1, "name")])
        store.add("note two", [CellRef("birds", 1, "weight"),
                               CellRef("birds", 3, "name")])
        bulk = store.attachments_for_rows("birds", [1, 2, 3, 4])
        assert set(bulk) == {1, 2, 3, 4}
        for row_id in (1, 2, 3, 4):
            assert bulk[row_id] == store.attachments_for_row("birds", row_id)

    def test_unannotated_rows_map_to_empty(self, stack):
        db, store, _catalog = stack
        db.insert("birds", ("b0", 0.0))
        bulk = store.attachments_for_rows("birds", [1, 99])
        assert bulk == {1: {}, 99: {}}

    def test_chunks_large_row_lists(self, stack):
        db, store, _catalog = stack
        row = db.insert("birds", ("b0", 0.0))
        store.add("note", [CellRef("birds", row, "name")])
        # 1200 ids forces three 500-variable chunks.
        bulk = store.attachments_for_rows("birds", list(range(1, 1201)))
        assert len(bulk) == 1200
        assert bulk[row] and all(not bulk[i] for i in range(2, 1201))


class TestLoadObjectsForTable:
    def _save(self, catalog, instance, row_id, labels=("a",)):
        obj = ClassifierSummary(instance, ["a", "b"])
        for position, label in enumerate(labels, start=1):
            obj.add(position, label)
        catalog.save_object(instance, "birds", row_id, obj)
        return obj

    def test_returns_only_summarized_pairs(self, stack):
        _db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        self._save(catalog, "C1", 1)
        self._save(catalog, "C1", 3)
        loaded = catalog.load_objects_for_table(["C1"], "birds", [1, 2, 3, 4])
        assert set(loaded) == {("C1", 1), ("C1", 3)}
        assert loaded[("C1", 1)].annotation_ids() == frozenset({1})

    def test_matches_per_row_load_object(self, stack):
        _db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        self._save(catalog, "C1", 2, labels=("a", "b"))
        bulk = catalog.load_objects_for_table(["C1"], "birds", [2])
        single = catalog.load_object("C1", "birds", 2)
        assert bulk[("C1", 2)].to_json() == single.to_json()

    def test_bulk_load_populates_cache(self, stack):
        db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        self._save(catalog, "C1", 1)
        catalog.load_objects_for_table(["C1"], "birds", [1, 2])
        with db.track_queries() as counter:
            again = catalog.load_objects_for_table(["C1"], "birds", [1, 2])
        assert set(again) == {("C1", 1)}
        assert all("summary_state" not in s for s in counter.statements)

    def test_negative_caching_covers_absent_rows(self, stack):
        db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        catalog.load_object("C1", "birds", 42)  # never summarized
        with db.track_queries() as counter:
            assert catalog.load_object("C1", "birds", 42) is None
        assert counter.count == 0


class TestObjectCache:
    def test_save_invalidates_cached_entry(self, stack):
        _db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        obj = ClassifierSummary("C1", ["a", "b"])
        obj.add(1, "a")
        catalog.save_object("C1", "birds", 1, obj)
        catalog.load_object("C1", "birds", 1)
        obj.add(2, "b")
        catalog.save_object("C1", "birds", 1, obj)
        reloaded = catalog.load_object("C1", "birds", 1)
        assert reloaded.annotation_ids() == frozenset({1, 2})

    def test_delete_invalidates_cached_entry(self, stack):
        _db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        obj = ClassifierSummary("C1", ["a", "b"])
        catalog.save_object("C1", "birds", 1, obj)
        catalog.load_object("C1", "birds", 1)
        catalog.delete_object("C1", "birds", 1)
        assert catalog.load_object("C1", "birds", 1) is None

    def test_lru_bound_respected(self, stack):
        _db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        for row_id in range(1, 8):
            catalog.save_object(
                "C1", "birds", row_id, ClassifierSummary("C1", ["a", "b"])
            )
            catalog.load_object("C1", "birds", row_id)
        info = catalog.object_cache_info()
        assert info["entries"] <= 4  # fixture capacity
        assert info["capacity"] == 4

    def test_zero_capacity_disables_caching(self, stack):
        db, _store, catalog = stack
        catalog.configure_object_cache(0)
        catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        catalog.save_object(
            "C1", "birds", 1, ClassifierSummary("C1", ["a", "b"])
        )
        catalog.load_object("C1", "birds", 1)
        with db.track_queries() as counter:
            catalog.load_object("C1", "birds", 1)
        assert any("summary_state" in s for s in counter.statements)


class TestInstancesForTableJoin:
    def test_single_query_resolves_linked_instances(self, stack):
        db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a"]})
        catalog.define_instance("Cluster", "K1", {})
        catalog.link("C1", "birds")
        catalog.link("K1", "birds")
        catalog._live_instances.clear()
        with db.track_queries() as counter:
            instances = catalog.instances_for_table("birds")
        assert [i.name for i in instances] == ["C1", "K1"]
        assert counter.count == 1


class TestDatabaseTuning:
    def test_in_memory_skips_wal(self):
        db = Database()
        journal = db.connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert journal.lower() != "wal"
        db.close()

    def test_file_backed_gets_wal_and_normal_sync(self, tmp_path):
        db = Database(str(tmp_path / "tuned.db"))
        journal = db.connection.execute("PRAGMA journal_mode").fetchone()[0]
        synchronous = db.connection.execute("PRAGMA synchronous").fetchone()[0]
        assert journal.lower() == "wal"
        assert synchronous == 1  # NORMAL
        db.close()

    def test_track_queries_counts_and_classifies(self, stack):
        db, _store, _catalog = stack
        with db.track_queries() as counter:
            db.insert("birds", ("b", 1.0))
            db.row_count("birds")
        assert counter.count >= 2
        prefixes = counter.by_prefix()
        assert prefixes.get("INSERT", 0) >= 1
        assert prefixes.get("SELECT", 0) >= 1

    def test_summary_state_scan_lookup_uses_covering_index(self, stack):
        db, _store, catalog = stack
        catalog.define_instance("Classifier", "C1", {"labels": ["a"]})
        catalog.save_object(
            "C1", "birds", 1, ClassifierSummary("C1", ["a"])
        )
        plan = db.connection.execute(
            "EXPLAIN QUERY PLAN SELECT instance_name, object "
            "FROM _in_summary_state "
            "WHERE table_name = ? AND row_id IN (1, 2)",
            ("birds",),
        ).fetchall()
        rendered = " ".join(str(row) for row in plan)
        assert "_in_summary_state_by_table_row" in rendered
