"""Tests for repro.storage.database."""

import pytest

from repro.errors import StorageError, UnknownTableError
from repro.storage.database import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    yield database
    database.close()


class TestDDL:
    def test_create_and_list_tables(self, db):
        db.create_table("birds", ["name", "weight"])
        db.create_table("areas", ["region"])
        assert db.tables() == ["areas", "birds"]

    def test_columns(self, db):
        db.create_table("birds", ["name", "weight"])
        assert db.columns("birds") == ("name", "weight")

    def test_duplicate_table_rejected(self, db):
        db.create_table("birds", ["name"])
        with pytest.raises(StorageError, match="already exists"):
            db.create_table("birds", ["other"])

    def test_unknown_table_raises(self, db):
        with pytest.raises(UnknownTableError):
            db.columns("missing")

    def test_drop_table(self, db):
        db.create_table("birds", ["name"])
        db.drop_table("birds")
        assert not db.has_table("birds")
        with pytest.raises(UnknownTableError):
            db.drop_table("birds")

    def test_has_table(self, db):
        assert not db.has_table("birds")
        db.create_table("birds", ["name"])
        assert db.has_table("birds")


class TestDML:
    def test_insert_positional(self, db):
        db.create_table("birds", ["name", "weight"])
        row_id = db.insert("birds", ("Swan", 3.2))
        assert db.get_row("birds", row_id) == ("Swan", 3.2)

    def test_insert_mapping(self, db):
        db.create_table("birds", ["name", "weight"])
        row_id = db.insert("birds", {"name": "Swan"})
        assert db.get_row("birds", row_id) == ("Swan", None)

    def test_insert_mapping_unknown_column(self, db):
        db.create_table("birds", ["name"])
        with pytest.raises(StorageError, match="unknown columns"):
            db.insert("birds", {"nope": 1})

    def test_insert_wrong_arity(self, db):
        db.create_table("birds", ["name", "weight"])
        with pytest.raises(Exception):
            db.insert("birds", ("only-one",))

    def test_insert_many(self, db):
        db.create_table("birds", ["name"])
        ids = db.insert_many("birds", [("a",), ("b",), ("c",)])
        assert len(ids) == 3
        assert db.row_count("birds") == 3

    def test_rowids_are_stable_and_increasing(self, db):
        db.create_table("birds", ["name"])
        first = db.insert("birds", ("a",))
        second = db.insert("birds", ("b",))
        assert second > first
        assert db.get_row("birds", first) == ("a",)

    def test_delete_row(self, db):
        db.create_table("birds", ["name"])
        row_id = db.insert("birds", ("a",))
        db.delete_row("birds", row_id)
        assert db.get_row("birds", row_id) is None

    def test_get_row_missing_returns_none(self, db):
        db.create_table("birds", ["name"])
        assert db.get_row("birds", 999) is None


class TestReads:
    def test_rows_scan_in_rowid_order(self, db):
        db.create_table("birds", ["name"])
        ids = db.insert_many("birds", [("a",), ("b",)])
        scanned = list(db.rows("birds"))
        assert scanned == [(ids[0], ("a",)), (ids[1], ("b",))]

    def test_row_count(self, db):
        db.create_table("birds", ["name"])
        assert db.row_count("birds") == 0
        db.insert("birds", ("a",))
        assert db.row_count("birds") == 1

    def test_value_types_round_trip(self, db):
        db.create_table("t", ["i", "f", "s", "n"])
        row_id = db.insert("t", (42, 3.25, "text", None))
        assert db.get_row("t", row_id) == (42, 3.25, "text", None)


class TestPersistence:
    def test_schema_survives_reopen(self, tmp_path):
        path = str(tmp_path / "test.db")
        first = Database(path)
        first.create_table("birds", ["name", "weight"])
        first.insert("birds", ("Swan", 3.2))
        first.close()
        second = Database(path)
        assert second.columns("birds") == ("name", "weight")
        assert second.row_count("birds") == 1
        second.close()

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with Database(path) as database:
            database.create_table("t", ["c"])
        with pytest.raises(Exception):
            database.insert("t", ("x",))
