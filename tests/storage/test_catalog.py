"""Tests for repro.storage.catalog."""

import pytest

from repro.errors import (
    CatalogError,
    DuplicateInstanceError,
    UnknownInstanceError,
    UnknownSummaryTypeError,
    UnknownTableError,
)
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.summaries.classifier import ClassifierSummary


@pytest.fixture
def catalog():
    db = Database()
    db.create_table("birds", ["name", "weight"])
    db.create_table("areas", ["region"])
    cat = SummaryCatalog(db)
    yield db, cat
    db.close()


class TestInstanceDefinitions:
    def test_define_and_get(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
        instance = cat.get_instance("C1")
        assert instance.type_name == "Classifier"
        assert instance.name == "C1"

    def test_duplicate_name_rejected(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "C1", {"labels": ["a"]})
        with pytest.raises(DuplicateInstanceError):
            cat.define_instance("Cluster", "C1", {})

    def test_unknown_type_rejected(self, catalog):
        _db, cat = catalog
        with pytest.raises(UnknownSummaryTypeError):
            cat.define_instance("Nope", "X", {})

    def test_unknown_instance_raises(self, catalog):
        _db, cat = catalog
        with pytest.raises(UnknownInstanceError):
            cat.get_instance("missing")

    def test_instance_names_sorted(self, catalog):
        _db, cat = catalog
        cat.define_instance("Cluster", "Zed", {})
        cat.define_instance("Classifier", "Alpha", {"labels": ["a"]})
        assert cat.instance_names() == ["Alpha", "Zed"]

    def test_drop_instance_removes_everything(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "C1", {"labels": ["a"]})
        cat.link("C1", "birds")
        obj = ClassifierSummary("C1", ["a"])
        cat.save_object("C1", "birds", 1, obj)
        cat.drop_instance("C1")
        assert not cat.has_instance("C1")
        assert cat.links() == []
        assert cat.load_object("C1", "birds", 1) is None

    def test_drop_unknown_raises(self, catalog):
        _db, cat = catalog
        with pytest.raises(UnknownInstanceError):
            cat.drop_instance("missing")

    def test_trained_model_persists_via_save_config(self, catalog):
        db, cat = catalog
        instance = cat.define_instance(
            "Classifier", "C1", {"labels": ["pos", "neg"]}
        )
        instance.train([("great wonderful", "pos"), ("awful terrible", "neg")])
        cat.save_instance_config("C1")
        # Simulate a fresh session over the same connection.
        fresh = SummaryCatalog(db)
        reloaded = fresh.get_instance("C1")
        assert reloaded.model.predict("great wonderful") == "pos"


class TestLinks:
    def test_link_and_is_linked(self, catalog):
        _db, cat = catalog
        cat.define_instance("Cluster", "Cl", {})
        cat.link("Cl", "birds")
        assert cat.is_linked("Cl", "birds")
        assert not cat.is_linked("Cl", "areas")

    def test_link_is_idempotent(self, catalog):
        _db, cat = catalog
        cat.define_instance("Cluster", "Cl", {})
        cat.link("Cl", "birds")
        cat.link("Cl", "birds")
        assert cat.links() == [("Cl", "birds")]

    def test_many_to_many(self, catalog):
        _db, cat = catalog
        cat.define_instance("Cluster", "Cl", {})
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        cat.link("Cl", "birds")
        cat.link("Cl", "areas")
        cat.link("Cf", "birds")
        assert [i.name for i in cat.instances_for_table("birds")] == ["Cf", "Cl"]
        assert [i.name for i in cat.instances_for_table("areas")] == ["Cl"]

    def test_link_unknown_instance(self, catalog):
        _db, cat = catalog
        with pytest.raises(UnknownInstanceError):
            cat.link("missing", "birds")

    def test_link_unknown_table(self, catalog):
        _db, cat = catalog
        cat.define_instance("Cluster", "Cl", {})
        with pytest.raises(UnknownTableError):
            cat.link("Cl", "missing")

    def test_unlink_drops_state_for_that_table_only(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        cat.link("Cf", "birds")
        cat.link("Cf", "areas")
        cat.save_object("Cf", "birds", 1, ClassifierSummary("Cf", ["a"]))
        cat.save_object("Cf", "areas", 1, ClassifierSummary("Cf", ["a"]))
        cat.unlink("Cf", "birds")
        assert cat.load_object("Cf", "birds", 1) is None
        assert cat.load_object("Cf", "areas", 1) is not None


class TestSummaryState:
    def test_save_and_load_object(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a", "b"]})
        obj = ClassifierSummary("Cf", ["a", "b"])
        obj.add(1, "a")
        obj.add(2, "b")
        cat.save_object("Cf", "birds", 5, obj)
        loaded = cat.load_object("Cf", "birds", 5)
        assert loaded is not None
        assert loaded.counts() == [("a", 1), ("b", 1)]

    def test_save_is_upsert(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        first = ClassifierSummary("Cf", ["a"])
        first.add(1, "a")
        cat.save_object("Cf", "birds", 1, first)
        second = ClassifierSummary("Cf", ["a"])
        cat.save_object("Cf", "birds", 1, second)
        loaded = cat.load_object("Cf", "birds", 1)
        assert loaded.counts() == [("a", 0)]

    def test_save_wrong_instance_rejected(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        rogue = ClassifierSummary("Other", ["a"])
        with pytest.raises(CatalogError, match="belongs to instance"):
            cat.save_object("Cf", "birds", 1, rogue)

    def test_load_missing_returns_none(self, catalog):
        _db, cat = catalog
        assert cat.load_object("Cf", "birds", 1) is None

    def test_delete_object(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        cat.save_object("Cf", "birds", 1, ClassifierSummary("Cf", ["a"]))
        cat.delete_object("Cf", "birds", 1)
        assert cat.load_object("Cf", "birds", 1) is None

    def test_iter_objects_ordered_by_row(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        for row_id in (3, 1, 2):
            cat.save_object("Cf", "birds", row_id, ClassifierSummary("Cf", ["a"]))
        rows = [row_id for row_id, _obj in cat.iter_objects("Cf", "birds")]
        assert rows == [1, 2, 3]

    def test_summary_bytes(self, catalog):
        _db, cat = catalog
        cat.define_instance("Classifier", "Cf", {"labels": ["a"]})
        assert cat.summary_bytes() == 0
        cat.save_object("Cf", "birds", 1, ClassifierSummary("Cf", ["a"]))
        assert cat.summary_bytes() > 0
        assert cat.summary_bytes("birds") == cat.summary_bytes()
        assert cat.summary_bytes("areas") == 0
