"""Tests for repro.text.similarity."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    cosine_similarity,
    dot,
    jaccard_similarity,
    magnitude,
)

_vectors = st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=10.0),
    max_size=8,
)


class TestDotAndMagnitude:
    def test_dot_product(self):
        assert dot({"a": 2.0, "b": 1.0}, {"a": 3.0, "c": 5.0}) == 6.0

    def test_dot_disjoint_is_zero(self):
        assert dot({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_dot_iterates_smaller_side(self):
        big = {str(i): 1.0 for i in range(100)}
        assert dot({"5": 2.0}, big) == 2.0
        assert dot(big, {"5": 2.0}) == 2.0

    def test_magnitude(self):
        assert magnitude({"a": 3.0, "b": 4.0}) == 5.0

    def test_magnitude_empty(self):
        assert magnitude({}) == 0.0


class TestCosine:
    def test_identical_vectors(self):
        vector = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_scale_invariant(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 10.0, "b": 10.0}
        assert cosine_similarity(left, right) == pytest.approx(1.0)

    def test_empty_operand_is_zero(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0
        assert cosine_similarity({"a": 1.0}, {}) == 0.0
        assert cosine_similarity({}, {}) == 0.0

    @given(_vectors, _vectors)
    def test_symmetric_and_bounded(self, left, right):
        forward = cosine_similarity(left, right)
        backward = cosine_similarity(right, left)
        assert math.isclose(forward, backward, abs_tol=1e-9)
        assert -1e-9 <= forward <= 1.0 + 1e-9


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty_is_one(self):
        assert jaccard_similarity(set(), set()) == 1.0

    @given(
        st.sets(st.text(max_size=3), max_size=8),
        st.sets(st.text(max_size=3), max_size=8),
    )
    def test_symmetric_and_bounded(self, left, right):
        forward = jaccard_similarity(left, right)
        assert forward == jaccard_similarity(right, left)
        assert 0.0 <= forward <= 1.0
