"""Tests for repro.text.tokenize."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import STOPWORDS, Tokenizer, tokenize


class TestTokenize:
    def test_basic_tokenization(self):
        assert tokenize("Found eating stonewort") == ["found", "eat", "stonewort"]

    def test_lowercases(self):
        assert tokenize("STONEWORT Beds") == ["stonewort", "bed"]

    def test_strips_punctuation(self):
        assert tokenize("wing, beak; (tail)!") == ["wing", "beak", "tail"]

    def test_drops_stopwords(self):
        assert tokenize("the bird is on the water") == ["bird", "water"]

    def test_drops_short_tokens(self):
        # Single letters fall below the default min_length of 2.
        assert tokenize("a b cd") == ["cd"]

    def test_numbers_survive(self):
        assert "42" in tokenize("weight is 42 grams")

    def test_empty_text(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []

    def test_punctuation_only(self):
        assert tokenize("... !!! ???") == []

    def test_apostrophe_words(self):
        tokens = tokenize("the bird's nest")
        assert any(t.startswith("bird") for t in tokens)

    def test_stemming_conflates_inflections(self):
        assert tokenize("feeding")[0] == tokenize("feeds")[0] == tokenize("feed")[0]

    def test_stemming_preserves_protected_words(self):
        assert tokenize("species") == ["species"]

    def test_stemming_keeps_short_stems_whole(self):
        # Stripping "ed" from "bed" would leave a 1-character stub.
        assert tokenize("bed") == ["bed"]

    def test_deterministic(self):
        text = "Observed feeding on stonewort beds at dawn, twice!"
        assert tokenize(text) == tokenize(text)


class TestTokenizerConfig:
    def test_stemming_can_be_disabled(self):
        tokenizer = Tokenizer(stem=False)
        assert tokenizer.tokens("feeding birds") == ["feeding", "birds"]

    def test_custom_stopwords(self):
        tokenizer = Tokenizer(stopwords=frozenset({"stonewort"}), stem=False)
        assert tokenizer.tokens("the stonewort beds") == ["the", "beds"]

    def test_min_length(self):
        tokenizer = Tokenizer(min_length=5, stem=False)
        assert tokenizer.tokens("tiny bird observed") == ["observed"]

    def test_vocabulary_unions_texts(self):
        tokenizer = Tokenizer(stem=False)
        vocab = tokenizer.vocabulary(["red wing", "blue wing"])
        assert vocab == {"red", "blue", "wing"}

    def test_iter_tokens_matches_tokens(self):
        tokenizer = Tokenizer()
        text = "observed feeding near the shore"
        assert list(tokenizer.iter_tokens(text)) == tokenizer.tokens(text)


class TestTokenizeProperties:
    @given(st.text(max_size=200))
    def test_never_raises_and_tokens_are_nonempty(self, text):
        for token in tokenize(text):
            assert token
            assert token == token.lower()

    @given(st.text(max_size=200))
    def test_no_stopwords_in_output_when_unstemmed(self, text):
        tokenizer = Tokenizer(stem=False)
        assert not set(tokenizer.tokens(text)) & STOPWORDS

    @given(st.text(max_size=100))
    def test_idempotent_on_own_output(self, text):
        tokenizer = Tokenizer(stem=False)
        once = tokenizer.tokens(text)
        assert tokenizer.tokens(" ".join(once)) == once
