"""Tests for repro.text.vectorize."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import Tokenizer
from repro.text.vectorize import TfIdfVectorizer, normalize, term_frequencies


class TestTermFrequencies:
    def test_counts(self):
        assert term_frequencies(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_empty(self):
        assert term_frequencies([]) == {}


class TestNormalize:
    def test_unit_length(self):
        vector = normalize({"a": 3.0, "b": 4.0})
        assert math.isclose(
            math.sqrt(sum(w * w for w in vector.values())), 1.0
        )

    def test_zero_vector_returns_empty(self):
        assert normalize({}) == {}
        assert normalize({"a": 0.0}) == {}

    def test_preserves_direction(self):
        vector = normalize({"a": 2.0, "b": 1.0})
        assert vector["a"] == pytest.approx(2 * vector["b"])

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.01, max_value=100),
            min_size=1,
            max_size=10,
        )
    )
    def test_normalized_magnitude_is_one(self, weights):
        vector = normalize(weights)
        magnitude = math.sqrt(sum(w * w for w in vector.values()))
        assert math.isclose(magnitude, 1.0, rel_tol=1e-9)


class TestTfIdfVectorizer:
    def test_add_document_returns_tokens(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        tokens = vectorizer.add_document("red wing red")
        assert tokens == ["red", "wing", "red"]
        assert vectorizer.num_documents == 1

    def test_common_terms_get_lower_idf(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vectorizer.add_document("wing beak")
        vectorizer.add_document("wing tail")
        vectorizer.add_document("wing crest")
        assert vectorizer.idf("wing") < vectorizer.idf("beak")

    def test_unseen_term_gets_highest_idf(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vectorizer.add_document("wing beak")
        assert vectorizer.idf("unseen") > vectorizer.idf("wing")

    def test_vector_is_unit_by_default(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vectorizer.add_document("wing beak tail")
        vector = vectorizer.vector("wing beak")
        magnitude = math.sqrt(sum(w * w for w in vector.values()))
        assert math.isclose(magnitude, 1.0)

    def test_vector_unnormalized_option(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vector = vectorizer.vector("wing wing beak", unit=False)
        assert vector["wing"] == pytest.approx(2 * vector["beak"])

    def test_empty_document_vector(self):
        vectorizer = TfIdfVectorizer()
        assert vectorizer.vector("") == {}

    def test_remove_document_inverts_add(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vectorizer.add_document("wing beak")
        before = dict(vectorizer._document_frequency)
        vectorizer.add_document("wing tail")
        vectorizer.remove_document("wing tail")
        assert dict(vectorizer._document_frequency) == before
        assert vectorizer.num_documents == 1

    def test_remove_drops_zero_counts(self):
        vectorizer = TfIdfVectorizer(Tokenizer(stem=False))
        vectorizer.add_document("wing")
        vectorizer.remove_document("wing")
        assert "wing" not in vectorizer._document_frequency
        assert vectorizer.num_documents == 0

    def test_vector_from_tokens_matches_vector(self):
        tokenizer = Tokenizer(stem=False)
        vectorizer = TfIdfVectorizer(tokenizer)
        vectorizer.add_document("wing beak tail wing")
        text = "wing beak"
        assert vectorizer.vector(text) == vectorizer.vector_from_tokens(
            tokenizer.tokens(text)
        )
