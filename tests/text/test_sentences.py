"""Tests for repro.text.sentences."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.sentences import split_sentences


class TestSplitSentences:
    def test_simple_split(self):
        text = "The goose swam away. It returned at dusk."
        assert split_sentences(text) == [
            "The goose swam away.",
            "It returned at dusk.",
        ]

    def test_single_sentence(self):
        assert split_sentences("Just one sentence here.") == [
            "Just one sentence here."
        ]

    def test_no_terminal_punctuation(self):
        assert split_sentences("no punctuation at all") == ["no punctuation at all"]

    def test_question_and_exclamation(self):
        text = "Is it a swan? Yes! It is."
        assert split_sentences(text) == ["Is it a swan?", "Yes!", "It is."]

    def test_abbreviation_not_split(self):
        text = "Dr. Smith recorded the sighting. It was early."
        sentences = split_sentences(text)
        assert sentences[0] == "Dr. Smith recorded the sighting."
        assert len(sentences) == 2

    def test_species_abbreviation(self):
        text = "We saw Anser sp. near the lake. Counts were high."
        assert len(split_sentences(text)) == 2

    def test_decimal_numbers_not_split(self):
        text = "The bird weighed 3.5 kilograms. It flew away."
        sentences = split_sentences(text)
        assert sentences[0] == "The bird weighed 3.5 kilograms."

    def test_initials_not_split(self):
        text = "Observed by J. Smith yesterday. Weather was clear."
        assert len(split_sentences(text)) == 2

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_blank_lines_break_sentences(self):
        text = "first fragment\n\nsecond fragment"
        assert split_sentences(text) == ["first fragment", "second fragment"]

    def test_wrapped_lines_stay_together(self):
        text = "A sentence wrapped\nacross two lines. Second one."
        sentences = split_sentences(text)
        assert sentences[0] == "A sentence wrapped across two lines."

    def test_lowercase_continuation_not_split(self):
        # "approx. one" continues the sentence (lowercase follow-up).
        text = "The flock numbered approx. one hundred birds."
        assert len(split_sentences(text)) == 1


class TestSplitSentencesProperties:
    @given(st.text(max_size=300))
    def test_never_raises_and_output_is_stripped(self, text):
        for sentence in split_sentences(text):
            assert sentence == sentence.strip()
            assert sentence

    @given(
        st.lists(
            st.from_regex(r"[A-Z][a-z]{2,8}( [a-z]{2,8}){1,5}\.", fullmatch=True),
            min_size=1,
            max_size=6,
        )
    )
    def test_well_formed_sentences_round_trip(self, sentences):
        from hypothesis import assume

        from repro.text.sentences import _ABBREVIATIONS

        # Sentences whose last word looks like an abbreviation ("vs.") are
        # deliberately not split; exclude them from the round-trip claim.
        assume(
            all(
                sentence.rstrip(".").rsplit(None, 1)[-1].lower()
                not in _ABBREVIATIONS
                for sentence in sentences
            )
        )
        text = " ".join(sentences)
        assert split_sentences(text) == sentences
