"""Tests for repro.gate.cli (the InsightNotesGate REPL)."""

import pytest

from repro.gate.cli import GateREPL, run_script


@pytest.fixture
def repl():
    gate = GateREPL()
    yield gate
    gate.session.close()


class TestCommands:
    def test_demo_loads_once(self, repl):
        first = repl.handle("\\demo")
        assert "demo loaded" in first
        second = repl.handle("\\demo")
        assert "error" in second

    def test_tables_lists_schema(self, repl):
        repl.handle("\\demo")
        text = repl.handle("\\tables")
        assert "birds" in text
        assert "sightings" in text

    def test_tables_empty_hint(self, repl):
        assert "\\demo" in repl.handle("\\tables")

    def test_instances_shows_links(self, repl):
        repl.handle("\\demo")
        text = repl.handle("\\instances")
        assert "ClassBird1" in text
        assert "birds" in text

    def test_sql_returns_table_with_qid(self, repl):
        repl.handle("\\demo")
        text = repl.handle("SELECT name FROM birds LIMIT 2")
        assert "QID =" in text

    def test_sql_error_reported_not_raised(self, repl):
        assert repl.handle("SELECT FROM nothing").startswith("error:")

    def test_qbe_builds_select(self, repl):
        repl.handle("\\demo")
        text = repl.handle("\\qbe birds region=midwest")
        assert "midwest" in text

    def test_qbe_numeric_value(self, repl):
        repl.handle("\\demo")
        text = repl.handle("\\qbe sightings count=60")
        assert "QID =" in text or "0 row(s)" in text

    def test_annotate_and_summaries(self, repl):
        repl.handle("\\demo")
        repl.handle("SELECT name, species FROM birds")
        added = repl.handle("\\annotate birds 1 observed feeding on stonewort")
        assert added.startswith("annotation #")
        text = repl.handle("\\summaries 101 0")
        assert "Classifier-Type" in text

    def test_annotate_with_columns(self, repl):
        repl.handle("\\demo")
        response = repl.handle("\\annotate birds 1 weight value seems wrong")
        assert response.startswith("annotation #")
        annotation_id = int(response.split("#")[1].split()[0])
        cells = repl.session.annotations.cells_of(annotation_id)
        assert [cell.column for cell in cells] == ["weight"]

    def test_zoomin_through_repl(self, repl):
        repl.handle("\\demo")
        repl.handle("SELECT name FROM birds")
        text = repl.handle("ZOOMIN REFERENCE QID = 101 ON ClassBird1 INDEX 1")
        assert "ZoomIn on ClassBird1" in text

    def test_link_unlink(self, repl):
        repl.handle("\\demo")
        assert "unlinked" in repl.handle("\\unlink SimCluster birds")
        assert "linked" in repl.handle("\\link SimCluster birds")

    def test_trace_toggle(self, repl):
        assert repl.handle("\\trace") == "trace on"
        assert repl.handle("\\trace") == "trace off"

    def test_trace_output_in_sql(self, repl):
        repl.handle("\\demo")
        repl.handle("\\trace")
        text = repl.handle("SELECT name FROM birds LIMIT 1")
        assert "Under the hood" in text

    def test_unknown_command(self, repl):
        assert "unknown command" in repl.handle("\\bogus")

    def test_help(self, repl):
        assert "\\annotate" in repl.handle("\\help")

    def test_quit_raises_system_exit(self, repl):
        with pytest.raises(SystemExit):
            repl.handle("\\quit")

    def test_empty_line_is_silent(self, repl):
        assert repl.handle("   ") == ""


class TestRunScript:
    def test_runs_until_quit(self):
        outputs = run_script(["\\demo", "\\quit", "\\tables"])
        assert len(outputs) == 1  # stops at \quit

    def test_scripted_session(self):
        outputs = run_script([
            "\\demo",
            "SELECT name FROM birds LIMIT 1",
        ])
        assert "demo loaded" in outputs[0]
        assert "QID = 101" in outputs[1]
