"""Tests for repro.gate.render."""

from repro.engine.results import QueryResult
from repro.gate.render import (
    render_result,
    render_summaries,
    render_table,
    render_zoomin,
)
from repro.model.annotation import Annotation
from repro.model.tuple import AnnotatedTuple
from repro.summaries.base import ZoomComponent
from repro.summaries.classifier import ClassifierSummary
from repro.summaries.cluster import ClusterSummary
from repro.summaries.snippet import SnippetEntry, SnippetSummary
from repro.zoomin.command import ZoomInCommand
from repro.zoomin.executor import ZoomInMatch, ZoomInResult


def _row():
    classifier = ClassifierSummary("C1", ["a", "b"])
    classifier.add(1, "a")
    cluster = ClusterSummary("S1")
    snippet = SnippetSummary("T1")
    snippet.add_entry(SnippetEntry(2, "Article", ("x.",)))
    return AnnotatedTuple(
        values=("Swan", 3.2),
        summaries={"C1": classifier, "S1": cluster, "T1": snippet},
    )


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table(("name", "w"), [("Swan", 3.2), ("Goose", None)])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| name " in lines[1]
        assert "NULL" in text
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_float_formatting(self):
        assert "3.2" in render_table(("w",), [(3.2,)])


class TestRenderResult:
    def test_includes_qid_and_count(self):
        result = QueryResult(qid=101, columns=("a", "b"), tuples=[_row()])
        text = render_result(result)
        assert "QID = 101" in text
        assert "1 row(s)" in text

    def test_truncation_notice(self):
        result = QueryResult(
            qid=5, columns=("a", "b"), tuples=[_row() for _ in range(10)]
        )
        text = render_result(result, max_rows=3)
        assert "showing first 3" in text


class TestRenderSummaries:
    def test_groups_by_type_sections(self):
        text = render_summaries(_row())
        assert text.index("Classifier-Type") < text.index("Cluster-Type")
        assert text.index("Cluster-Type") < text.index("Snippet-Type")
        assert "C1 [(a, 1), (b, 0)]" in text

    def test_empty_summaries(self):
        assert "no summary instances" in render_summaries(
            AnnotatedTuple(values=())
        )


class TestRenderZoomin:
    def test_lists_annotations(self):
        command = ZoomInCommand(qid=101, instance="C1", index=1)
        match = ZoomInMatch(
            values=("Swan",),
            component=ZoomComponent(1, "a", (1,)),
            annotations=[Annotation(annotation_id=1, text="note text",
                                    author="aria")],
        )
        text = render_zoomin(ZoomInResult(command, [match], cache_hit=True))
        assert "cache hit" in text
        assert "#1 (aria): note text" in text

    def test_empty_matches(self):
        command = ZoomInCommand(qid=101, instance="C1")
        text = render_zoomin(ZoomInResult(command, [], cache_hit=False))
        assert "no tuples matched" in text
        assert "cache miss" in text
