"""Tests for the Gate REPL's extended commands."""

import pytest

from repro.gate.cli import GateREPL


@pytest.fixture
def repl():
    gate = GateREPL()
    gate.handle("\\demo")
    yield gate
    gate.session.close()


class TestStats:
    def test_stats_renders_all_sections(self, repl):
        text = repl.handle("\\stats")
        for key in ("tables:", "annotations:", "maintenance:",
                    "zoomin_cache:", "summarize_once:"):
            assert key in text

    def test_stats_reflect_activity(self, repl):
        before = repl.handle("\\stats")
        repl.handle("\\annotate birds 1 observed feeding on stonewort")
        after = repl.handle("\\stats")
        assert before != after


class TestExplain:
    def test_explain_shows_plan(self, repl):
        text = repl.handle("\\explain SELECT name FROM birds WHERE weight > 5")
        assert "Scan(birds) [pushed: weight > 5]" in text
        assert "Hydrate(birds)" in text

    def test_explain_without_sql(self, repl):
        assert "usage" in repl.handle("\\explain")

    def test_explain_error_reported(self, repl):
        assert repl.handle("\\explain SELECT FROM").startswith("error:")


class TestDeleteAnnotation:
    def test_delete_annotation(self, repl):
        added = repl.handle("\\annotate birds 1 a disposable note")
        annotation_id = added.split("#")[1].split()[0]
        response = repl.handle(f"\\delete-annotation {annotation_id}")
        assert "deleted" in response
        error = repl.handle(f"\\delete-annotation {annotation_id}")
        assert error.startswith("error:")

    def test_usage_message(self, repl):
        assert "usage" in repl.handle("\\delete-annotation notanumber")
        assert "usage" in repl.handle("\\delete-annotation")
