"""Property test: bulk ingestion is byte-identical to one-by-one adds.

The bulk pipeline's contract is that it is *purely* a performance
optimization: for any batch of annotations,
:meth:`InsightNotes.add_annotations` must leave exactly the persisted
state a loop of single-annotation adds (the store's :meth:`add` plus the
manager's :meth:`on_annotation_added`) would leave — same annotation
rows, same attachments, same serialized summary objects, byte for byte.

Hypothesis drives random batches (random texts, documents, row/column/
multi-row targets across two tables) against a session carrying all five
summary types, each in both annotation-invariant settings, and compares
the raw SQLite rows of the two write paths.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes
from repro.model.annotation import AnnotationKind
from repro.model.cell import CellRef
from repro.summaries.registry import extended_registry
from tests.conftest import TRAINING

_WORDS = [
    "observed", "feeding", "stonewort", "shore", "symptoms", "avian",
    "pox", "flock", "dawn", "reeds", "diving", "insects", "banded",
    "migration", "unclear", "follow-up", "weight", "molt",
]

#: (type name, base config) — every pair is instantiated twice, once per
#: ``annotation_invariant`` setting (Cluster's default is False; the
#: override flips each type away from its default too).
_TYPES = [
    ("Classifier", {"labels": ["Behavior", "Disease"]}),
    ("Cluster", {"threshold": 0.3}),
    ("Snippet", {"max_sentences": 2}),
    ("Terms", {"top_k": 5}),
    ("Timeline", {"bucket_seconds": 60}),
]

_TABLES = {"birds": 3, "sightings": 2}


def _build_session() -> InsightNotes:
    notes = InsightNotes(registry=extended_registry())
    notes.create_table("birds", ["name", "weight"])
    for row in (("Swan", 3.2), ("Goose", 2.4), ("Brant", 1.9)):
        notes.insert("birds", row)
    notes.create_table("sightings", ["observer", "count"])
    for row in (("aria", 4), ("ben", 9)):
        notes.insert("sightings", row)
    for type_name, config in _TYPES:
        for suffix, invariant in (("AI", True), ("NI", False)):
            name = f"{type_name}{suffix}"
            instance = notes.catalog.define_instance(
                type_name, name, {**config, "annotation_invariant": invariant}
            )
            if type_name == "Classifier":
                instance.train(list(TRAINING))
                notes.catalog.save_instance_config(name)
            for table in _TABLES:
                notes.link(name, table)
    return notes


def _persisted_rows(notes: InsightNotes) -> dict[str, list[tuple]]:
    notes.manager.flush()
    connection = notes.db.connection
    return {
        "annotations": connection.execute(
            "SELECT * FROM _in_annotations ORDER BY annotation_id"
        ).fetchall(),
        "attachments": connection.execute(
            "SELECT * FROM _in_attachments ORDER BY annotation_id, "
            "table_name, row_id, column_name"
        ).fetchall(),
        "summaries": connection.execute(
            "SELECT * FROM _in_summary_state ORDER BY instance_name, "
            "table_name, row_id"
        ).fetchall(),
    }


# -- spec strategy ------------------------------------------------------

_cells = st.lists(
    st.tuples(
        st.sampled_from(sorted(_TABLES)),
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["name", "weight", "observer", "count"]),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


@st.composite
def annotation_specs(draw) -> dict:
    document = draw(st.booleans())
    if document:
        sentences = draw(
            st.lists(
                st.lists(st.sampled_from(_WORDS), min_size=3, max_size=8),
                min_size=2,
                max_size=4,
            )
        )
        text = ". ".join(" ".join(words) for words in sentences) + "."
    else:
        text = " ".join(
            draw(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=10))
        )
    spec: dict = {
        "text": text,
        "document": document,
        "title": draw(st.sampled_from(["", "field note"])),
        "author": draw(st.sampled_from(["aria", "ben"])),
        # Always pinned: the two write paths must not diverge on clock
        # reads (Timeline buckets by timestamp).
        "created_at": float(draw(st.integers(min_value=0, max_value=7200))),
    }
    cells = [
        CellRef(table, min(row_id, _TABLES[table]), column)
        for table, row_id, column in draw(_cells)
        if column in ("name", "weight")
        or table == "sightings"
    ]
    cells = [
        cell
        for cell in cells
        if (cell.table == "birds") == (cell.column in ("name", "weight"))
    ]
    if not cells:
        cells = [CellRef("birds", 1, "name")]
    spec["cells"] = list(dict.fromkeys(cells))
    return spec


@given(st.lists(annotation_specs(), min_size=1, max_size=8))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_bulk_ingest_matches_sequential_byte_for_byte(specs):
    sequential = _build_session()
    batched = _build_session()
    try:
        for spec in specs:
            kind = (
                AnnotationKind.DOCUMENT
                if spec["document"]
                else AnnotationKind.COMMENT
            )
            annotation = sequential.annotations.add(
                spec["text"],
                spec["cells"],
                author=spec["author"],
                kind=kind,
                title=spec["title"],
                created_at=spec["created_at"],
            )
            sequential.manager.on_annotation_added(annotation, spec["cells"])
        batched.add_annotations(
            [
                {
                    "text": spec["text"],
                    "cells": spec["cells"],
                    "author": spec["author"],
                    "document": spec["document"],
                    "title": spec["title"],
                    "created_at": spec["created_at"],
                }
                for spec in specs
            ]
        )
        assert _persisted_rows(batched) == _persisted_rows(sequential)
    finally:
        sequential.close()
        batched.close()
