"""Tests for the bulk annotation ingestion pipeline.

Covers the manager's :meth:`SummaryManager.add_annotations` batch path,
the store's :meth:`AnnotationStore.add_many` bulk insert, the session's
:meth:`InsightNotes.add_annotations` facade, the batch counters in
:class:`MaintenanceStats`, and the statement-count contract (one
transaction's worth of SQL instead of per-annotation round-trips).

The byte-identical batch-vs-sequential equivalence across all summary
types is property-tested separately in ``test_ingest_equivalence.py``.
"""

import json

import pytest

from repro import InsightNotes
from repro.errors import AnnotationError
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationDraft
from repro.summaries.registry import extended_registry
from tests.conftest import TRAINING

STATE_TABLE = "_in_summary_state"


def _five_type_session() -> InsightNotes:
    """A session with all five summary types linked to ``birds``."""
    notes = InsightNotes(registry=extended_registry())
    notes.create_table("birds", ["name", "weight"])
    for name, weight in (("Swan", 3.2), ("Goose", 2.4), ("Brant", 1.9)):
        notes.insert("birds", (name, weight))
    notes.define_classifier("Cf", ["Behavior", "Disease"], TRAINING)
    notes.define_cluster("Cl", threshold=0.3)
    notes.define_snippet("Sn", max_sentences=2)
    notes.define_instance("Terms", "Tm", {"top_k": 5})
    notes.define_instance("Timeline", "Tl", {"bucket_seconds": 60})
    for name in ("Cf", "Cl", "Sn", "Tm", "Tl"):
        notes.link(name, "birds")
    return notes


def _persisted_state(notes: InsightNotes) -> list[tuple]:
    notes.manager.flush()
    return notes.db.connection.execute(
        f"SELECT instance_name, table_name, row_id, object FROM {STATE_TABLE} "
        "ORDER BY instance_name, table_name, row_id"
    ).fetchall()


_SPECS = [
    {"text": "observed feeding on stonewort", "table": "birds", "row_id": 1},
    {"text": "shows symptoms of avian pox", "table": "birds", "row_id": 2,
     "columns": ["name"]},
    {"text": "seen foraging near the shore today",
     "cells": [CellRef("birds", 1, "name"), CellRef("birds", 3, "weight")]},
    {"text": "First sighting.\nThe flock appeared at dawn near the reeds. "
             "Feeding lasted an hour.",
     "table": "birds", "row_id": 2, "document": True, "title": "field note"},
    {"text": "tested positive for botulism", "table": "birds", "row_id": 3},
]


class TestBatchVsSequential:
    def test_same_persisted_state_across_all_types(self):
        sequential = _five_type_session()
        batched = _five_type_session()
        try:
            for spec in _SPECS:
                sequential.add_annotation(**{**spec, "created_at": 1000.0})
            batched.add_annotations(
                [{**spec, "created_at": 1000.0} for spec in _SPECS]
            )
            assert _persisted_state(batched) == _persisted_state(sequential)
        finally:
            sequential.close()
            batched.close()

    def test_returns_annotations_in_spec_order(self):
        notes = _five_type_session()
        try:
            stored = notes.add_annotations(_SPECS)
            assert [a.text for a in stored] == [s["text"] for s in _SPECS]
            ids = [a.annotation_id for a in stored]
            assert ids == sorted(ids)
        finally:
            notes.close()

    def test_batch_issues_at_least_3x_fewer_statements(self):
        # A modest real-world batch: a dozen annotations per row.
        specs = [
            {"text": f"{text} (note {i})", "table": "birds",
             "row_id": 1 + i % 3}
            for i, (text, _label) in enumerate(TRAINING * 4)
        ]
        sequential = _five_type_session()
        batched = _five_type_session()
        try:
            with sequential.db.track_queries() as single_counter:
                for spec in specs:
                    sequential.add_annotation(**spec)
            with batched.db.track_queries() as batch_counter:
                batched.add_annotations(specs)
        finally:
            sequential.close()
            batched.close()
        assert batch_counter.count * 3 <= single_counter.count


class TestManagerBatchPath:
    def test_replay_of_batch_updates_nothing(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        stored = session.add_annotations(
            [{"text": "observed feeding", "table": "birds", "row_id": 1}]
        )
        replay = [
            (a, session.annotations.cells_of(a.annotation_id)) for a in stored
        ]
        assert session.manager.add_annotations(replay) == 0
        obj = session.manager.current_object("C", "birds", 1)
        assert len(obj.annotation_ids()) == 1

    def test_empty_batch_is_a_noop(self, session):
        assert session.add_annotations([]) == []
        assert session.manager.add_annotations([]) == 0
        assert session.manager.stats.batches == 0

    def test_batch_counters(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.insert("birds", ("Goose",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        session.add_annotations(
            [
                {"text": "observed feeding", "table": "birds", "row_id": 1},
                # A multi-row annotation: two applications, one analysis.
                {"text": "shows symptoms of pox",
                 "cells": [CellRef("birds", 1, "name"),
                           CellRef("birds", 2, "name")]},
            ]
        )
        stats = session.manager.stats
        assert stats.batches == 1
        assert stats.batch_rows == 2
        assert stats.rows_per_batch == 2.0
        assert stats.annotations_processed == 2
        # 3 (annotation, row) applications, 2 unique annotations, 1 instance.
        assert stats.folds_saved == 1
        for key in ("batches", "batch_rows", "rows_per_batch", "folds_saved"):
            assert key in stats.as_dict()

    def test_deferred_batch_persists_on_flush(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        session.manager.write_through = False
        session.add_annotations(
            [{"text": "observed feeding", "table": "birds", "row_id": 1}]
        )
        assert session.catalog.load_object("C", "birds", 1) is None
        assert session.manager.flush() == 1
        assert session.catalog.load_object("C", "birds", 1) is not None

    def test_batch_invalidates_attachment_cache(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        assert session.manager.attachments_for_row("birds", 1) == {}
        stored = session.add_annotations(
            [{"text": "observed feeding", "table": "birds", "row_id": 1}]
        )
        attachments = session.manager.attachments_for_row("birds", 1)
        assert stored[0].annotation_id in attachments

    def test_multi_cell_same_row_folds_once(self, session):
        session.create_table("birds", ["name", "weight"])
        session.insert("birds", ("Swan", 3.2))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        session.add_annotations(
            [{"text": "observed feeding", "table": "birds", "row_id": 1}]
        )
        obj = session.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 1


class TestObjectsUpdatedCounting:
    def test_deferred_folds_count_once_per_persisted_object(self, session):
        """Regression: ``objects_updated`` counts persisted writes.

        Two annotations folded into the same object between flushes used
        to double-count; the counter must move once, at flush time.
        """
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        session.manager.write_through = False
        session.add_annotation("observed feeding", table="birds", row_id=1)
        session.add_annotation("seen foraging", table="birds", row_id=1)
        assert session.manager.stats.objects_updated == 0
        assert session.manager.flush() == 1
        assert session.manager.stats.objects_updated == 1

    def test_write_through_batch_counts_persisted_objects(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.insert("birds", ("Goose",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        session.add_annotations(
            [
                {"text": "observed feeding", "table": "birds", "row_id": 1},
                {"text": "seen foraging", "table": "birds", "row_id": 1},
                {"text": "shows pox symptoms", "table": "birds", "row_id": 2},
            ]
        )
        # Two summary objects reached storage, however many folds each took.
        assert session.manager.stats.objects_updated == 2

    def test_eviction_still_counts_persisted_write(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        session.insert("birds", ("Goose",))
        session.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        session.link("C", "birds")
        manager = session.manager
        manager.write_through = False
        manager._object_cache_size = 1
        session.add_annotation("observed feeding", table="birds", row_id=1)
        session.add_annotation("shows pox symptoms", table="birds", row_id=2)
        # Row 1's object was evicted (and persisted) to make room for
        # row 2's; the flush writes the remaining dirty object.
        assert manager.flush() == 1
        assert manager.stats.objects_updated == 2


class TestSessionBatchAPI:
    def test_spec_validation_happens_before_storage(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        with pytest.raises(AnnotationError, match="cells or table"):
            session.add_annotations(
                [
                    {"text": "fine", "table": "birds", "row_id": 1},
                    {"text": "broken"},
                ]
            )
        assert session.annotations.count() == 0

    def test_conflicting_target_spec_rejected(self, session):
        session.create_table("birds", ["name"])
        with pytest.raises(AnnotationError, match="not both"):
            session.add_annotations(
                [{"text": "x", "table": "birds", "row_id": 1,
                  "cells": [CellRef("birds", 1, "name")]}]
            )

    def test_unknown_spec_keys_rejected(self, session):
        session.create_table("birds", ["name"])
        with pytest.raises(AnnotationError, match="bogus"):
            session.add_annotations(
                [{"text": "x", "table": "birds", "row_id": 1, "bogus": 1}]
            )

    def test_text_is_required(self, session):
        with pytest.raises(AnnotationError, match="text"):
            session.add_annotations([{"table": "birds", "row_id": 1}])


class TestStoreAddMany:
    def test_ids_contiguous_in_draft_order(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        single = session.annotations.add("first", [CellRef("birds", 1, "name")])
        stored = session.annotations.add_many(
            [
                AnnotationDraft(text="second", cells=(CellRef("birds", 1, "name"),)),
                AnnotationDraft(text="third", cells=(CellRef("birds", 1, "name"),)),
            ]
        )
        assert [a.annotation_id for a in stored] == [
            single.annotation_id + 1,
            single.annotation_id + 2,
        ]
        assert session.annotations.get(stored[1].annotation_id).text == "third"

    def test_no_id_reuse_after_delete(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        first = session.annotations.add("first", [CellRef("birds", 1, "name")])
        session.annotations.delete(first.annotation_id)
        stored = session.annotations.add_many(
            [AnnotationDraft(text="next", cells=(CellRef("birds", 1, "name"),))]
        )
        assert stored[0].annotation_id > first.annotation_id

    def test_single_add_continues_after_bulk(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        stored = session.annotations.add_many(
            [AnnotationDraft(text="bulk", cells=(CellRef("birds", 1, "name"),))]
        )
        single = session.annotations.add("after", [CellRef("birds", 1, "name")])
        assert single.annotation_id == stored[0].annotation_id + 1

    def test_invalid_draft_rolls_back_everything(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        with pytest.raises(AnnotationError, match="unknown column"):
            session.annotations.add_many(
                [
                    AnnotationDraft(text="ok", cells=(CellRef("birds", 1, "name"),)),
                    AnnotationDraft(text="bad", cells=(CellRef("birds", 1, "nope"),)),
                ]
            )
        assert session.annotations.count() == 0

    def test_empty_cells_rejected(self, session):
        with pytest.raises(AnnotationError, match="at least one cell"):
            session.annotations.add_many([AnnotationDraft(text="x", cells=())])

    def test_shared_timestamp_and_explicit_created_at(self, session):
        session.create_table("birds", ["name"])
        session.insert("birds", ("Swan",))
        stored = session.annotations.add_many(
            [
                AnnotationDraft(text="a", cells=(CellRef("birds", 1, "name"),)),
                AnnotationDraft(text="b", cells=(CellRef("birds", 1, "name"),)),
                AnnotationDraft(text="c", cells=(CellRef("birds", 1, "name"),),
                                created_at=123.0),
            ]
        )
        assert stored[0].created_at == stored[1].created_at
        assert stored[2].created_at == 123.0


class TestGeneratorRoutesThroughBatch:
    def test_workload_generation_uses_batches(self):
        from repro.workloads import WorkloadConfig, build_workload

        workload = build_workload(
            WorkloadConfig(num_birds=3, num_sightings=4, annotations_per_row=5)
        )
        try:
            stats = workload.session.manager.stats
            assert stats.batches >= 1
            assert stats.annotations_processed == workload.annotation_count
        finally:
            workload.session.close()
