"""Property test: a sharded store persists byte-identically to shards=1.

Sharding's contract is that it is *purely* a storage-topology change:
for any single-threaded history of bulk ingests, a ``shards=N`` session
must leave exactly the persisted state the single-file session leaves —
same annotation rows (ids included: a sequential history draws gap-free
ids from the shared sequence), same attachments, same serialized
summary objects for all five summary types — merely spread over N
shard files.  The comparison unions each system table across shards
and sorts by primary key, so placement is invisible and bytes must
match exactly.

Concurrent histories are exercised separately
(``tests/engine/test_shard_concurrency.py``): under contention id
*interleaving* is scheduler-dependent by design, so byte-for-byte
equality is only promised for sequential histories.
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes
from repro.model.cell import CellRef
from repro.summaries.registry import extended_registry
from tests.conftest import TRAINING

_WORDS = [
    "observed", "feeding", "stonewort", "shore", "symptoms", "avian",
    "pox", "flock", "dawn", "reeds", "diving", "insects", "banded",
    "migration", "unclear", "follow-up", "weight", "molt",
]

#: All five summary types ride along, so the equivalence check covers
#: every maintenance fold the ingest path can trigger.
_TYPES = [
    ("Classifier", {"labels": ["Behavior", "Disease"]}),
    ("Cluster", {"threshold": 0.3}),
    ("Snippet", {"max_sentences": 2}),
    ("Terms", {"top_k": 5}),
    ("Timeline", {"bucket_seconds": 60}),
]

_TABLES = {"birds": 3, "sightings": 2}


def _build_session(path: str, shards: int) -> InsightNotes:
    notes = InsightNotes(path, shards=shards, registry=extended_registry())
    notes.create_table("birds", ["name", "weight"])
    for row in (("Swan", 3.2), ("Goose", 2.4), ("Brant", 1.9)):
        notes.insert("birds", row)
    notes.create_table("sightings", ["observer", "count"])
    for row in (("aria", 4), ("ben", 9)):
        notes.insert("sightings", row)
    for type_name, config in _TYPES:
        name = f"{type_name}X"
        instance = notes.catalog.define_instance(type_name, name, config)
        if type_name == "Classifier":
            instance.train(list(TRAINING))
            notes.catalog.save_instance_config(name)
        for table in _TABLES:
            notes.link(name, table)
    return notes


def _persisted_rows(notes: InsightNotes) -> dict[str, list[tuple]]:
    """System-table rows, unioned across shards and key-sorted."""
    notes.manager.flush()
    queries = {
        "annotations": "SELECT * FROM _in_annotations",
        "attachments": "SELECT * FROM _in_attachments",
        "summaries": (
            "SELECT instance_name, table_name, row_id, object "
            "FROM _in_summary_state"
        ),
    }
    merged: dict[str, list[tuple]] = {}
    for key, sql in queries.items():
        rows: list[tuple] = []
        for shard in range(notes.db.shard_count):
            rows.extend(tuple(row) for row in notes.db.fetch_all(
                sql, shard=shard
            ))
        merged[key] = sorted(rows)
    return merged


_cells = st.lists(
    st.tuples(
        st.sampled_from(sorted(_TABLES)),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


@st.composite
def annotation_specs(draw) -> dict:
    document = draw(st.booleans())
    if document:
        sentences = draw(
            st.lists(
                st.lists(st.sampled_from(_WORDS), min_size=3, max_size=8),
                min_size=2,
                max_size=4,
            )
        )
        text = ". ".join(" ".join(words) for words in sentences) + "."
    else:
        text = " ".join(
            draw(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=10))
        )
    cells = [
        CellRef(table, min(row_id, _TABLES[table]),
                "name" if table == "birds" else "observer")
        for table, row_id in draw(_cells)
    ]
    return {
        "text": text,
        "document": document,
        "title": draw(st.sampled_from(["", "field note"])),
        "author": draw(st.sampled_from(["aria", "ben"])),
        # Always pinned: the two topologies must not diverge on clock
        # reads (Timeline buckets by timestamp).
        "created_at": float(draw(st.integers(min_value=0, max_value=7200))),
        "cells": list(dict.fromkeys(cells)),
    }


def _batches():
    return st.lists(
        st.lists(annotation_specs(), min_size=1, max_size=5),
        min_size=1,
        max_size=3,
    )


@given(batches=_batches(), shards=st.sampled_from([2, 4]))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_sharded_ingest_matches_single_file_byte_for_byte(batches, shards):
    with tempfile.TemporaryDirectory() as tmp:
        single = _build_session(f"{tmp}/single.db", shards=1)
        sharded = _build_session(f"{tmp}/sharded.db", shards=shards)
        try:
            for notes in (single, sharded):
                for batch in batches:
                    notes.add_annotations(
                        [
                            {
                                "text": spec["text"],
                                "cells": spec["cells"],
                                "author": spec["author"],
                                "document": spec["document"],
                                "title": spec["title"],
                                "created_at": spec["created_at"],
                            }
                            for spec in batch
                        ]
                    )
            assert _persisted_rows(sharded) == _persisted_rows(single)
        finally:
            single.close()
            sharded.close()
