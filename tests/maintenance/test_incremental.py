"""Tests for repro.maintenance.incremental."""

import pytest

from repro import InsightNotes
from repro.maintenance.incremental import SummaryManager
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan", 3.2))
    notes.insert("birds", ("Goose", 2.4))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "birds")
    yield notes
    notes.close()


class TestAddition:
    def test_add_updates_summary(self, stack):
        stack.add_annotation("observed feeding on stonewort",
                             table="birds", row_id=1)
        obj = stack.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 1

    def test_add_is_idempotent_on_replay(self, stack):
        annotation = stack.add_annotation("seen foraging near shore",
                                          table="birds", row_id=1)
        cells = stack.annotations.cells_of(annotation.annotation_id)
        updated = stack.manager.on_annotation_added(annotation, cells)
        assert updated == 0  # replay changes nothing
        obj = stack.manager.current_object("C", "birds", 1)
        assert len(obj.annotation_ids()) == 1

    def test_multi_row_annotation_updates_all_rows(self, stack):
        from repro.model.cell import CellRef

        stack.add_annotation(
            "shows symptoms of avian pox",
            cells=[CellRef("birds", 1, "name"), CellRef("birds", 2, "name")],
        )
        for row_id in (1, 2):
            obj = stack.manager.current_object("C", "birds", row_id)
            assert obj.count("Disease") == 1

    def test_unlinked_table_not_summarized(self, stack):
        stack.create_table("plain", ["v"])
        stack.insert("plain", ("x",))
        stack.add_annotation("whatever text", table="plain", row_id=1)
        assert stack.manager.current_object("C", "plain", 1) is None

    def test_stats_track_processing(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stats = stack.manager.stats
        assert stats.annotations_processed == 1
        assert stats.objects_updated >= 1


class TestDeletion:
    def test_delete_removes_effect(self, stack):
        annotation = stack.add_annotation("observed feeding on stonewort",
                                          table="birds", row_id=1)
        stack.delete_annotation(annotation.annotation_id)
        obj = stack.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 0

    def test_delete_reelects_cluster_representative(self, stack):
        stack.define_cluster("Cl", threshold=0.2)
        stack.link("Cl", "birds")
        first = stack.add_annotation("feeding on stonewort beds",
                                     table="birds", row_id=1)
        stack.add_annotation("feeding on stonewort beds today",
                             table="birds", row_id=1)
        obj = stack.manager.current_object("Cl", "birds", 1)
        representative = obj.groups[0].representative
        stack.delete_annotation(representative)
        obj = stack.manager.current_object("Cl", "birds", 1)
        assert obj.groups[0].representative is not None
        assert obj.groups[0].representative != representative

    def test_delete_then_add_round_trip(self, stack):
        annotation = stack.add_annotation("seen diving for insects",
                                          table="birds", row_id=1)
        stack.delete_annotation(annotation.annotation_id)
        stack.add_annotation("seen diving for insects",
                             table="birds", row_id=1)
        obj = stack.manager.current_object("C", "birds", 1)
        assert len(obj.annotation_ids()) == 1


class TestPersistenceModes:
    def test_write_through_persists_immediately(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        # Bypass the manager cache entirely.
        stored = stack.catalog.load_object("C", "birds", 1)
        assert stored is not None
        assert stored.count("Behavior") == 1

    def test_deferred_mode_persists_on_flush(self):
        notes = InsightNotes()
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        notes.define_classifier("C", ["a", "b"], [("one", "a"), ("two", "b")])
        notes.link("C", "t")
        notes.manager.write_through = False
        notes.add_annotation("one one", table="t", row_id=1)
        assert notes.catalog.load_object("C", "t", 1) is None
        written = notes.manager.flush()
        assert written == 1
        assert notes.catalog.load_object("C", "t", 1) is not None
        notes.close()

    def test_eviction_writes_dirty_objects(self):
        notes = InsightNotes()
        notes.create_table("t", ["v"])
        for i in range(5):
            notes.insert("t", (i,))
        notes.define_classifier("C", ["a", "b"], [("one", "a"), ("two", "b")])
        notes.link("C", "t")
        manager = SummaryManager(
            notes.db, notes.annotations, notes.catalog,
            write_through=False, object_cache_size=2,
        )
        for row_id in range(1, 6):
            annotation = notes.annotations.add(
                "one", [__import__("repro").CellRef("t", row_id, "v")]
            )
            manager.on_annotation_added(
                annotation, notes.annotations.cells_of(annotation.annotation_id)
            )
        manager.flush()
        for row_id in range(1, 6):
            assert notes.catalog.load_object("C", "t", row_id) is not None
        notes.close()

    def test_drop_caches_round_trips(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stack.manager.drop_caches()
        obj = stack.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 1

    def test_invalid_cache_size_rejected(self, stack):
        with pytest.raises(ValueError, match="object_cache_size"):
            SummaryManager(
                stack.db, stack.annotations, stack.catalog, object_cache_size=0
            )


class TestSummarizeTable:
    def test_bootstrap_existing_annotations(self, stack):
        stack.add_annotation("observed feeding on weeds",
                             table="birds", row_id=1)
        stack.define_classifier("Late", ["Behavior", "Disease"], TRAINING)
        stack.catalog.link("Late", "birds")
        summarized = stack.manager.summarize_table("Late", "birds")
        assert summarized == 1  # only row 1 has annotations
        obj = stack.manager.current_object("Late", "birds", 1)
        assert obj.count("Behavior") == 1

    def test_bootstrap_clears_stale_state(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stack.manager.summarize_table("C", "birds")
        obj = stack.manager.current_object("C", "birds", 1)
        assert len(obj.annotation_ids()) == 1  # not doubled

    def test_rows_without_annotations_have_no_object(self, stack):
        stack.manager.summarize_table("C", "birds")
        assert stack.catalog.load_object("C", "birds", 2) is None
