"""Tests for repro.maintenance.rebuild."""

import pytest

from repro import InsightNotes
from repro.maintenance.rebuild import RebuildMaintainer, rebuild_row, rebuild_table
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan", 3.2))
    notes.insert("birds", ("Goose", 2.4))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "birds")
    yield notes
    notes.close()


class TestRebuildRow:
    def test_rebuild_matches_incremental(self, stack):
        stack.add_annotation("observed feeding on stonewort",
                             table="birds", row_id=1)
        stack.add_annotation("shows symptoms of avian pox",
                             table="birds", row_id=1)
        incremental = stack.manager.current_object("C", "birds", 1)
        rebuilt = rebuild_row(
            stack.annotations, stack.catalog,
            stack.catalog.get_instance("C"), "birds", 1, persist=False,
        )
        assert rebuilt.counts() == incremental.counts()

    def test_rebuild_empty_row_deletes_state(self, stack):
        stack.catalog.save_object(
            "C", "birds", 2, stack.catalog.get_instance("C").new_object()
        )
        result = rebuild_row(
            stack.annotations, stack.catalog,
            stack.catalog.get_instance("C"), "birds", 2,
        )
        assert result is None
        assert stack.catalog.load_object("C", "birds", 2) is None

    def test_rebuild_persists_by_default(self, stack):
        stack.add_annotation("seen foraging", table="birds", row_id=1)
        stack.catalog.delete_object("C", "birds", 1)
        rebuild_row(
            stack.annotations, stack.catalog,
            stack.catalog.get_instance("C"), "birds", 1,
        )
        assert stack.catalog.load_object("C", "birds", 1) is not None


class TestRebuildTable:
    def test_rebuild_table_counts_annotated_rows(self, stack):
        stack.add_annotation("seen foraging", table="birds", row_id=1)
        rebuilt = rebuild_table(
            stack.db, stack.annotations, stack.catalog, "C", "birds"
        )
        assert rebuilt == 1


class TestRebuildMaintainer:
    def test_add_path_equivalent_to_incremental(self, stack):
        maintainer = RebuildMaintainer(stack.db, stack.annotations, stack.catalog)
        from repro.model.cell import CellRef

        annotation = stack.annotations.add(
            "observed feeding on weeds", [CellRef("birds", 1, "name")]
        )
        updated = maintainer.on_annotation_added(
            annotation, stack.annotations.cells_of(annotation.annotation_id)
        )
        assert updated == 1
        obj = stack.catalog.load_object("C", "birds", 1)
        assert obj.count("Behavior") == 1

    def test_flush_is_noop(self, stack):
        maintainer = RebuildMaintainer(stack.db, stack.annotations, stack.catalog)
        assert maintainer.flush() == 0
