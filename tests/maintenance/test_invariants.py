"""Tests for repro.maintenance.invariants (summarize-once)."""

import pytest

from repro.maintenance.invariants import ContributionCache
from repro.model.annotation import Annotation
from repro.summaries.classifier import ClassifierInstance
from repro.summaries.cluster import ClusterInstance


class CountingClassifier(ClassifierInstance):
    """Classifier instance that counts analyze() invocations."""

    def __init__(self):
        super().__init__("Counting", ["a", "b"])
        self.train([("alpha words", "a"), ("beta words", "b")])
        self.analyze_calls = 0

    def analyze(self, annotation):
        self.analyze_calls += 1
        return super().analyze(annotation)


class TestContributionCache:
    def test_invariant_instance_analyzed_once(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        annotation = Annotation(annotation_id=1, text="alpha words here")
        first = cache.analyze(instance, annotation)
        second = cache.analyze(instance, annotation)
        assert first == second == "a"
        assert instance.analyze_calls == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_non_invariant_instance_bypasses(self):
        cache = ContributionCache()
        instance = ClusterInstance("Cl", threshold=0.4)
        annotation = Annotation(annotation_id=1, text="hello world")
        cache.analyze(instance, annotation)
        cache.analyze(instance, annotation)
        assert cache.stats.bypasses == 2
        assert len(cache) == 0

    def test_distinct_annotations_cached_separately(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        cache.analyze(instance, Annotation(annotation_id=1, text="alpha"))
        cache.analyze(instance, Annotation(annotation_id=2, text="beta"))
        assert instance.analyze_calls == 2
        assert len(cache) == 2

    def test_invalidate_annotation(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        annotation = Annotation(annotation_id=1, text="alpha")
        cache.analyze(instance, annotation)
        cache.invalidate(1)
        cache.analyze(instance, annotation)
        assert instance.analyze_calls == 2

    def test_invalidate_instance(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        annotation = Annotation(annotation_id=1, text="alpha")
        cache.analyze(instance, annotation)
        cache.invalidate_instance("Counting")
        cache.analyze(instance, annotation)
        assert instance.analyze_calls == 2

    def test_clear_keeps_stats(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        cache.analyze(instance, Annotation(annotation_id=1, text="alpha"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_eviction_bounds_memory(self):
        cache = ContributionCache(max_entries=4)
        instance = CountingClassifier()
        for i in range(1, 10):
            cache.analyze(instance, Annotation(annotation_id=i, text="alpha"))
        assert len(cache) <= 4

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            ContributionCache(max_entries=0)

    def test_hit_ratio(self):
        cache = ContributionCache()
        instance = CountingClassifier()
        annotation = Annotation(annotation_id=1, text="alpha")
        cache.analyze(instance, annotation)
        cache.analyze(instance, annotation)
        cache.analyze(instance, annotation)
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)
        assert cache.stats.analyze_calls == 1
