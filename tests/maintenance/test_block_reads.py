"""Tests for SummaryManager's block read interface and cache bounds."""

import pytest

from repro.maintenance.incremental import SummaryManager
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database


@pytest.fixture
def stack():
    db = Database()
    db.create_table("birds", ["name", "weight"])
    store = AnnotationStore(db)
    catalog = SummaryCatalog(db)
    yield db, store, catalog
    db.close()


def make_manager(stack, **kwargs):
    db, store, catalog = stack
    return SummaryManager(db, store, catalog, **kwargs)


def summarize_rows(stack, manager, rows=4):
    """Link a classifier and annotate ``rows`` base rows."""
    db, store, catalog = stack
    catalog.define_instance("Classifier", "C1", {"labels": ["a", "b"]})
    instance = catalog.get_instance("C1")
    instance.train([("alpha apple", "a"), ("beta berry", "b")])
    catalog.link("C1", "birds")
    for i in range(rows):
        row = db.insert("birds", (f"b{i}", float(i)))
        annotation = store.add(
            f"alpha apple note {i}", [CellRef("birds", row, "name")]
        )
        manager.on_annotation_added(
            annotation, [CellRef("birds", row, "name")]
        )
    return instance


class TestObjectsForRows:
    def test_matches_per_row_current_object(self, stack):
        manager = make_manager(stack)
        summarize_rows(stack, manager)
        bulk = manager.objects_for_rows(["C1"], "birds", [1, 2, 3, 4])
        for row_id in (1, 2, 3, 4):
            single = manager.current_object("C1", "birds", row_id)
            assert bulk[("C1", row_id)].to_json() == single.to_json()

    def test_write_cache_wins_over_catalog(self, stack):
        # Deferred-write mode: the catalog on disk is stale; the block
        # read must still surface the manager's in-memory object.
        manager = make_manager(stack, write_through=False)
        summarize_rows(stack, manager, rows=2)
        _db, store, _catalog = stack
        extra = store.add("alpha apple extra", [CellRef("birds", 1, "name")])
        manager.on_annotation_added(extra, [CellRef("birds", 1, "name")])
        bulk = manager.objects_for_rows(["C1"], "birds", [1])
        assert extra.annotation_id in bulk[("C1", 1)].annotation_ids()

    def test_unsummarized_rows_absent(self, stack):
        db, _store, _catalog = stack
        manager = make_manager(stack)
        summarize_rows(stack, manager, rows=1)
        bare = db.insert("birds", ("bare", 0.0))
        bulk = manager.objects_for_rows(["C1"], "birds", [1, bare])
        assert ("C1", bare) not in bulk
        assert ("C1", 1) in bulk


class TestAttachmentsCache:
    def test_bulk_matches_per_row(self, stack):
        manager = make_manager(stack)
        summarize_rows(stack, manager, rows=3)
        bulk = manager.attachments_for_rows("birds", [1, 2, 3, 9])
        for row_id in (1, 2, 3, 9):
            assert bulk[row_id] == manager.attachments_for_row("birds", row_id)

    def test_eviction_uses_own_bound_not_object_cache_size(self, stack):
        # Regression: eviction previously reused _object_cache_size, so a
        # small object cache silently shrank the attachments cache too.
        manager = make_manager(
            stack, object_cache_size=1, attachments_cache_size=64
        )
        summarize_rows(stack, manager, rows=5)
        manager.attachments_for_rows("birds", [1, 2, 3, 4, 5])
        assert len(manager._attachments) == 5

    def test_attachments_bound_enforced(self, stack):
        manager = make_manager(
            stack, object_cache_size=64, attachments_cache_size=2
        )
        summarize_rows(stack, manager, rows=5)
        manager.attachments_for_rows("birds", [1, 2, 3, 4, 5])
        assert len(manager._attachments) == 2

    def test_invalid_bound_rejected(self, stack):
        with pytest.raises(ValueError):
            make_manager(stack, attachments_cache_size=0)

    def test_write_path_invalidates_bulk_cached_rows(self, stack):
        manager = make_manager(stack)
        summarize_rows(stack, manager, rows=2)
        manager.attachments_for_rows("birds", [1, 2])
        _db, store, _catalog = stack
        extra = store.add("beta berry fresh", [CellRef("birds", 1, "weight")])
        manager.on_annotation_added(extra, [CellRef("birds", 1, "weight")])
        fresh = manager.attachments_for_rows("birds", [1])
        assert extra.annotation_id in fresh[1]
