"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import InsightNotes
from repro.workloads import WorkloadConfig, build_workload

#: Training set used by classifier fixtures — two well-separated labels.
TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("spotted diving for small insects at dusk", "Behavior"),
    ("watched chasing grass shoots in the morning", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
    ("tested positive for botulism in the flock", "Disease"),
    ("displays lesions consistent with a fungal infection", "Disease"),
]


@pytest.fixture
def session() -> InsightNotes:
    """A fresh in-memory session, closed after the test."""
    notes = InsightNotes()
    yield notes
    notes.close()


@pytest.fixture
def birds_session(session: InsightNotes) -> InsightNotes:
    """A session with a populated, summarized ``birds`` table.

    Three birds; a trained Behavior/Disease classifier and a cluster
    instance linked; a handful of annotations on row 1.
    """
    session.create_table("birds", ["name", "species", "weight"])
    session.insert("birds", ("Swan Goose", "Anser cygnoides", 3.2))
    session.insert("birds", ("Mute Swan", "Cygnus olor", 10.5))
    session.insert("birds", ("Snow Goose", "Anser caerulescens", 2.6))
    session.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    session.link("BirdClass", "birds")
    session.define_cluster("BirdCluster", threshold=0.3)
    session.link("BirdCluster", "birds")
    session.add_annotation("observed feeding on stonewort at dawn",
                           table="birds", row_id=1)
    session.add_annotation("seen feeding on stonewort beds today",
                           table="birds", row_id=1)
    session.add_annotation("shows symptoms of avian influenza",
                           table="birds", row_id=1, columns=["weight"])
    return session


@pytest.fixture(scope="module")
def small_workload():
    """A small generated workload, shared per test module (read-only)."""
    workload = build_workload(
        WorkloadConfig(
            num_birds=6,
            num_sightings=12,
            annotations_per_row=8,
            document_fraction=0.05,
            seed=3,
        )
    )
    yield workload
    workload.session.close()
