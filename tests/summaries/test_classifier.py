"""Tests for repro.summaries.classifier."""

import pytest

from repro.model.annotation import Annotation
from repro.summaries.base import InstanceProperties
from repro.summaries.classifier import (
    ClassifierInstance,
    ClassifierSummary,
    ClassifierType,
)

LABELS = ["Behavior", "Disease", "Anatomy", "Other"]


def make_summary(**members) -> ClassifierSummary:
    summary = ClassifierSummary("C1", LABELS)
    for label, ids in members.items():
        for annotation_id in ids:
            summary.add(annotation_id, label)
    return summary


class TestClassifierSummary:
    def test_counts_in_label_order(self):
        summary = make_summary(Behavior=[1, 2], Disease=[3])
        assert summary.counts() == [
            ("Behavior", 2), ("Disease", 1), ("Anatomy", 0), ("Other", 0),
        ]

    def test_add_unknown_label_rejected(self):
        summary = make_summary()
        with pytest.raises(ValueError, match="not in instance labels"):
            summary.add(1, "Nope")

    def test_add_same_label_idempotent(self):
        summary = make_summary()
        summary.add(1, "Behavior")
        summary.add(1, "Behavior")
        assert summary.count("Behavior") == 1

    def test_add_conflicting_label_rejected(self):
        summary = make_summary(Behavior=[1])
        with pytest.raises(ValueError, match="already classified"):
            summary.add(1, "Disease")

    def test_label_of(self):
        summary = make_summary(Disease=[7])
        assert summary.label_of(7) == "Disease"
        assert summary.label_of(8) is None

    def test_remove_annotations(self):
        summary = make_summary(Behavior=[1, 2], Disease=[3])
        summary.remove_annotations({2, 3, 99})
        assert summary.counts()[:2] == [("Behavior", 1), ("Disease", 0)]

    def test_is_empty(self):
        assert make_summary().is_empty()
        assert not make_summary(Other=[1]).is_empty()

    def test_copy_independent(self):
        summary = make_summary(Behavior=[1])
        clone = summary.copy()
        clone.add(2, "Disease")
        assert summary.count("Disease") == 0

    def test_merge_unions(self):
        left = make_summary(Behavior=[1, 2])
        right = make_summary(Behavior=[3], Disease=[4])
        merged = left.merge(right)
        assert merged.count("Behavior") == 3
        assert merged.count("Disease") == 1

    def test_merge_does_not_double_count(self):
        # The same annotation attached to both join inputs (Figure 2).
        left = make_summary(Behavior=[1, 2])
        right = make_summary(Behavior=[2, 3])
        merged = left.merge(right)
        assert merged.count("Behavior") == 3

    def test_merge_leaves_inputs_unchanged(self):
        left = make_summary(Behavior=[1])
        right = make_summary(Disease=[2])
        left.merge(right)
        assert left.count("Disease") == 0
        assert right.count("Behavior") == 0

    def test_merge_type_mismatch(self):
        from repro.summaries.snippet import SnippetSummary

        with pytest.raises(TypeError):
            make_summary().merge(SnippetSummary("S"))

    def test_merge_label_mismatch(self):
        other = ClassifierSummary("C2", ["x", "y"])
        with pytest.raises(ValueError, match="different label sets"):
            make_summary().merge(other)

    def test_zoom_components_one_per_label(self):
        summary = make_summary(Behavior=[2, 1], Disease=[3])
        components = summary.zoom_components()
        assert [c.label for c in components] == LABELS
        assert components[0].index == 1
        assert components[0].annotation_ids == (1, 2)
        assert components[1].count == 1

    def test_json_round_trip(self):
        summary = make_summary(Behavior=[1], Anatomy=[5, 6])
        reloaded = ClassifierSummary.from_json(summary.to_json())
        assert reloaded.counts() == summary.counts()
        assert reloaded.instance_name == summary.instance_name
        assert reloaded.members("Anatomy") == frozenset({5, 6})

    def test_render_matches_figure1_shape(self):
        summary = make_summary(Behavior=[1, 2])
        assert summary.render() == (
            "C1 [(Behavior, 2), (Disease, 0), (Anatomy, 0), (Other, 0)]"
        )

    def test_size_estimate_grows_with_members(self):
        small = make_summary(Behavior=[1])
        large = make_summary(Behavior=list(range(1, 51)))
        assert large.size_estimate() > small.size_estimate()


class TestClassifierInstance:
    def test_analyze_and_add(self):
        instance = ClassifierInstance("C1", ["pos", "neg"])
        instance.train([("good great", "pos"), ("bad awful", "neg")])
        annotation = Annotation(annotation_id=1, text="good great stuff")
        label = instance.analyze(annotation)
        assert label == "pos"
        obj = instance.new_object()
        instance.add_to(obj, annotation, label)
        assert obj.count("pos") == 1

    def test_default_properties_summarize_once(self):
        instance = ClassifierInstance("C1", ["a"])
        assert instance.properties.summarize_once

    def test_model_label_mismatch_rejected(self):
        from repro.summaries.naive_bayes import NaiveBayesClassifier

        model = NaiveBayesClassifier(["x", "y"])
        with pytest.raises(ValueError, match="do not match"):
            ClassifierInstance("C1", ["a", "b"], model=model)

    def test_config_round_trip_through_type(self):
        instance = ClassifierInstance("C1", ["pos", "neg"])
        instance.train([("good", "pos"), ("bad", "neg")])
        rebuilt = ClassifierType().create_instance("C1", instance.config())
        assert rebuilt.labels == instance.labels
        assert rebuilt.model.predict("good") == "pos"

    def test_custom_properties_respected(self):
        properties = InstanceProperties(
            annotation_invariant=True, data_invariant=False
        )
        instance = ClassifierInstance("C1", ["a"], properties=properties)
        assert not instance.properties.summarize_once
        config = instance.config()
        rebuilt = ClassifierType().create_instance("C1", config)
        assert not rebuilt.properties.data_invariant
