"""Tests for repro.summaries.snippet."""

import pytest

from repro.model.annotation import Annotation, AnnotationKind
from repro.summaries.snippet import (
    SnippetEntry,
    SnippetInstance,
    SnippetSummary,
    SnippetType,
    frequency_snippet,
    lexrank_snippet,
)
from repro.text.tokenize import Tokenizer

ARTICLE = (
    "Wetland birds depend on stable water levels. Water levels shape food "
    "availability for wetland birds. The survey covered twelve wetland "
    "sites over two seasons. Observers logged feeding behaviour at every "
    "site. Rainfall varied sharply between the seasons. Wetland birds "
    "responded to water level changes quickly."
)


class TestExtractors:
    def test_frequency_respects_max_sentences(self):
        tokenizer = Tokenizer()
        snippet = frequency_snippet(ARTICLE, 2, tokenizer)
        assert len(snippet) == 2

    def test_frequency_keeps_document_order(self):
        tokenizer = Tokenizer()
        snippet = frequency_snippet(ARTICLE, 3, tokenizer)
        positions = [ARTICLE.index(sentence) for sentence in snippet]
        assert positions == sorted(positions)

    def test_frequency_short_document_verbatim(self):
        text = "Only one sentence here."
        assert frequency_snippet(text, 2, Tokenizer()) == [text]

    def test_frequency_empty_document(self):
        assert frequency_snippet("", 2, Tokenizer()) == []

    def test_frequency_picks_central_sentences(self):
        snippet = frequency_snippet(ARTICLE, 1, Tokenizer())
        # The highest-frequency terms are wetland/water/birds/levels.
        assert any(word in snippet[0].lower() for word in ("wetland", "water"))

    def test_lexrank_respects_max_sentences(self):
        snippet = lexrank_snippet(ARTICLE, 2, Tokenizer())
        assert len(snippet) == 2

    def test_lexrank_keeps_document_order(self):
        snippet = lexrank_snippet(ARTICLE, 3, Tokenizer())
        positions = [ARTICLE.index(sentence) for sentence in snippet]
        assert positions == sorted(positions)

    def test_lexrank_short_document_verbatim(self):
        text = "Short text."
        assert lexrank_snippet(text, 3, Tokenizer()) == [text]


class TestSnippetSummary:
    def _entry(self, annotation_id, title="T"):
        return SnippetEntry(annotation_id, title, ("sentence one.",))

    def test_add_and_previews(self):
        summary = SnippetSummary("TS")
        summary.add_entry(self._entry(1, "Article A"))
        summary.add_entry(self._entry(2, "Article B"))
        assert summary.previews() == ["Article A", "Article B"]

    def test_add_entry_dedups_by_id(self):
        summary = SnippetSummary("TS")
        summary.add_entry(self._entry(1))
        summary.add_entry(self._entry(1, "Different"))
        assert len(summary.entries) == 1

    def test_preview_falls_back_to_first_sentence(self):
        entry = SnippetEntry(1, "", ("The opening line.", "Another."))
        assert entry.preview() == "The opening line."

    def test_preview_empty_document(self):
        entry = SnippetEntry(1, "", ())
        assert entry.preview() == "(empty document)"

    def test_remove_annotations(self):
        summary = SnippetSummary("TS")
        summary.add_entry(self._entry(1))
        summary.add_entry(self._entry(2))
        summary.remove_annotations({1})
        assert summary.annotation_ids() == frozenset({2})

    def test_merge_dedups(self):
        left = SnippetSummary("TS")
        left.add_entry(self._entry(1))
        right = SnippetSummary("TS")
        right.add_entry(self._entry(1))
        right.add_entry(self._entry(2))
        merged = left.merge(right)
        assert merged.annotation_ids() == frozenset({1, 2})

    def test_merge_type_mismatch(self):
        from repro.summaries.classifier import ClassifierSummary

        with pytest.raises(TypeError):
            SnippetSummary("TS").merge(ClassifierSummary("C", ["a"]))

    def test_zoom_components(self):
        summary = SnippetSummary("TS")
        summary.add_entry(self._entry(4, "Article"))
        components = summary.zoom_components()
        assert components[0].index == 1
        assert components[0].annotation_ids == (4,)
        assert components[0].label == "Article"

    def test_json_round_trip(self):
        summary = SnippetSummary("TS")
        summary.add_entry(SnippetEntry(1, "T", ("a.", "b.")))
        reloaded = SnippetSummary.from_json(summary.to_json())
        assert reloaded.entries == summary.entries

    def test_render(self):
        summary = SnippetSummary("TS")
        summary.add_entry(self._entry(1, "Experiment E"))
        assert summary.render() == "TS ['Experiment E']"


class TestSnippetInstance:
    def _document(self, annotation_id=1, text=ARTICLE, title="Article"):
        return Annotation(
            annotation_id=annotation_id,
            text=text,
            kind=AnnotationKind.DOCUMENT,
            title=title,
        )

    def test_analyze_document(self):
        instance = SnippetInstance("TS", max_sentences=2)
        entry = instance.analyze(self._document())
        assert entry is not None
        assert len(entry.sentences) == 2
        assert entry.title == "Article"

    def test_documents_only_skips_comments(self):
        instance = SnippetInstance("TS")
        comment = Annotation(annotation_id=1, text="plain comment")
        assert instance.analyze(comment) is None
        obj = instance.new_object()
        instance.add_to(obj, comment, None)
        assert obj.is_empty()

    def test_documents_only_can_be_disabled(self):
        instance = SnippetInstance("TS", documents_only=False)
        comment = Annotation(annotation_id=1, text="plain comment text")
        entry = instance.analyze(comment)
        assert entry is not None

    def test_lexrank_method(self):
        instance = SnippetInstance("TS", method="lexrank", max_sentences=1)
        entry = instance.analyze(self._document())
        assert entry is not None
        assert len(entry.sentences) == 1

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError, match="unknown snippet method"):
            SnippetInstance("TS", method="magic")

    def test_invalid_max_sentences_rejected(self):
        with pytest.raises(ValueError, match="max_sentences"):
            SnippetInstance("TS", max_sentences=0)

    def test_config_round_trip(self):
        instance = SnippetInstance(
            "TS", method="lexrank", max_sentences=3, documents_only=False
        )
        rebuilt = SnippetType().create_instance("TS", instance.config())
        assert rebuilt.method == "lexrank"
        assert rebuilt.max_sentences == 3
        assert not rebuilt.documents_only
        assert rebuilt.properties.summarize_once
