"""Copy-on-write semantics of summary objects.

``for_query()`` hands query plans a cheap alias of the stored object for
the opted-in built-in types; the first mutation on either side must
un-share so neither observes the other's changes.
"""

import pytest

from repro.summaries.base import SummaryObject
from repro.summaries.classifier import ClassifierSummary
from repro.summaries.snippet import SnippetEntry, SnippetSummary
from repro.summaries.terms import TermsSummary
from repro.summaries.timeline import TimelineSummary


def classifier():
    obj = ClassifierSummary("C", ["a", "b"])
    obj.add(1, "a")
    obj.add(2, "b")
    return obj


class TestShareSemantics:
    def test_for_query_is_cheap_alias_for_cow_types(self):
        obj = classifier()
        view = obj.for_query()
        assert view is not obj
        assert view._members is obj._members  # shared payload

    def test_mutating_view_leaves_original_intact(self):
        obj = classifier()
        view = obj.for_query()
        view.remove_annotations({1})
        assert obj.annotation_ids() == frozenset({1, 2})
        assert view.annotation_ids() == frozenset({2})

    def test_mutating_original_leaves_view_intact(self):
        obj = classifier()
        view = obj.for_query()
        obj.add(3, "a")
        assert 3 not in view.annotation_ids()
        assert 3 in obj.annotation_ids()

    def test_two_views_are_independent(self):
        obj = classifier()
        first = obj.for_query()
        second = obj.for_query()
        first.remove_annotations({1})
        assert second.annotation_ids() == frozenset({1, 2})

    def test_non_cow_subclass_still_deep_copies(self):
        class Custom(ClassifierSummary):
            copy_on_write = False

        obj = Custom("C", ["a"])
        obj.add(1, "a")
        view = obj.for_query()
        assert view._members is not obj._members

    def test_default_base_class_is_not_cow(self):
        assert SummaryObject.copy_on_write is False


class TestPerTypeIsolation:
    def test_snippet(self):
        obj = SnippetSummary("S")
        obj.add_entry(SnippetEntry(1, "one", ("first.",)))
        view = obj.for_query()
        view.remove_annotations({1})
        obj.add_entry(SnippetEntry(2, "two", ("second.",)))
        assert obj.annotation_ids() == frozenset({1, 2})
        assert view.annotation_ids() == frozenset()

    def test_timeline(self):
        obj = TimelineSummary("T", bucket_seconds=3600)
        obj.add(1, 10)
        view = obj.for_query()
        view.remove_annotations({1})
        assert obj.annotation_ids() == frozenset({1})
        assert view.annotation_ids() == frozenset()

    def test_terms(self):
        obj = TermsSummary("W")
        obj.add(1, {"alpha", "beta"})
        view = obj.for_query()
        view.remove_annotations({1})
        assert obj.term_count("alpha") == 1
        assert view.term_count("alpha") == 0

    def test_cluster_view_mutation_isolated(self):
        from repro.summaries.cluster import ClusterInstance

        instance = ClusterInstance("K", threshold=0.3)
        obj = instance.new_object()
        from repro.model.annotation import Annotation, AnnotationKind

        for annotation_id, text in ((1, "alpha apple pie"),
                                    (2, "alpha apple tart")):
            annotation = Annotation(
                annotation_id=annotation_id, text=text, author="t",
                kind=AnnotationKind.COMMENT, created_at=0.0,
            )
            instance.add_to(obj, annotation, instance.analyze(annotation))
        view = obj.for_query()
        view.remove_annotations({1})
        assert 1 in obj.annotation_ids()
        assert 1 not in view.annotation_ids()

    def test_cluster_query_view_invalidated_by_mutation(self):
        from repro.summaries.cluster import ClusterInstance
        from repro.model.annotation import Annotation, AnnotationKind

        instance = ClusterInstance("K", threshold=0.3)
        obj = instance.new_object()
        first = Annotation(
            annotation_id=1, text="alpha apple pie", author="t",
            kind=AnnotationKind.COMMENT, created_at=0.0,
        )
        instance.add_to(obj, first, instance.analyze(first))
        view_before = obj.for_query()
        second = Annotation(
            annotation_id=2, text="unrelated zebra crossing", author="t",
            kind=AnnotationKind.COMMENT, created_at=0.0,
        )
        instance.add_to(obj, second, instance.analyze(second))
        view_after = obj.for_query()
        assert 2 in view_after.annotation_ids()
        assert 2 not in view_before.annotation_ids()
