"""Tests for repro.summaries.terms (extension type)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.annotation import Annotation
from repro.summaries.terms import TermsInstance, TermsSummary, TermsType


def make_summary(**terms) -> TermsSummary:
    summary = TermsSummary("T", top_k=3)
    for term, ids in terms.items():
        for annotation_id in ids:
            summary.add(annotation_id, {term})
    return summary


class TestTermsSummary:
    def test_top_terms_ranked_by_count_then_name(self):
        summary = make_summary(zebra=[1, 2], alpha=[3, 4], mid=[5])
        assert summary.top_terms() == [("alpha", 2), ("zebra", 2), ("mid", 1)]

    def test_top_k_caps_output(self):
        summary = make_summary(a=[1], b=[2], c=[3], d=[4])
        assert len(summary.top_terms()) == 3
        assert len(summary.top_terms(k=2)) == 2

    def test_term_count(self):
        summary = make_summary(wing=[1, 2, 3])
        assert summary.term_count("wing") == 3
        assert summary.term_count("missing") == 0

    def test_annotation_ids_union(self):
        summary = make_summary(a=[1, 2], b=[2, 3])
        assert summary.annotation_ids() == frozenset({1, 2, 3})

    def test_remove_annotations_drops_empty_terms(self):
        summary = make_summary(a=[1], b=[1, 2])
        summary.remove_annotations({1})
        assert summary.term_count("a") == 0
        assert summary.term_count("b") == 1

    def test_merge_dedups_by_id(self):
        left = make_summary(wing=[1, 2])
        right = make_summary(wing=[2, 3], beak=[4])
        merged = left.merge(right)
        assert merged.term_count("wing") == 3
        assert merged.term_count("beak") == 1

    def test_merge_type_mismatch(self):
        from repro.summaries.snippet import SnippetSummary

        with pytest.raises(TypeError):
            make_summary().merge(SnippetSummary("S"))

    def test_zoom_components_follow_top_terms(self):
        summary = make_summary(wing=[2, 1], beak=[3])
        components = summary.zoom_components()
        assert components[0].label == "wing"
        assert components[0].annotation_ids == (1, 2)
        assert components[1].label == "beak"

    def test_json_round_trip(self):
        summary = make_summary(wing=[1, 2], beak=[3])
        reloaded = TermsSummary.from_json(summary.to_json())
        assert reloaded.top_terms() == summary.top_terms()
        assert reloaded.top_k == summary.top_k

    def test_render(self):
        summary = make_summary(wing=[1, 2])
        assert summary.render() == "T [(wing, 2)]"

    @given(st.dictionaries(st.integers(1, 20),
                           st.sets(st.sampled_from("abcde"), min_size=1),
                           max_size=12),
           st.sets(st.integers(1, 20), max_size=8))
    def test_remove_is_subtraction(self, assignments, removed):
        summary = TermsSummary("T")
        for annotation_id, terms in assignments.items():
            summary.add(annotation_id, terms)
        before = summary.annotation_ids()
        summary.remove_annotations(removed)
        assert summary.annotation_ids() == before - removed


class TestTermsInstance:
    def test_analyze_returns_distinct_terms(self):
        instance = TermsInstance("T")
        annotation = Annotation(annotation_id=1,
                                text="feeding feeding on stonewort")
        contribution = instance.analyze(annotation)
        assert contribution == frozenset({"feed", "stonewort"})

    def test_add_to(self):
        instance = TermsInstance("T")
        obj = instance.new_object()
        annotation = Annotation(annotation_id=1, text="observed stonewort")
        instance.add_to(obj, annotation, instance.analyze(annotation))
        assert obj.term_count("stonewort") == 1

    def test_summarize_once_by_default(self):
        assert TermsInstance("T").properties.summarize_once

    def test_top_k_validation(self):
        with pytest.raises(ValueError, match="top_k"):
            TermsInstance("T", top_k=0)

    def test_config_round_trip(self):
        instance = TermsInstance("T", top_k=5)
        rebuilt = TermsType().create_instance("T", instance.config())
        assert rebuilt.top_k == 5
