"""Tests for repro.summaries.timeline (extension type)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.annotation import Annotation
from repro.summaries.timeline import (
    TimelineInstance,
    TimelineSummary,
    TimelineType,
    bucket_label,
)

HOUR = 3600
DAY = 24 * HOUR


def make_summary(**buckets) -> TimelineSummary:
    summary = TimelineSummary("TL", bucket_seconds=HOUR)
    for bucket, ids in buckets.items():
        for annotation_id in ids:
            summary.add(annotation_id, int(bucket.lstrip("b")))
    return summary


class TestBucketLabel:
    def test_daily_buckets_render_dates(self):
        assert bucket_label(0, DAY) == "1970-01-01"
        assert bucket_label(365, DAY) == "1971-01-01"

    def test_subdaily_buckets_render_times(self):
        assert bucket_label(1, HOUR) == "1970-01-01 01:00"


class TestTimelineSummary:
    def test_histogram_chronological(self):
        summary = make_summary(b5=[1], b2=[2, 3])
        assert summary.histogram() == [(2, 2), (5, 1)]

    def test_busiest_bucket(self):
        summary = make_summary(b1=[1], b2=[2, 3])
        assert summary.busiest_bucket() == 2

    def test_busiest_bucket_tie_prefers_earliest(self):
        summary = make_summary(b3=[1], b1=[2])
        assert summary.busiest_bucket() == 1

    def test_busiest_bucket_empty(self):
        assert TimelineSummary("TL").busiest_bucket() is None

    def test_remove_annotations_drops_empty_buckets(self):
        summary = make_summary(b1=[1], b2=[2])
        summary.remove_annotations({1})
        assert summary.histogram() == [(2, 1)]

    def test_merge_dedups(self):
        left = make_summary(b1=[1, 2])
        right = make_summary(b1=[2, 3], b2=[4])
        merged = left.merge(right)
        assert merged.histogram() == [(1, 3), (2, 1)]

    def test_merge_bucket_width_mismatch(self):
        left = TimelineSummary("TL", bucket_seconds=HOUR)
        right = TimelineSummary("TL", bucket_seconds=DAY)
        with pytest.raises(ValueError, match="bucket widths"):
            left.merge(right)

    def test_merge_type_mismatch(self):
        from repro.summaries.classifier import ClassifierSummary

        with pytest.raises(TypeError):
            TimelineSummary("TL").merge(ClassifierSummary("C", ["a"]))

    def test_zoom_components_chronological(self):
        summary = make_summary(b2=[5, 4], b1=[1])
        components = summary.zoom_components()
        assert [c.index for c in components] == [1, 2]
        assert components[1].annotation_ids == (4, 5)

    def test_json_round_trip(self):
        summary = make_summary(b1=[1], b9=[2, 3])
        reloaded = TimelineSummary.from_json(summary.to_json())
        assert reloaded.histogram() == summary.histogram()
        assert reloaded.bucket_seconds == summary.bucket_seconds

    @given(st.dictionaries(st.integers(1, 30), st.integers(0, 5), max_size=12),
           st.sets(st.integers(1, 30), max_size=10))
    def test_remove_is_subtraction(self, assignments, removed):
        summary = TimelineSummary("TL")
        for annotation_id, bucket in assignments.items():
            summary.add(annotation_id, bucket)
        before = summary.annotation_ids()
        summary.remove_annotations(removed)
        assert summary.annotation_ids() == before - removed


class TestTimelineInstance:
    def test_analyze_buckets_by_created_at(self):
        instance = TimelineInstance("TL", bucket_seconds=HOUR)
        annotation = Annotation(annotation_id=1, text="x", created_at=7250.0)
        assert instance.analyze(annotation) == 2

    def test_add_to(self):
        instance = TimelineInstance("TL", bucket_seconds=HOUR)
        obj = instance.new_object()
        annotation = Annotation(annotation_id=1, text="x", created_at=100.0)
        instance.add_to(obj, annotation, instance.analyze(annotation))
        assert obj.histogram() == [(0, 1)]

    def test_bucket_seconds_validation(self):
        with pytest.raises(ValueError, match="bucket_seconds"):
            TimelineInstance("TL", bucket_seconds=0)

    def test_config_round_trip(self):
        instance = TimelineInstance("TL", bucket_seconds=DAY)
        rebuilt = TimelineType().create_instance("TL", instance.config())
        assert rebuilt.bucket_seconds == DAY
        assert rebuilt.properties.summarize_once


class TestEndToEnd:
    def test_extended_registry_session(self):
        from repro import InsightNotes
        from repro.summaries import extended_registry

        notes = InsightNotes(registry=extended_registry())
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        notes.define_instance("Timeline", "Activity", {"bucket_seconds": HOUR})
        notes.define_instance("Terms", "Hot", {"top_k": 2})
        notes.link("Activity", "t")
        notes.link("Hot", "t")
        notes.add_annotation("stonewort feeding", table="t", row_id=1,
                             created_at=0.0)
        notes.add_annotation("stonewort again", table="t", row_id=1,
                             created_at=2 * HOUR)
        result = notes.query("SELECT v FROM t")
        timeline = result.tuples[0].summaries["Activity"]
        terms = result.tuples[0].summaries["Hot"]
        assert timeline.histogram() == [(0, 1), (2, 1)]
        assert terms.top_terms()[0] == ("stonewort", 2)
        zoom = notes.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON Activity INDEX 2"
        )
        assert zoom.matches[0].annotations[0].text == "stonewort again"
        notes.close()
