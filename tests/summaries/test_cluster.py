"""Tests for repro.summaries.cluster."""

import pytest

from repro.errors import MaintenanceError
from repro.model.annotation import Annotation
from repro.summaries.cluster import (
    ClusterGroup,
    ClusterInstance,
    ClusterSummary,
    ClusterType,
    make_preview,
)


def make_instance(threshold: float = 0.4) -> ClusterInstance:
    return ClusterInstance("SimCluster", threshold=threshold)


def add_texts(instance: ClusterInstance, obj: ClusterSummary, texts, start_id=1):
    for offset, text in enumerate(texts):
        annotation = Annotation(annotation_id=start_id + offset, text=text)
        instance.add_to(obj, annotation, instance.analyze(annotation))


class TestMakePreview:
    def test_short_text_unchanged(self):
        assert make_preview("two words") == "two words"

    def test_long_text_truncated(self):
        text = " ".join(str(i) for i in range(30))
        preview = make_preview(text, max_words=5)
        assert preview == "0 1 2 3 4 ..."


class TestAssignment:
    def test_similar_texts_group_together(self):
        instance = make_instance(threshold=0.3)
        obj = instance.new_object()
        add_texts(instance, obj, [
            "observed feeding on stonewort beds",
            "seen feeding on stonewort today",
            "wing shows lesions from infection",
        ])
        assert sorted(obj.group_sizes(), reverse=True) == [2, 1]

    def test_dissimilar_texts_start_new_groups(self):
        instance = make_instance(threshold=0.9)
        obj = instance.new_object()
        add_texts(instance, obj, [
            "completely different alpha words",
            "unrelated beta vocabulary here",
        ])
        assert obj.group_sizes() == [1, 1]

    def test_identical_texts_always_cluster(self):
        instance = make_instance(threshold=0.99)
        obj = instance.new_object()
        add_texts(instance, obj, ["same exact sentence"] * 4)
        assert obj.group_sizes() == [4]

    def test_empty_text_forms_singleton(self):
        instance = make_instance(threshold=0.1)
        obj = instance.new_object()
        add_texts(instance, obj, ["", "normal annotation text"])
        assert len(obj.groups) == 2

    def test_add_is_idempotent_by_id(self):
        instance = make_instance()
        obj = instance.new_object()
        annotation = Annotation(annotation_id=1, text="hello world")
        vector = instance.analyze(annotation)
        instance.add_to(obj, annotation, vector)
        instance.add_to(obj, annotation, vector)
        assert obj.group_sizes() == [1]

    def test_add_to_query_stripped_object_raises(self):
        instance = make_instance()
        obj = instance.new_object()
        add_texts(instance, obj, ["first annotation"])
        stripped = obj.for_query()
        annotation = Annotation(annotation_id=9, text="another one")
        with pytest.raises(MaintenanceError):
            instance.add_to(stripped, annotation, instance.analyze(annotation))

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            ClusterInstance("X", threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            ClusterInstance("X", threshold=1.5)


class TestRepresentatives:
    def test_representative_is_ranked_best(self):
        instance = make_instance(threshold=0.2)
        obj = instance.new_object()
        add_texts(instance, obj, [
            "feeding on stonewort",
            "feeding on stonewort beds today",
            "feeding on stonewort beds",
        ])
        group = obj.groups[0]
        assert group.representative == group.ranking[0]

    def test_representative_reelected_after_removal(self):
        # Figure 2: when a cluster's representative is dropped, another is
        # elected (A5 replacing A2).
        instance = make_instance(threshold=0.2)
        obj = instance.new_object()
        add_texts(instance, obj, [
            "feeding on stonewort beds",
            "feeding on stonewort beds today",
        ])
        group = obj.groups[0]
        old_representative = group.representative
        obj.remove_annotations({old_representative})
        new_representative = obj.groups[0].representative
        assert new_representative is not None
        assert new_representative != old_representative

    def test_representative_preview_available_at_query_time(self):
        instance = make_instance(threshold=0.2)
        obj = instance.new_object()
        add_texts(instance, obj, ["feeding on stonewort beds"])
        stripped = obj.for_query()
        assert stripped.groups[0].representative_preview() == (
            "feeding on stonewort beds"
        )

    def test_exhausted_previews_fall_back_to_min_id(self):
        group = ClusterGroup(member_ids={5, 9}, ranking=[], previews={})
        assert group.representative == 5
        assert group.representative_preview() is None


class TestRemoval:
    def test_remove_drops_empty_groups(self):
        instance = make_instance(threshold=0.9)
        obj = instance.new_object()
        add_texts(instance, obj, ["alpha words", "beta vocabulary"])
        obj.remove_annotations({1})
        assert len(obj.groups) == 1
        assert obj.annotation_ids() == frozenset({2})

    def test_remove_unknown_ids_is_noop(self):
        instance = make_instance()
        obj = instance.new_object()
        add_texts(instance, obj, ["hello there"])
        obj.remove_annotations({42})
        assert obj.group_sizes() == [1]

    def test_group_size_tracks_members(self):
        instance = make_instance(threshold=0.1)
        obj = instance.new_object()
        add_texts(instance, obj, ["same text"] * 3)
        obj.remove_annotations({1})
        assert obj.group_sizes() == [2]


class TestMerge:
    def _group(self, ids, previews=None):
        return ClusterGroup(
            member_ids=set(ids), ranking=list(ids), previews=previews or {}
        )

    def test_overlapping_groups_combine(self):
        # Figure 2: groups sharing a member (A1/B5) are combined.
        left = ClusterSummary("S")
        left.groups = [self._group([1, 2])]
        right = ClusterSummary("S")
        right.groups = [self._group([2, 3])]
        merged = left.merge(right)
        assert len(merged.groups) == 1
        assert merged.groups[0].member_ids == {1, 2, 3}

    def test_disjoint_groups_propagate_separately(self):
        # Figure 2: non-overlapping groups (A5, B7) stay separate.
        left = ClusterSummary("S")
        left.groups = [self._group([1])]
        right = ClusterSummary("S")
        right.groups = [self._group([2])]
        merged = left.merge(right)
        assert len(merged.groups) == 2

    def test_transitive_overlap_coalesces(self):
        left = ClusterSummary("S")
        left.groups = [self._group([1, 2]), self._group([3, 4])]
        right = ClusterSummary("S")
        right.groups = [self._group([2, 3])]
        merged = left.merge(right)
        assert len(merged.groups) == 1
        assert merged.groups[0].member_ids == {1, 2, 3, 4}

    def test_merge_preserves_inputs(self):
        left = ClusterSummary("S")
        left.groups = [self._group([1])]
        right = ClusterSummary("S")
        right.groups = [self._group([1, 2])]
        left.merge(right)
        assert left.groups[0].member_ids == {1}

    def test_merge_type_mismatch(self):
        from repro.summaries.classifier import ClassifierSummary

        with pytest.raises(TypeError):
            ClusterSummary("S").merge(ClassifierSummary("C", ["a"]))

    def test_merge_keeps_previews(self):
        left = ClusterSummary("S")
        left.groups = [self._group([1], {1: "left preview"})]
        right = ClusterSummary("S")
        right.groups = [self._group([1, 2], {2: "right preview"})]
        merged = left.merge(right)
        assert merged.groups[0].previews[1] == "left preview"
        assert merged.groups[0].previews[2] == "right preview"


class TestQueryStripping:
    def test_for_query_drops_vectors(self):
        instance = make_instance()
        obj = instance.new_object()
        add_texts(instance, obj, ["hello world"])
        stripped = obj.for_query()
        assert stripped.groups[0].vectors is None
        assert obj.groups[0].vectors is not None  # original untouched

    def test_for_query_truncates_previews(self):
        instance = ClusterInstance("S", threshold=0.01, preview_limit=1)
        obj = instance.new_object()
        add_texts(instance, obj, ["same words here"] * 3)
        stripped = obj.for_query()
        assert len(stripped.groups[0].previews) == 1

    def test_centroid_requires_vectors(self):
        group = ClusterGroup(member_ids={1}, ranking=[1])
        group.vectors = None
        with pytest.raises(MaintenanceError):
            group.centroid()
        with pytest.raises(MaintenanceError):
            group.rerank()


class TestSerialization:
    def test_json_round_trip_with_heavy_state(self):
        instance = make_instance(threshold=0.2)
        obj = instance.new_object()
        add_texts(instance, obj, ["feeding on stonewort", "feeding on weeds"])
        reloaded = ClusterSummary.from_json(obj.to_json())
        assert reloaded.annotation_ids() == obj.annotation_ids()
        assert reloaded.group_sizes() == obj.group_sizes()
        assert reloaded.groups[0].vectors == obj.groups[0].vectors

    def test_json_round_trip_stripped(self):
        instance = make_instance()
        obj = instance.new_object()
        add_texts(instance, obj, ["hello world"])
        stripped = obj.for_query()
        reloaded = ClusterSummary.from_json(stripped.to_json())
        assert reloaded.groups[0].vectors is None

    def test_type_config_round_trip(self):
        instance = ClusterInstance(
            "S", threshold=0.55, preview_words=4, preview_limit=2
        )
        rebuilt = ClusterType().create_instance("S", instance.config())
        assert rebuilt.threshold == 0.55
        assert rebuilt.preview_words == 4
        assert rebuilt.preview_limit == 2
        assert not rebuilt.properties.annotation_invariant

    def test_zoom_components_expose_members(self):
        instance = make_instance(threshold=0.9)
        obj = instance.new_object()
        add_texts(instance, obj, ["alpha text", "beta words"])
        components = obj.zoom_components()
        assert [c.index for c in components] == [1, 2]
        assert components[0].annotation_ids == (1,)
