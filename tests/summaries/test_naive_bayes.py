"""Tests for repro.summaries.naive_bayes."""

import math

import pytest

from repro.summaries.naive_bayes import NaiveBayesClassifier

TRAINING = [
    ("observed feeding on stonewort beds", "Behavior"),
    ("seen foraging among pond weeds", "Behavior"),
    ("spotted diving for small insects", "Behavior"),
    ("shows symptoms of avian influenza", "Disease"),
    ("appears infected with avian pox", "Disease"),
    ("tested positive for botulism", "Disease"),
]


@pytest.fixture
def model() -> NaiveBayesClassifier:
    return NaiveBayesClassifier(["Behavior", "Disease"]).fit(TRAINING)


class TestConstruction:
    def test_requires_labels(self):
        with pytest.raises(ValueError, match="non-empty"):
            NaiveBayesClassifier([])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            NaiveBayesClassifier(["a", "a"])

    def test_rejects_non_positive_smoothing(self):
        with pytest.raises(ValueError, match="smoothing"):
            NaiveBayesClassifier(["a"], smoothing=0.0)

    def test_untrained_predicts_first_label(self):
        model = NaiveBayesClassifier(["first", "second"])
        assert not model.is_trained
        assert model.predict("anything at all") == "first"


class TestTraining:
    def test_partial_fit_rejects_unknown_label(self, model):
        with pytest.raises(ValueError, match="unknown label"):
            model.partial_fit("text", "Nope")

    def test_is_trained_after_one_example(self):
        model = NaiveBayesClassifier(["a", "b"])
        model.partial_fit("hello world", "a")
        assert model.is_trained

    def test_vocabulary_grows(self, model):
        before = model.vocabulary_size
        model.partial_fit("entirely novel wordage here", "Behavior")
        assert model.vocabulary_size > before


class TestPrediction:
    def test_separates_trained_classes(self, model):
        assert model.predict("bird seen feeding on stonewort") == "Behavior"
        assert model.predict("bird shows symptoms of influenza") == "Disease"

    def test_predict_proba_sums_to_one(self, model):
        probabilities = model.predict_proba("feeding on weeds")
        assert math.isclose(sum(probabilities.values()), 1.0)
        assert set(probabilities) == {"Behavior", "Disease"}

    def test_predict_proba_agrees_with_predict(self, model):
        text = "observed diving for insects"
        probabilities = model.predict_proba(text)
        assert model.predict(text) == max(probabilities, key=probabilities.get)

    def test_prior_dominates_for_uninformative_text(self):
        model = NaiveBayesClassifier(["common", "rare"])
        for _ in range(9):
            model.partial_fit("shared words only", "common")
        model.partial_fit("shared words only", "rare")
        assert model.predict("shared words only") == "common"

    def test_empty_text_falls_back_to_prior(self, model):
        model.partial_fit("extra behavior example", "Behavior")
        # Behavior now has the larger prior (4 vs 3 docs).
        assert model.predict("") == "Behavior"

    def test_log_scores_are_finite(self, model):
        scores = model.log_scores("never seen tokens xyzzy")
        assert all(math.isfinite(score) for score in scores.values())


class TestPersistence:
    def test_round_trip_preserves_predictions(self, model):
        reloaded = NaiveBayesClassifier.from_json(model.to_json())
        for text in ("feeding on stonewort", "symptoms of pox", "random words"):
            assert reloaded.predict(text) == model.predict(text)
            assert reloaded.log_scores(text) == model.log_scores(text)

    def test_round_trip_preserves_vocabulary(self, model):
        reloaded = NaiveBayesClassifier.from_json(model.to_json())
        assert reloaded.vocabulary_size == model.vocabulary_size

    def test_reloaded_model_can_keep_training(self, model):
        reloaded = NaiveBayesClassifier.from_json(model.to_json())
        reloaded.partial_fit("new behavior words", "Behavior")
        assert reloaded.is_trained
