"""Tests for repro.summaries.registry."""

import pytest

from repro.errors import UnknownSummaryTypeError
from repro.summaries.classifier import ClassifierSummary, ClassifierType
from repro.summaries.registry import SummaryTypeRegistry, default_registry


class TestRegistry:
    def test_default_registry_has_builtin_types(self):
        registry = default_registry()
        assert registry.type_names() == ["Classifier", "Cluster", "Snippet"]

    def test_contains(self):
        registry = default_registry()
        assert "Classifier" in registry
        assert "Nope" not in registry

    def test_get_unknown_raises(self):
        registry = SummaryTypeRegistry()
        with pytest.raises(UnknownSummaryTypeError):
            registry.get("Classifier")

    def test_register_empty_name_rejected(self):
        registry = SummaryTypeRegistry()

        class Nameless(ClassifierType):
            name = ""

        with pytest.raises(ValueError, match="empty type name"):
            registry.register(Nameless())

    def test_reregistration_replaces(self):
        registry = default_registry()
        replacement = ClassifierType()
        registry.register(replacement)
        assert registry.get("Classifier") is replacement

    def test_create_instance_dispatches(self):
        registry = default_registry()
        instance = registry.create_instance(
            "Classifier", "C1", {"labels": ["a", "b"]}
        )
        assert instance.name == "C1"
        assert instance.type_name == "Classifier"

    def test_object_from_json_dispatches_on_type_tag(self):
        registry = default_registry()
        obj = ClassifierSummary("C1", ["a"])
        obj.add(1, "a")
        reloaded = registry.object_from_json(obj.to_json())
        assert isinstance(reloaded, ClassifierSummary)
        assert reloaded.counts() == [("a", 1)]

    def test_iteration_is_sorted(self):
        registry = default_registry()
        assert list(registry) == sorted(registry.type_names())
