"""Property-based tests of the summary-object algebra.

The correctness of summary-aware query processing rests on a small
algebra: ``merge`` must behave like a dedup-aware union (commutative,
associative, idempotent up to rendering), ``remove_annotations`` must be
the inverse of addition and commute with merge, and serialization must be
lossless.  These properties are what make plan-invariant propagation
(Theorems 1-2) possible, so they are checked with hypothesis across the
three built-in summary types.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries.classifier import ClassifierSummary
from repro.summaries.cluster import ClusterGroup, ClusterSummary
from repro.summaries.snippet import SnippetEntry, SnippetSummary

LABELS = ("Behavior", "Disease", "Other")

# -- strategies ---------------------------------------------------------

ids = st.integers(min_value=1, max_value=30)


@st.composite
def classifier_summaries(draw) -> ClassifierSummary:
    summary = ClassifierSummary("C", LABELS)
    assignments = draw(st.dictionaries(ids, st.sampled_from(LABELS), max_size=15))
    for annotation_id, label in assignments.items():
        summary.add(annotation_id, label)
    return summary


@st.composite
def cluster_summaries(draw) -> ClusterSummary:
    summary = ClusterSummary("S")
    groups = draw(
        st.lists(st.sets(ids, min_size=1, max_size=6), min_size=0, max_size=5)
    )
    used: set[int] = set()
    for members in groups:
        members = members - used  # groups within one object are disjoint
        if not members:
            continue
        used |= members
        summary.groups.append(
            ClusterGroup(
                member_ids=members,
                ranking=sorted(members),
                previews={min(members): f"preview-{min(members)}"},
            )
        )
    return summary


@st.composite
def snippet_summaries(draw) -> SnippetSummary:
    summary = SnippetSummary("TS")
    for annotation_id in sorted(draw(st.sets(ids, max_size=10))):
        summary.add_entry(
            SnippetEntry(annotation_id, f"title-{annotation_id}", ("s.",))
        )
    return summary


SUMMARY_STRATEGIES = [classifier_summaries(), cluster_summaries(), snippet_summaries()]


def canonical(summary) -> object:
    """Type-aware canonical form for comparing summary contents."""
    if isinstance(summary, ClassifierSummary):
        return {label: summary.members(label) for label in summary.labels}
    if isinstance(summary, ClusterSummary):
        return frozenset(frozenset(g.member_ids) for g in summary.groups)
    if isinstance(summary, SnippetSummary):
        return summary.annotation_ids()
    raise TypeError(type(summary))


# -- classifier properties ----------------------------------------------


class TestClassifierAlgebra:
    @given(classifier_summaries(), classifier_summaries())
    def test_merge_commutative(self, left, right):
        # Merging can only conflict when the same id has different labels;
        # within one engine an annotation is always classified identically,
        # so constrain to compatible pairs.
        conflict = any(
            left.label_of(i) != right.label_of(i)
            for i in left.annotation_ids() & right.annotation_ids()
        )
        if conflict:
            return
        assert canonical(left.merge(right)) == canonical(right.merge(left))

    @given(classifier_summaries())
    def test_merge_idempotent(self, summary):
        assert canonical(summary.merge(summary)) == canonical(summary)

    @given(classifier_summaries(), st.sets(ids, max_size=10))
    def test_remove_is_subtraction(self, summary, removed):
        before = summary.annotation_ids()
        summary.remove_annotations(removed)
        assert summary.annotation_ids() == before - removed

    @given(classifier_summaries())
    def test_json_round_trip(self, summary):
        reloaded = ClassifierSummary.from_json(summary.to_json())
        assert canonical(reloaded) == canonical(summary)

    @given(classifier_summaries(), st.sets(ids, max_size=10))
    def test_copy_isolated_from_removal(self, summary, removed):
        clone = summary.copy()
        clone.remove_annotations(removed)
        assert canonical(summary) == canonical(
            ClassifierSummary.from_json(summary.to_json())
        )

    @given(classifier_summaries())
    def test_counts_match_members(self, summary):
        for label, count in summary.counts():
            assert count == len(summary.members(label))


# -- generic algebra across all types ------------------------------------


class TestMergeAlgebra:
    @given(cluster_summaries(), cluster_summaries())
    def test_cluster_merge_commutative(self, left, right):
        assert canonical(left.merge(right)) == canonical(right.merge(left))

    @given(cluster_summaries(), cluster_summaries(), cluster_summaries())
    @settings(max_examples=40)
    def test_cluster_merge_associative(self, a, b, c):
        assert canonical(a.merge(b).merge(c)) == canonical(a.merge(b.merge(c)))

    @given(cluster_summaries())
    def test_cluster_merge_idempotent(self, summary):
        assert canonical(summary.merge(summary)) == canonical(summary)

    @given(cluster_summaries(), cluster_summaries())
    def test_cluster_merge_preserves_all_members(self, left, right):
        merged = left.merge(right)
        assert merged.annotation_ids() == (
            left.annotation_ids() | right.annotation_ids()
        )

    @given(cluster_summaries(), cluster_summaries())
    def test_cluster_merge_groups_stay_disjoint(self, left, right):
        merged = left.merge(right)
        seen: set[int] = set()
        for group in merged.groups:
            assert not group.member_ids & seen
            seen |= group.member_ids

    @given(snippet_summaries(), snippet_summaries())
    def test_snippet_merge_commutative_on_ids(self, left, right):
        assert canonical(left.merge(right)) == canonical(right.merge(left))

    @given(snippet_summaries(), st.sets(ids, max_size=10))
    def test_snippet_remove_is_subtraction(self, summary, removed):
        before = summary.annotation_ids()
        summary.remove_annotations(removed)
        assert summary.annotation_ids() == before - removed

    @given(cluster_summaries(), st.sets(ids, max_size=10))
    def test_cluster_remove_is_subtraction(self, summary, removed):
        before = summary.annotation_ids()
        summary.remove_annotations(removed)
        assert summary.annotation_ids() == before - removed
        assert all(group.member_ids for group in summary.groups)


class TestSerializationAlgebra:
    @given(cluster_summaries())
    def test_cluster_json_round_trip(self, summary):
        reloaded = ClusterSummary.from_json(summary.to_json())
        assert canonical(reloaded) == canonical(summary)
        assert [g.ranking for g in reloaded.groups] == [
            g.ranking for g in summary.groups
        ]

    @given(snippet_summaries())
    def test_snippet_json_round_trip(self, summary):
        reloaded = SnippetSummary.from_json(summary.to_json())
        assert reloaded.entries == summary.entries

    @given(cluster_summaries())
    def test_for_query_preserves_membership(self, summary):
        assert canonical(summary.for_query()) == canonical(summary)


class TestProjectionMergeInteraction:
    """Removal before merge equals removal after merge.

    This is the heart of Theorems 1-2: projecting out an annotation set
    and then merging must give the same membership as merging first and
    projecting after — for membership-level state.  (Cluster *grouping*
    is where the two orders genuinely differ, which is why the engine
    must normalize; see test_plan_equivalence.py.)
    """

    @given(classifier_summaries(), classifier_summaries(), st.sets(ids, max_size=10))
    def test_classifier_remove_commutes_with_merge(self, left, right, removed):
        conflict = any(
            left.label_of(i) != right.label_of(i)
            for i in left.annotation_ids() & right.annotation_ids()
        )
        if conflict:
            return
        merged_then_removed = left.merge(right)
        merged_then_removed.remove_annotations(removed)
        left2, right2 = left.copy(), right.copy()
        left2.remove_annotations(removed)
        right2.remove_annotations(removed)
        removed_then_merged = left2.merge(right2)
        assert canonical(merged_then_removed) == canonical(removed_then_merged)

    @given(snippet_summaries(), snippet_summaries(), st.sets(ids, max_size=10))
    def test_snippet_remove_commutes_with_merge(self, left, right, removed):
        merged = left.merge(right)
        merged.remove_annotations(removed)
        left2, right2 = left.copy(), right.copy()
        left2.remove_annotations(removed)
        right2.remove_annotations(removed)
        assert canonical(merged) == canonical(left2.merge(right2))
