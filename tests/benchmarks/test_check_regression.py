"""Tests for the perf-regression gate (``benchmarks/check_regression.py``).

The gate guards CI against order-of-magnitude slowdowns; these tests pin
its own failure modes — a missing or corrupt report must read as a
misconfigured comparison (clean exit 1 with a diagnostic), never as a
silent pass or a traceback.
"""

import json

import pytest

from benchmarks.check_regression import compare, iter_cells, load_report, main


def report(benchmark="scan", median=0.010, workload="birds", mode="summary"):
    return {
        "benchmark": benchmark,
        "results": {workload: {"30": {mode: {"median_s": median}}}},
    }


def shard_report(benchmark="sharded_ingest", median=0.010):
    """The shard sweep's shape: nested per-shard mode cells carrying
    auxiliary dicts (per-shard counters) inside each timed cell."""
    return {
        "benchmark": benchmark,
        "results": {
            "ingest_under_read": {
                "4w": {
                    "shards_1": {
                        "median_s": median * 3,
                        "shard_write_batches": {"0": 48},
                    },
                    "shards_4": {
                        "median_s": median,
                        "shard_write_batches": {"0": 12, "1": 12},
                    },
                    "speedup": 3.0,
                }
            },
            "read_under_ingest": {
                "8t": {"shards_4": {"median_s": median}}
            },
        },
    }


def write(tmp_path, name, payload):
    target = tmp_path / name
    target.write_text(json.dumps(payload))
    return target


class TestCompare:
    def test_within_threshold_passes(self, capsys):
        failures = compare(report(median=0.010), report(median=0.015), 2.0)
        assert failures == []
        assert "ok" in capsys.readouterr().out

    def test_regression_past_threshold_fails(self, capsys):
        failures = compare(report(median=0.010), report(median=0.025), 2.0)
        assert len(failures) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_benchmark_mismatch_fails(self):
        failures = compare(
            report(benchmark="scan"), report(benchmark="ingest"), 2.0
        )
        assert failures and "benchmark mismatch" in failures[0]

    def test_disjoint_cells_fail(self):
        failures = compare(
            report(workload="birds"), report(workload="fish"), 2.0
        )
        assert failures and "share no" in failures[0]

    def test_candidate_only_cells_are_ignored(self, capsys):
        candidate = report()
        candidate["results"]["extra"] = {"60": {"raw": {"median_s": 9.9}}}
        assert compare(report(), candidate, 2.0) == []


class TestCoverageLogging:
    """Partial overlap must be loud: SKIPPED/MISSING lines + a summary."""

    def test_candidate_only_cells_log_skipped(self, capsys):
        candidate = report()
        candidate["results"]["extra"] = {"60": {"raw": {"median_s": 9.9}}}
        assert compare(report(), candidate, 2.0) == []
        out = capsys.readouterr().out
        assert "SKIPPED (no baseline)" in out
        assert "1 candidate-only skipped" in out

    def test_baseline_only_cells_log_missing(self, capsys):
        baseline = report()
        baseline["results"]["extra"] = {"60": {"raw": {"median_s": 0.01}}}
        assert compare(baseline, report(), 2.0) == []
        out = capsys.readouterr().out
        assert "MISSING from candidate (not gated)" in out
        assert "extra 60 raw" in out
        assert "1 baseline-only missing" in out

    def test_summary_counts_gated_cells(self, capsys):
        assert compare(report(), report(), 2.0) == []
        out = capsys.readouterr().out
        assert "gated 1 cell(s); 0 candidate-only skipped, " in out
        assert "0 baseline-only missing" in out

    def test_full_overlap_logs_no_skips(self, capsys):
        compare(shard_report(), shard_report(), 2.0)
        out = capsys.readouterr().out
        assert "SKIPPED" not in out
        assert "MISSING" not in out
        assert "gated 3 cell(s)" in out


class TestNestedCells:
    def test_iter_cells_walks_nested_shard_keys(self):
        cells = dict(iter_cells(shard_report(median=0.010)))
        assert cells == {
            ("ingest_under_read", "4w", "shards_1"): 0.030,
            ("ingest_under_read", "4w", "shards_4"): 0.010,
            ("read_under_ingest", "8t", "shards_4"): 0.010,
        }

    def test_iter_cells_does_not_descend_into_cells(self):
        # shard_write_batches lives *inside* a timed cell; its entries
        # must never surface as cells of their own.
        paths = [path for path, _ in iter_cells(shard_report())]
        assert all("shard_write_batches" not in path for path in paths)

    def test_nested_regression_is_caught(self, capsys):
        failures = compare(
            shard_report(median=0.010), shard_report(median=0.100), 2.0
        )
        assert len(failures) == 3
        assert any("read_under_ingest 8t shards_4" in f for f in failures)
        assert "REGRESSION" in capsys.readouterr().out

    def test_nested_within_threshold_passes(self, capsys):
        failures = compare(
            shard_report(median=0.010), shard_report(median=0.015), 2.0
        )
        assert failures == []
        assert "ingest_under_read 4w shards_4" in capsys.readouterr().out


class TestLoadReport:
    def test_valid_report_loads(self, tmp_path):
        path = write(tmp_path, "r.json", report())
        assert load_report(path, "baseline") == report()

    def test_missing_file_returns_none(self, tmp_path, capsys):
        assert load_report(tmp_path / "absent.json", "baseline") is None
        assert "cannot read baseline report" in capsys.readouterr().err

    def test_malformed_json_returns_none(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        assert load_report(path, "candidate") is None
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_payload_returns_none(self, tmp_path, capsys):
        path = write(tmp_path, "list.json", [1, 2, 3])
        assert load_report(path, "baseline") is None
        assert "must be a JSON object" in capsys.readouterr().err


class TestMain:
    def run(self, tmp_path, baseline, candidate, threshold="2.0"):
        return main(
            [
                "--baseline", str(baseline),
                "--candidate", str(candidate),
                "--threshold", threshold,
            ]
        )

    def test_within_threshold_exits_zero(self, tmp_path):
        baseline = write(tmp_path, "base.json", report(median=0.010))
        candidate = write(tmp_path, "cand.json", report(median=0.012))
        assert self.run(tmp_path, baseline, candidate) == 0

    def test_regression_exits_one(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", report(median=0.010))
        candidate = write(tmp_path, "cand.json", report(median=0.100))
        assert self.run(tmp_path, baseline, candidate) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_missing_baseline_exits_one(self, tmp_path, capsys):
        candidate = write(tmp_path, "cand.json", report())
        code = self.run(tmp_path, tmp_path / "absent.json", candidate)
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_candidate_exits_one(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", report())
        candidate = tmp_path / "cand.json"
        candidate.write_text("not json at all")
        assert self.run(tmp_path, baseline, candidate) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_nonpositive_threshold_is_a_usage_error(self, tmp_path):
        baseline = write(tmp_path, "base.json", report())
        candidate = write(tmp_path, "cand.json", report())
        with pytest.raises(SystemExit) as excinfo:
            self.run(tmp_path, baseline, candidate, threshold="0")
        assert excinfo.value.code == 2
