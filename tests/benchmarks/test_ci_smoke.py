"""Tests for the consolidated CI bench harness (``benchmarks/ci_smoke.py``).

The harness is the single CI step standing between a perf regression
and a green build, so its own failure modes are pinned here with a
fake registered bench: a healthy bench passes, a missing committed
baseline fails loudly, a tripped acceptance or regression gate fails,
and one broken bench never masks another.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import ci_smoke


def fake_bench(median=0.01, gate=None):
    """A minimal BENCHES entry whose quick run takes no time at all."""

    def run(quick, repeats):
        return {
            "w": {
                "30x": {
                    "a": {"median_s": median, "statements": 2},
                    "b": {"median_s": median, "statements": 2},
                    "speedup": 1.0,
                    "statement_ratio": 1.0,
                }
            }
        }

    entry = {
        "run": run,
        "benchmark": "fake",
        "output": "BENCH_fake.json",
        "modes": {"a": "mode a", "b": "mode b"},
        "pair": ("a", "b"),
    }
    if gate is not None:
        entry["gate"] = gate
    return entry


def install(monkeypatch, tmp_path, benches):
    """Point the harness at a fake registry and a scratch 'repo root'."""
    monkeypatch.setattr(ci_smoke.run_bench, "BENCHES", benches)
    monkeypatch.setattr(ci_smoke, "REPO_ROOT", tmp_path)


def commit_baseline(tmp_path, name="fake", median=0.01):
    report = {
        "benchmark": "fake",
        "results": fake_bench(median=median)["run"](quick=False, repeats=1),
    }
    target = tmp_path / f"BENCH_{name}.json"
    target.write_text(json.dumps(report))
    return target


def test_healthy_bench_passes_and_writes_smoke(monkeypatch, tmp_path, capsys):
    install(monkeypatch, tmp_path, {"fake": fake_bench()})
    commit_baseline(tmp_path)
    assert ci_smoke.main(["--output-dir", str(tmp_path)]) == 0
    smoke = json.loads((tmp_path / "fake-smoke.json").read_text())
    assert smoke["benchmark"] == "fake"
    assert smoke["quick"] is True
    assert "1/1 benches healthy" in capsys.readouterr().out


def test_missing_committed_baseline_fails(monkeypatch, tmp_path, capsys):
    install(monkeypatch, tmp_path, {"fake": fake_bench()})
    assert ci_smoke.main(["--output-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "no committed baseline BENCH_fake.json" in err


def test_tripped_acceptance_gate_fails(monkeypatch, tmp_path, capsys):
    tripped = fake_bench(gate=lambda results, quick: ["acceptance miss"])
    install(monkeypatch, tmp_path, {"fake": tripped})
    commit_baseline(tmp_path)
    assert ci_smoke.main(["--output-dir", str(tmp_path)]) == 1
    assert "quick smoke run exited 1" in capsys.readouterr().err


def test_regression_past_threshold_fails(monkeypatch, tmp_path, capsys):
    install(monkeypatch, tmp_path, {"fake": fake_bench(median=0.05)})
    commit_baseline(tmp_path, median=0.001)
    assert ci_smoke.main(["--output-dir", str(tmp_path)]) == 1
    assert "regression gate failed" in capsys.readouterr().err


def test_one_broken_bench_does_not_mask_another(
    monkeypatch, tmp_path, capsys
):
    benches = {
        "bad": fake_bench(gate=lambda results, quick: ["nope"]),
        "good": dict(fake_bench(), output="BENCH_good.json"),
    }
    install(monkeypatch, tmp_path, benches)
    commit_baseline(tmp_path, name="good")
    assert ci_smoke.main(["--output-dir", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    # Both ran: the good bench's smoke landed despite the bad one.
    assert (tmp_path / "good-smoke.json").is_file()
    assert "1/2 benches healthy" in captured.out
    assert "bad: quick smoke run exited 1" in captured.err


def test_bench_selection_runs_only_named(monkeypatch, tmp_path):
    benches = {"fake": fake_bench(), "other": fake_bench()}
    install(monkeypatch, tmp_path, benches)
    commit_baseline(tmp_path)
    code = ci_smoke.main(
        ["--bench", "fake", "--output-dir", str(tmp_path)]
    )
    assert code == 0
    assert (tmp_path / "fake-smoke.json").is_file()
    assert not (tmp_path / "other-smoke.json").exists()


def test_unknown_bench_is_a_usage_error(monkeypatch, tmp_path):
    install(monkeypatch, tmp_path, {"fake": fake_bench()})
    with pytest.raises(SystemExit) as excinfo:
        ci_smoke.main(["--bench", "bogus", "--output-dir", str(tmp_path)])
    assert excinfo.value.code == 2


def test_every_real_bench_is_registered_with_a_committed_baseline():
    """Registering in run_bench.py is the only step to get CI coverage —
    so every registered bench must have its trajectory committed."""
    from benchmarks.run_bench import BENCHES

    assert "serve" in BENCHES
    repo_root = ci_smoke.REPO_ROOT
    for name, bench in BENCHES.items():
        assert (repo_root / bench["output"]).is_file(), (
            f"bench {name!r} has no committed {bench['output']}"
        )
