"""FIG3 — Figure 3: zoom-in query processing.

Reproduces both commands of the figure: expanding the "refute" label of a
NaiveBayesClass summary over tuples r1/r2, and retrieving the complete
Wikipedia article behind a snippet.
"""

import pytest

from repro import InsightNotes


@pytest.fixture(scope="module")
def figure3():
    notes = InsightNotes()
    notes.create_table("T", ["C1", "C2", "C3"])
    r1 = notes.insert("T", ("x", "y", 5))
    r2 = notes.insert("T", ("x", "y", 10))
    notes.define_classifier("NaiveBayesClass", ["refute", "approve"], [
        ("value is wrong needs correction", "refute"),
        ("invalid experiment reject entry", "refute"),
        ("needs verification before use", "refute"),
        ("confirmed by second observer", "approve"),
        ("looks correct and consistent", "approve"),
    ])
    notes.define_snippet("TextSummary", max_sentences=1)
    notes.link("NaiveBayesClass", "T")
    notes.link("TextSummary", "T")

    notes.add_annotation("value 5 is wrong", table="T", row_id=r1)
    notes.add_annotation("needs verification", table="T", row_id=r2)
    notes.add_annotation("invalid experiment", table="T", row_id=r2)
    for _ in range(6):
        notes.add_annotation("confirmed by second observer correct",
                             table="T", row_id=r1)
    notes.add_annotation(
        "Experiment E description sentence. More detail follows here.",
        table="T", row_id=r1, document=True, title="Experiment E",
    )
    notes.add_annotation(
        "Wikipedia article body sentence. Another article sentence.",
        table="T", row_id=r1, document=True, title="Wikipedia article",
    )
    result = notes.query("SELECT C1, C2, C3 FROM T")
    yield notes, result
    notes.close()


class TestFigure3a:
    def test_refuting_annotations_retrieved(self, figure3):
        notes, result = figure3
        zoom = notes.zoomin(
            f"ZoomIn Reference QID = {result.qid} Where C1 = 'x' "
            f"On NaiveBayesClass Index 1;"
        )
        # One refuting annotation on r1, two on r2 — exactly the figure.
        assert [len(m.annotations) for m in zoom.matches] == [1, 2]
        texts = [a.text for m in zoom.matches for a in m.annotations]
        assert texts == [
            "value 5 is wrong", "needs verification", "invalid experiment",
        ]

    def test_index_1_is_first_declared_label(self, figure3):
        notes, result = figure3
        zoom = notes.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON NaiveBayesClass INDEX 1"
        )
        assert all(m.component.label == "refute" for m in zoom.matches)


class TestFigure3b:
    def test_wikipedia_article_retrieved_in_full(self, figure3):
        notes, result = figure3
        zoom = notes.zoomin(
            f"ZoomIn Reference QID = {result.qid} Where C3 = 5 "
            f"On TextSummary Index 2;"
        )
        assert len(zoom.matches) == 1
        (article,) = zoom.matches[0].annotations
        assert article.title == "Wikipedia article"
        # Zoom-in returns the complete document, not the snippet.
        assert article.text == (
            "Wikipedia article body sentence. Another article sentence."
        )

    def test_snippet_carried_only_one_sentence(self, figure3):
        _notes, result = figure3
        r1_row = next(t for t in result.tuples if t.values[2] == 5)
        wikipedia_entry = r1_row.summaries["TextSummary"].entries[1]
        assert len(wikipedia_entry.sentences) == 1


class TestCaching:
    def test_zoomins_after_query_hit_the_cache(self, figure3):
        notes, result = figure3
        before = notes.cache.stats.hits
        notes.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON NaiveBayesClass INDEX 2"
        )
        assert notes.cache.stats.hits == before + 1
