"""FIG5 — Figure 5: the InsightNotesGate demonstration flow.

Replays the GUI scenario end to end through the scripted REPL: demo data,
QBE and SQL querying, summary visualization, annotation insertion with
summary refresh, zoom-in, and the under-the-hood trace.
"""

import pytest

from repro.gate.cli import GateREPL


@pytest.fixture(scope="module")
def repl():
    gate = GateREPL()
    gate.handle("\\demo")
    yield gate
    gate.session.close()


class TestFigure5Flow:
    def test_qbe_section(self, repl):
        output = repl.handle("\\qbe birds region=midwest")
        assert "QID =" in output

    def test_explicit_sql_with_join_and_aggregation(self, repl):
        output = repl.handle(
            "SELECT b.species, count(*) FROM birds b, sightings s "
            "WHERE b.species = s.species GROUP BY b.species"
        )
        assert "count(*)" in output

    def test_visualize_annotation_summaries(self, repl):
        result = repl.session.query("SELECT name, species FROM birds")
        output = repl.handle(f"\\summaries {result.qid} 0")
        assert "Classifier-Type" in output
        assert "Cluster-Type" in output
        assert "Snippet-Type" in output

    def test_add_annotation_refreshes_summaries(self, repl):
        session = repl.session
        before = session.query("SELECT name FROM birds WHERE name = 'Swan Goose'")
        count_before = sum(
            count
            for _, count in before.tuples[0].summaries["ClassBird1"].counts()
        )
        repl.handle("\\annotate birds 1 observed feeding on stonewort beds")
        after = session.query("SELECT name FROM birds WHERE name = 'Swan Goose'")
        count_after = sum(
            count
            for _, count in after.tuples[0].summaries["ClassBird1"].counts()
        )
        assert count_after == count_before + 1

    def test_zoom_in_button(self, repl):
        result = repl.session.query("SELECT name, species FROM birds")
        output = repl.handle(
            f"ZOOMIN REFERENCE QID = {result.qid} ON ClassBird1 INDEX 1"
        )
        assert "annotation(s)" in output

    def test_link_new_instance_changes_visualized_summaries(self, repl):
        repl.handle("\\unlink TextSummary1 birds")
        result = repl.session.query("SELECT name FROM birds")
        assert "TextSummary1" not in result.tuples[0].summaries
        repl.handle("\\link TextSummary1 birds")
        result = repl.session.query("SELECT name FROM birds")
        assert "TextSummary1" in result.tuples[0].summaries

    def test_under_the_hood_trace(self, repl):
        repl.handle("\\trace")
        output = repl.handle(
            "SELECT b.name FROM birds b, sightings s "
            "WHERE b.species = s.species AND s.count > 10"
        )
        repl.handle("\\trace")
        assert "Under the hood" in output
        assert "Join" in output
        assert "Scan" in output
