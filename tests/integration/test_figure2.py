"""FIG2 — Figure 2: summary propagation through the worked SPJ query.

Rebuilds the paper's exact scenario — tuples r and s, four summary
instances on R and two on S, annotations on kept, dropped, and shared
columns — and checks each step's semantics on the final output.
"""

import pytest

from repro import CellRef, InsightNotes


@pytest.fixture(scope="module")
def figure2():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b", "c", "d"])
    notes.create_table("S", ["x", "y", "z"])
    r = notes.insert("R", (1, 2, "c-value", "d-value"))
    s = notes.insert("S", (1, "y-value", "z-value"))

    notes.define_classifier("ClassBird1", ["Behavior", "Disease"], [
        ("observed feeding on stonewort", "Behavior"),
        ("shows symptoms of avian influenza", "Disease"),
    ])
    notes.define_classifier("ClassBird2", ["Provenance", "Comment"], [
        ("record imported from the archive", "Provenance"),
        ("great sighting worth sharing", "Comment"),
    ])
    notes.define_cluster("SimCluster", threshold=0.3)
    notes.define_snippet("TextSummary1", max_sentences=1)
    for name in ("ClassBird1", "ClassBird2", "SimCluster", "TextSummary1"):
        notes.link(name, "R")
    for name in ("ClassBird2", "SimCluster"):
        notes.link(name, "S")

    # Annotations on r.
    notes.add_annotation("observed feeding on stonewort near dawn",
                         table="R", row_id=r, columns=["a"])      # kept
    notes.add_annotation("shows symptoms of avian influenza",
                         table="R", row_id=r, columns=["c"])      # dropped
    notes.add_annotation(
        "Experiment E sentence one. Experiment E sentence two.",
        table="R", row_id=r, columns=["a"], document=True,
        title="Experiment E",
    )                                                             # kept doc
    notes.add_annotation(
        "Wikipedia article sentence one. Wikipedia sentence two.",
        table="R", row_id=r, columns=["d"], document=True,
        title="Wikipedia article",
    )                                                             # dropped doc
    # Annotations on s.
    notes.add_annotation("great sighting worth sharing today",
                         table="S", row_id=s, columns=["x"])      # join column
    notes.add_annotation("record imported from the archive",
                         table="S", row_id=s, columns=["y"])      # dropped
    # Shared annotation attached to both r and s.
    notes.add_annotation(
        "record imported from station logbook",
        cells=[CellRef("R", r, "a"), CellRef("S", s, "x")],
    )

    sql = "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2"
    result = notes.query(sql, trace=True)
    yield notes, result
    notes.close()


class TestFigure2:
    def test_query_returns_single_joined_tuple(self, figure2):
        _notes, result = figure2
        assert result.columns == ("r.a", "r.b", "s.z")
        assert result.rows() == [(1, 2, "z-value")]

    def test_step1_projection_removes_dropped_column_annotations(self, figure2):
        notes, result = figure2
        row = result.tuples[0]
        surviving = {
            a.text for a in notes.annotations.get_many(
                row.summaries["ClassBird1"].annotation_ids()
            )
        }
        # The Disease annotation sat only on r.c, which is projected out.
        assert "shows symptoms of avian influenza" not in surviving
        assert "observed feeding on stonewort near dawn" in surviving

    def test_step1_snippet_on_dropped_column_removed(self, figure2):
        _notes, result = figure2
        previews = result.tuples[0].summaries["TextSummary1"].previews()
        assert previews == ["Experiment E"]  # Wikipedia article (on d) gone

    def test_step3_one_sided_summaries_propagate_unchanged(self, figure2):
        _notes, result = figure2
        summaries = result.tuples[0].summaries
        # ClassBird1 and TextSummary1 exist only on R.
        assert "ClassBird1" in summaries
        assert "TextSummary1" in summaries

    def test_step3_counterpart_summaries_merge_without_double_count(self, figure2):
        _notes, result = figure2
        class_bird2 = result.tuples[0].summaries["ClassBird2"]
        # r contributes: behavior note (a), Experiment E doc (a), shared
        # note; s contributes: sighting note (x), shared note.  The shared
        # note must be counted once -> 4 distinct contributing annotations.
        total = sum(count for _, count in class_bird2.counts())
        assert total == 4

    def test_step4_join_column_annotations_survive_final_projection(self, figure2):
        _notes, result = figure2
        row = result.tuples[0]
        # s.x is projected out at the end, but its annotations are
        # value-equivalent to r.a and must persist (paper: step 4 does not
        # change summaries).
        texts = {"great sighting worth sharing today"}
        cluster_ids = row.summaries["SimCluster"].annotation_ids()
        notes = figure2[0]
        surviving_texts = {
            a.text for a in notes.annotations.get_many(cluster_ids)
        }
        assert texts <= surviving_texts

    def test_dropped_y_annotation_absent(self, figure2):
        notes, result = figure2
        row = result.tuples[0]
        surviving_texts = {
            a.text for a in notes.annotations.get_many(row.annotation_ids())
        }
        assert "record imported from the archive" not in surviving_texts

    def test_cluster_merge_combines_overlapping_groups(self, figure2):
        _notes, result = figure2
        cluster = result.tuples[0].summaries["SimCluster"]
        # The shared annotation appears in exactly one group.
        groups_with_shared = [
            group for group in cluster.groups
            if any(True for _ in group.member_ids)
        ]
        seen = set()
        for group in cluster.groups:
            assert not group.member_ids & seen
            seen |= group.member_ids

    def test_trace_shows_expected_operator_sequence(self, figure2):
        _notes, result = figure2
        operators = list(result.trace.by_operator())
        kinds = [op.split("(")[0] for op in operators]
        assert "Scan" in kinds
        assert "Project" in kinds
        assert "Hydrate" in kinds
        assert "Join" in kinds
        # The single-relation conjunct (r.b = 2) is pushed all the way
        # into R's storage scan rather than running as a Select.
        assert any(op.startswith("Scan") and "[pushed: " in op for op in operators)
        # Normalization: at least one projection runs before the join.
        first_join = kinds.index("Join")
        assert "Project" in kinds[:first_join]
