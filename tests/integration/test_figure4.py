"""FIG4 — Figure 4: extensibility and the three-level hierarchy.

Level 1: new summary types can be registered and participate fully.
Level 2: instances carry custom configuration and invariant properties.
Level 3: linking/unlinking instances changes the summary objects carried
by query results, with existing annotations summarized on link.
"""

import importlib.util
import pathlib

import pytest

from repro import InsightNotes
from repro.summaries.registry import default_registry
from tests.conftest import TRAINING

# Reuse the custom type from the runnable example — it is a first-class
# citizen of the library's extensibility contract.
_spec = importlib.util.spec_from_file_location(
    "extensibility_example",
    pathlib.Path(__file__).parents[2] / "examples" / "extensibility.py",
)
_example = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_example)
AuthorHistogramType = _example.AuthorHistogramType


class TestLevel1CustomTypes:
    @pytest.fixture
    def notes(self):
        registry = default_registry()
        registry.register(AuthorHistogramType())
        notes = InsightNotes(registry=registry)
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        yield notes
        notes.close()

    def test_custom_type_registers(self, notes):
        assert "AuthorHistogram" in notes.catalog.registry

    def test_custom_type_participates_in_queries(self, notes):
        notes.define_instance("AuthorHistogram", "Who", {})
        notes.link("Who", "t")
        notes.add_annotation("note one", table="t", row_id=1, author="aria")
        notes.add_annotation("note two", table="t", row_id=1, author="aria")
        notes.add_annotation("note three", table="t", row_id=1, author="ben")
        result = notes.query("SELECT v FROM t")
        rendering = result.tuples[0].summaries["Who"].render()
        assert "(aria, 2)" in rendering
        assert "(ben, 1)" in rendering

    def test_custom_type_zoomin(self, notes):
        notes.define_instance("AuthorHistogram", "Who", {})
        notes.link("Who", "t")
        notes.add_annotation("note one", table="t", row_id=1, author="aria")
        result = notes.query("SELECT v FROM t")
        zoom = notes.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON Who INDEX 1"
        )
        assert zoom.matches[0].annotations[0].text == "note one"

    def test_custom_type_persists(self, notes):
        notes.define_instance("AuthorHistogram", "Who", {})
        notes.link("Who", "t")
        notes.add_annotation("note", table="t", row_id=1, author="aria")
        stored = notes.catalog.load_object("Who", "t", 1)
        assert stored is not None
        assert stored.by_author == {"aria": {1}}


class TestLevel2Instances:
    def test_domain_specific_label_sets(self, session):
        session.create_table("genes", ["symbol"])
        session.define_classifier(
            "GeneClasses", ["FunctionPrediction", "Provenance", "Comment"]
        )
        session.define_classifier(
            "BirdClasses", ["Behavior", "Disease", "Anatomy", "Other"]
        )
        gene = session.catalog.get_instance("GeneClasses")
        bird = session.catalog.get_instance("BirdClasses")
        assert gene.labels != bird.labels

    def test_properties_stored_per_instance(self, session):
        session.define_cluster("Cl")
        session.define_classifier("Cf", ["a"])
        assert not session.catalog.get_instance("Cl").properties.summarize_once
        assert session.catalog.get_instance("Cf").properties.summarize_once


class TestLevel3Linking:
    def test_linking_summarizes_existing_annotations(self, birds_session):
        birds_session.define_classifier("Late", ["Behavior", "Disease"],
                                        TRAINING)
        result_before = birds_session.query("SELECT name FROM birds")
        assert "Late" not in result_before.tuples[0].summaries
        birds_session.link("Late", "birds")
        result_after = birds_session.query("SELECT name FROM birds")
        late = result_after.tuples[0].summaries["Late"]
        assert late.count("Behavior") == 2

    def test_many_to_many_links(self, birds_session):
        birds_session.create_table("nests", ["site"])
        birds_session.insert("nests", ("north",))
        birds_session.link("BirdClass", "nests")
        assert birds_session.catalog.is_linked("BirdClass", "birds")
        assert birds_session.catalog.is_linked("BirdClass", "nests")

    def test_unlink_then_relink_rebuilds(self, birds_session):
        birds_session.unlink("BirdClass", "birds")
        assert birds_session.catalog.load_object("BirdClass", "birds", 1) is None
        birds_session.link("BirdClass", "birds")
        obj = birds_session.catalog.load_object("BirdClass", "birds", 1)
        assert obj is not None
        assert obj.count("Behavior") == 2
