"""Cross-engine consistency: summary-aware vs. raw propagation.

The two engines implement the same propagation semantics at different
granularities, so on any query the set of annotations contributing to each
output tuple must be identical: the summary engine's per-tuple annotation
ids must equal the raw engine's propagated annotation ids.
"""

import pytest

from repro.baselines import RawQueryEngine
from repro.engine.sqlparser import build_logical, parse_sql

QUERIES = [
    "SELECT name, species, region, weight FROM birds",
    "SELECT name, species FROM birds",
    "SELECT name FROM birds WHERE weight > 5",
    "SELECT b.name, b.species, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species",
    "SELECT b.species, count(*) FROM birds b, sightings s "
    "WHERE b.species = s.species GROUP BY b.species",
    "SELECT DISTINCT region FROM birds",
    "SELECT name, weight FROM birds ORDER BY weight DESC LIMIT 3",
    "SELECT b.name, s.observer FROM birds b "
    "LEFT OUTER JOIN sightings s ON b.species = s.species",
    "SELECT name FROM birds WHERE weight BETWEEN 2 AND 8",
    "SELECT species FROM birds UNION SELECT species FROM sightings",
    "SELECT name FROM birds WHERE region IS NOT NULL",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_propagated_annotation_sets_agree(small_workload, sql):
    session = small_workload.session
    raw_engine = RawQueryEngine(session.db, session.annotations)
    summary_result = session.query(sql)
    logical = session.planner.prepare(
        build_logical(parse_sql(sql), session.planner)
    )
    raw_result = raw_engine.execute(logical)

    def by_values(tuples):
        mapping = {}
        for row in tuples:
            mapping.setdefault(str(row.values), set()).update(
                row.annotation_ids()
            )
        return mapping

    summary_map = by_values(summary_result.tuples)
    raw_map = by_values(raw_result.tuples)
    assert summary_map == raw_map


def test_classifier_counts_match_raw_annotation_classification(small_workload):
    """Classifier counts must equal re-classifying the propagated raws."""
    session = small_workload.session
    result = session.query("SELECT name, species FROM birds")
    instance = session.catalog.get_instance("ClassBird1")
    for row in result.tuples:
        summary = row.summaries["ClassBird1"]
        raws = session.annotations.get_many(row.annotation_ids())
        expected = {label: 0 for label in instance.labels}
        for annotation in raws:
            expected[instance.analyze(annotation)] += 1
        assert dict(summary.counts()) == expected


def test_zoomin_returns_exactly_the_counted_annotations(small_workload):
    """Zoom-in on a classifier label returns exactly `count` annotations,
    all of which re-classify to that label."""
    session = small_workload.session
    result = session.query("SELECT name, species, region, weight FROM birds")
    instance = session.catalog.get_instance("ClassBird1")
    for index, label in enumerate(instance.labels, start=1):
        zoom = session.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON ClassBird1 INDEX {index}"
        )
        for match, row in zip(zoom.matches, result.tuples):
            assert len(match.annotations) == row.summaries["ClassBird1"].count(
                label
            )
            for annotation in match.annotations:
                assert instance.analyze(annotation) == label
