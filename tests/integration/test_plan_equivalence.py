"""EXP-QP3 functional check — Theorems 1-2 plan equivalence.

Equivalent query plans must propagate identical annotation summaries when
(and only when) the planner normalizes them: un-needed annotations are
projected out before any merge.  Without normalization, a plan that merges
first can bridge cluster groups through annotations that a project-first
plan never sees.
"""

import pytest

from repro import CellRef, InsightNotes
from repro.engine import plan as lp
from repro.engine.expressions import Column, Comparison


def canonical_summaries(result):
    rows = []
    for row in sorted(result.tuples, key=lambda t: str(t.values)):
        rendered = {
            name: sorted(obj.annotation_ids())
            for name, obj in row.summaries.items()
        }
        rows.append((row.values, rendered))
    return rows


def canonical_groupings(result, instance):
    rows = []
    for row in sorted(result.tuples, key=lambda t: str(t.values)):
        cluster = row.summaries[instance]
        rows.append(
            (row.values,
             frozenset(frozenset(g.member_ids) for g in cluster.groups))
        )
    return rows


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b", "c"])
    notes.create_table("S", ["x", "y", "z"])
    r = notes.insert("R", (1, 2, "c1"))
    s = notes.insert("S", (1, "y1", "z1"))
    notes.define_cluster("Cl", threshold=0.25)
    notes.link("Cl", "R")
    notes.link("Cl", "S")
    # The "bridge": one annotation shared by R and S, attached ONLY to
    # columns the query drops (r.c and s.y).  On R it clusters with the
    # r.a annotation; on S it clusters with the s.z annotation.  A
    # merge-first plan combines those two groups through the bridge and
    # only then projects it away, leaving ONE group; a project-first plan
    # removes the bridge before merging and keeps TWO groups.
    notes.add_annotation("observed feeding stonewort morning",
                         table="R", row_id=r, columns=["a"])
    notes.add_annotation("strange weather conditions today cold",
                         table="S", row_id=s, columns=["z"])
    notes.add_annotation(
        "observed feeding stonewort weather conditions cold",
        cells=[CellRef("R", r, "c"), CellRef("S", s, "y")],
    )
    yield notes
    notes.close()


def _plan_project_first():
    join = lp.Join(
        lp.Project(lp.Scan("R", "r"), ("r.a",)),
        lp.Project(lp.Scan("S", "s"), ("s.x", "s.z")),
        Comparison("=", Column("r.a"), Column("s.x")),
    )
    return lp.Project(join, ("r.a", "s.z"))


def _plan_merge_first():
    join = lp.Join(
        lp.Scan("R", "r"),
        lp.Scan("S", "s"),
        Comparison("=", Column("r.a"), Column("s.x")),
    )
    return lp.Project(join, ("r.a", "s.z"))


class TestTheorems1And2:
    def test_normalized_plans_agree(self, stack):
        stack.planner.normalize_plans = True
        first = stack.execute_logical(_plan_project_first())
        second = stack.execute_logical(_plan_merge_first())
        assert canonical_summaries(first) == canonical_summaries(second)
        assert canonical_groupings(first, "Cl") == canonical_groupings(
            second, "Cl"
        )

    def test_unnormalized_plans_can_disagree_on_grouping(self, stack):
        stack.planner.normalize_plans = False
        project_first = stack.execute_logical(_plan_project_first())
        merge_first = stack.execute_logical(_plan_merge_first())
        stack.planner.normalize_plans = True
        # Both keep the same surviving annotations...
        assert canonical_summaries(project_first) == canonical_summaries(
            merge_first
        )
        # ...but the merge-first plan bridged two groups through the
        # projected-out annotation, so the groupings differ.
        assert canonical_groupings(project_first, "Cl") != canonical_groupings(
            merge_first, "Cl"
        )

    def test_normalization_matches_project_first_semantics(self, stack):
        stack.planner.normalize_plans = False
        reference = stack.execute_logical(_plan_project_first())
        stack.planner.normalize_plans = True
        normalized = stack.execute_logical(_plan_merge_first())
        assert canonical_groupings(reference, "Cl") == canonical_groupings(
            normalized, "Cl"
        )

    def test_join_order_invariance_under_normalization(self, stack):
        # Add a second relation pairing to make both orders meaningful.
        sql_a = "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x"
        sql_b = "SELECT r.a, s.z FROM S s, R r WHERE s.x = r.a"
        first = stack.query(sql_a)
        second = stack.query(sql_b)
        assert canonical_summaries(first) == canonical_summaries(second)
