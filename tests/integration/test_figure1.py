"""FIG1 — Figure 1: raw annotations vs. annotation summaries on one tuple.

A tuple with hundreds of raw annotations must render as a handful of
compact summary objects (two classifiers, a cluster, a snippet), and the
summaries must be dramatically smaller than the raw payload.
"""

import pytest

from repro.workloads import WorkloadConfig, build_workload


@pytest.fixture(scope="module")
def figure1_workload():
    workload = build_workload(
        WorkloadConfig(
            num_birds=2,
            num_sightings=0,
            annotations_per_row=150,
            document_fraction=0.02,
            seed=42,
        )
    )
    yield workload
    workload.session.close()


class TestFigure1:
    def test_tuple_carries_hundreds_of_raw_annotations(self, figure1_workload):
        session = figure1_workload.session
        row_id = figure1_workload.bird_rows[0]
        assert len(session.annotations.annotation_ids_for_row("birds", row_id)) >= 150

    def test_summaries_cover_every_annotation(self, figure1_workload):
        session = figure1_workload.session
        result = session.query("SELECT name, species, region, weight FROM birds")
        row = result.tuples[0]
        all_ids = row.annotation_ids()
        classifier_ids = row.summaries["ClassBird1"].annotation_ids()
        cluster_ids = row.summaries["SimCluster"].annotation_ids()
        assert classifier_ids == all_ids
        assert cluster_ids == all_ids

    def test_figure1_summary_types_present(self, figure1_workload):
        result = figure1_workload.session.query("SELECT name FROM birds")
        summaries = result.tuples[0].summaries
        assert set(summaries) == {
            "ClassBird1", "ClassBird2", "SimCluster", "TextSummary1",
        }

    def test_classifier_counts_sum_to_annotation_count(self, figure1_workload):
        result = figure1_workload.session.query(
            "SELECT name, species, region, weight FROM birds"
        )
        row = result.tuples[0]
        total = sum(count for _, count in row.summaries["ClassBird1"].counts())
        assert total == len(row.attachments)

    def test_cluster_compresses_similar_annotations(self, figure1_workload):
        result = figure1_workload.session.query("SELECT name FROM birds")
        cluster = result.tuples[0].summaries["SimCluster"]
        # Grouping must be a real compression, not singletons.
        assert 1 <= len(cluster.groups) < len(cluster.annotation_ids())

    def test_snippet_summarizes_documents(self, figure1_workload):
        result = figure1_workload.session.query(
            "SELECT name, species, region, weight FROM birds"
        )
        snippets = [
            row.summaries["TextSummary1"] for row in result.tuples
        ]
        document_count = len(figure1_workload.document_ids)
        assert sum(len(s.entries) for s in snippets) == document_count
        for snippet in snippets:
            for entry in snippet.entries:
                assert len(entry.sentences) <= 2

    def test_summary_rendering_much_smaller_than_raw(self, figure1_workload):
        # The paper's point: what the scientist reads per tuple shrinks
        # from hundreds of texts to a few compact summary lines.
        from repro.gate.render import render_summaries

        session = figure1_workload.session
        result = session.query("SELECT name, species, region, weight FROM birds")
        row = result.tuples[0]
        rendered = render_summaries(row)
        raw_bytes = sum(
            len(a.text)
            for a in session.annotations.get_many(row.annotation_ids())
        )
        assert len(rendered) < raw_bytes / 2
