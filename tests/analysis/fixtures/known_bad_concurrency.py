# ruff: noqa
"""Seeded known-bad concurrency fixture for the insightlint self-check.

Every function below is *deliberately wrong*.  The file is linted by
``tests/analysis/test_interprocedural.py`` and by the CI lint self-check
step, which expect exactly these findings:

* ``cross_function_sql_under_lock`` — IN001 (interprocedural): SQL
  reached through a helper while holding ``fixture.state``;
* ``take_alpha_then_beta`` / ``take_beta_then_alpha`` — IN007: a
  two-lock acquisition-order inversion (``fixture.alpha`` and
  ``fixture.beta`` taken in opposite orders);
* ``blocking_wait_under_lock`` / ``drain_inbox_under_lock`` — IN008:
  unbounded blocking calls while holding ``fixture.state``.

It is never imported by the engine; if the linter stops reporting any
of these, the self-check fails — a canary against silently weakened
rules.
"""

import queue

from repro.concurrency import make_lock

_alpha = make_lock("fixture.alpha")
_beta = make_lock("fixture.beta")
_state = make_lock("fixture.state")

_inbox: "queue.Queue[int]" = queue.Queue()


def run_query(pool, sql):
    """Executes SQL — innocent on its own; the caller is the defect."""
    with pool.read() as connection:
        return connection.execute(sql, ())


def cross_function_sql_under_lock(pool):
    """IN001 (interprocedural): the helper reaches SQL under a lock."""
    with _state:
        return run_query(pool, "SELECT 1")


def take_alpha_then_beta():
    """One half of the IN007 inversion: alpha, then beta."""
    with _alpha:
        with _beta:
            return True


def take_beta_then_alpha():
    """The other half — the opposite order closes the 2-cycle."""
    with _beta:
        with _alpha:
            return True


def blocking_wait_under_lock(future):
    """IN008: unbounded ``Future.result()`` while holding a lock."""
    with _state:
        return future.result()


def drain_inbox_under_lock():
    """IN008: ``queue.get()`` with no timeout while holding a lock."""
    with _state:
        return _inbox.get()
