"""Rule-level tests for insightlint.

Every rule gets at least one positive fixture (the violation is caught)
and one negative fixture (the disciplined idiom passes).  Fixtures are
inline strings through :func:`lint_source`, never repo files — the rules
must stand on their own semantics, not on the current tree's contents.
"""

import textwrap

import pytest

from repro.analysis.lint import Baseline, Finding, lint_source


def lint(source: str, path: str = "repro/module.py", rules=None):
    return lint_source(textwrap.dedent(source), path=path, rule_ids=rules)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# -- IN001: no SQL under a lock ----------------------------------------


class TestNoSQLUnderLock:
    def test_execute_inside_lock_is_flagged(self):
        findings = lint(
            """
            class Store:
                def save(self, sql):
                    with self._lock:
                        self._db.execute(sql)
            """,
            rules=["IN001"],
        )
        assert rule_ids(findings) == ["IN001"]
        assert "inside a lock" in findings[0].message

    def test_pool_checkout_inside_lock_is_flagged(self):
        findings = lint(
            """
            class Store:
                def load(self):
                    with self._lock:
                        with self._pool.read() as connection:
                            return connection
            """,
            rules=["IN001"],
        )
        assert rule_ids(findings) == ["IN001"]
        assert "pool checkout" in findings[0].message

    def test_probe_under_lock_sql_outside_passes(self):
        findings = lint(
            """
            class Store:
                def load(self, key):
                    with self._lock:
                        cached = self._cache.get(key)
                    if cached is not None:
                        return cached
                    rows = self._db.fetch_all("SELECT 1")
                    with self._lock:
                        self._cache[key] = rows
                    return rows
            """,
            rules=["IN001"],
        )
        assert findings == []

    def test_nested_function_does_not_inherit_lock_context(self):
        # A closure defined under a lock runs when called, not where
        # defined — the SQL inside it is not "under the lock".
        findings = lint(
            """
            class Store:
                def load(self):
                    with self._lock:
                        def fetch():
                            return self._db.fetch_all("SELECT 1")
                    return fetch
            """,
            rules=["IN001"],
        )
        assert findings == []

    def test_allowlisted_fill_under_lock_site_passes(self):
        findings = lint(
            """
            class SummaryManager:
                def flush(self):
                    with self._lock:
                        self._catalog.save_object("inst", "t", 1, obj)
            """,
            path="src/repro/maintenance/incremental.py",
            rules=["IN001"],
        )
        assert findings == []

    def test_same_code_outside_allowlisted_module_is_flagged(self):
        findings = lint(
            """
            class SummaryManager:
                def flush(self):
                    with self._lock:
                        self._catalog.save_object("inst", "t", 1, obj)
            """,
            path="src/repro/engine/operators.py",
            rules=["IN001"],
        )
        assert rule_ids(findings) == ["IN001"]


# -- IN002: pool-only connections --------------------------------------


class TestPoolOnlyConnections:
    def test_raw_connect_outside_pool_is_flagged(self):
        findings = lint(
            """
            import sqlite3

            def open_db(path):
                return sqlite3.connect(path)
            """,
            rules=["IN002"],
        )
        assert rule_ids(findings) == ["IN002"]

    def test_from_import_of_connect_is_flagged(self):
        findings = lint(
            """
            from sqlite3 import connect
            """,
            rules=["IN002"],
        )
        assert rule_ids(findings) == ["IN002"]

    def test_connect_inside_pool_module_passes(self):
        findings = lint(
            """
            import sqlite3

            def connect(path):
                return sqlite3.connect(path, check_same_thread=False)
            """,
            path="src/repro/storage/pool.py",
            rules=["IN002"],
        )
        assert findings == []

    def test_pool_factory_usage_passes(self):
        findings = lint(
            """
            from repro.storage.pool import connect

            def open_db(path):
                return connect(path)
            """,
            rules=["IN002"],
        )
        assert findings == []

    def test_direct_connection_construction_is_flagged(self):
        findings = lint(
            """
            import sqlite3

            def open_db(path):
                return sqlite3.Connection(path)
            """,
            rules=["IN002"],
        )
        assert rule_ids(findings) == ["IN002"]

    def test_dbapi2_alias_is_flagged(self):
        findings = lint(
            """
            import sqlite3.dbapi2

            def open_db(path):
                return sqlite3.dbapi2.connect(path)
            """,
            rules=["IN002"],
        )
        assert rule_ids(findings) == ["IN002"]

    def test_from_import_of_connection_is_flagged(self):
        findings = lint(
            """
            from sqlite3 import Connection
            """,
            rules=["IN002"],
        )
        assert rule_ids(findings) == ["IN002"]

    def test_connection_type_annotation_passes(self):
        # sqlite3.Connection as a *type* is everywhere (signatures,
        # isinstance); only *calling* it opens a connection.
        findings = lint(
            """
            import sqlite3

            def tune(connection: sqlite3.Connection) -> None:
                if isinstance(connection, sqlite3.Connection):
                    connection.execute("PRAGMA foreign_keys = ON")
            """,
            rules=["IN002"],
        )
        assert findings == []


# -- IN003: parameterized-only SQL -------------------------------------


class TestParameterizedSQLOnly:
    def test_fstring_identifier_is_flagged(self):
        findings = lint(
            """
            def fetch(conn, table):
                return conn.execute(f"SELECT * FROM {table}")
            """,
            rules=["IN003"],
        )
        assert rule_ids(findings) == ["IN003"]
        assert "'table'" in findings[0].message

    def test_percent_formatting_is_flagged(self):
        findings = lint(
            """
            def fetch(db, table):
                return db.fetch_all("SELECT * FROM %s" % table)
            """,
            rules=["IN003"],
        )
        assert rule_ids(findings) == ["IN003"]

    def test_format_call_is_flagged(self):
        findings = lint(
            """
            def fetch(cursor, table):
                return cursor.execute("SELECT * FROM {}".format(table))
            """,
            rules=["IN003"],
        )
        assert rule_ids(findings) == ["IN003"]

    def test_local_built_from_fstring_is_flagged(self):
        findings = lint(
            """
            def fetch(conn, table):
                sql = f"SELECT * FROM {table}"
                return conn.execute(sql)
            """,
            rules=["IN003"],
        )
        assert rule_ids(findings) == ["IN003"]

    def test_parameterized_constant_passes(self):
        findings = lint(
            """
            def fetch(conn, row_id):
                return conn.execute(
                    "SELECT * FROM birds WHERE rowid = ?", (row_id,)
                )
            """,
            rules=["IN003"],
        )
        assert findings == []

    def test_vetted_helpers_and_module_constants_pass(self):
        findings = lint(
            """
            _STATE_TABLE = "sys_state"

            def fetch(conn, table, ids):
                marks = placeholders(len(ids))
                return conn.execute(
                    f"SELECT * FROM {quote_ident(table)} "
                    f"WHERE t = {_STATE_TABLE} AND id IN ({marks})",
                    ids,
                )
            """,
            rules=["IN003"],
        )
        assert findings == []

    def test_non_connection_receiver_is_not_checked(self):
        # session.execute / zoomin.execute are engine entry points that
        # take SQL text from the user; only connection-like receivers
        # (conn/cursor/db) are execute sites for this rule.
        findings = lint(
            """
            def run(session, sql_text):
                return session.execute(f"{sql_text}")
            """,
            rules=["IN003"],
        )
        assert findings == []


# -- IN004: copy-on-write summaries ------------------------------------


class TestCopyOnWriteSummaries:
    def test_mutating_cached_object_is_flagged(self):
        findings = lint(
            """
            def emit(self, row_id):
                obj = self._catalog.load_object("inst", "t", row_id)
                obj.add_annotation(1)
                return obj
            """,
            path="src/repro/engine/operators.py",
            rules=["IN004"],
        )
        assert rule_ids(findings) == ["IN004"]
        assert "for_query" in findings[0].message

    def test_attribute_assignment_into_cached_object_is_flagged(self):
        findings = lint(
            """
            def emit(self, row_id):
                obj = self._manager.current_object("inst", "t", row_id)
                obj.count = 0
            """,
            path="src/repro/engine/operators.py",
            rules=["IN004"],
        )
        assert rule_ids(findings) == ["IN004"]

    def test_mutation_of_bulk_loaded_value_is_flagged(self):
        findings = lint(
            """
            def emit(self):
                objects = self._catalog.load_objects_for_table("inst", "t")
                for obj in objects.values():
                    obj.fold(1)
            """,
            path="src/repro/engine/operators.py",
            rules=["IN004"],
        )
        assert rule_ids(findings) == ["IN004"]

    def test_for_query_copy_before_mutation_passes(self):
        findings = lint(
            """
            def emit(self, row_id):
                obj = self._catalog.load_object("inst", "t", row_id)
                obj = obj.for_query()
                obj.add_annotation(1)
                return obj
            """,
            path="src/repro/engine/operators.py",
            rules=["IN004"],
        )
        assert findings == []

    def test_maintenance_write_path_is_out_of_scope(self):
        # The write path mutates cached objects by design; IN004 only
        # applies to engine/zoomin modules.
        findings = lint(
            """
            def fold(self, row_id):
                obj = self._catalog.load_object("inst", "t", row_id)
                obj.add_annotation(1)
            """,
            path="src/repro/maintenance/incremental.py",
            rules=["IN004"],
        )
        assert findings == []


# -- IN005: no shared mutation in executor callables -------------------


class TestNoSharedMutationInExecutorCallables:
    def test_unlocked_attribute_assignment_is_flagged(self):
        findings = lint(
            """
            class Runner:
                def start(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    self.completed = True
            """,
            rules=["IN005"],
        )
        assert rule_ids(findings) == ["IN005"]
        assert "_work" in findings[0].message

    def test_lambda_mutation_is_flagged(self):
        findings = lint(
            """
            class Runner:
                def start(self, pool):
                    pool.submit(lambda: setattr(self, "done", True) or None)
            """,
            rules=["IN005"],
        )
        # setattr is a call, not an assignment statement — but a direct
        # lambda assignment cannot exist; verify assignments in named
        # callables are what the rule targets.
        assert findings == []

    def test_lock_protected_assignment_passes(self):
        findings = lint(
            """
            class Runner:
                def start(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    with self._lock:
                        self.completed = True
            """,
            rules=["IN005"],
        )
        assert findings == []

    def test_thread_local_assignment_passes(self):
        findings = lint(
            """
            class Runner:
                def start(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    self._local.buffer = []
            """,
            rules=["IN005"],
        )
        assert findings == []

    def test_function_never_submitted_is_not_checked(self):
        findings = lint(
            """
            class Runner:
                def run_inline(self):
                    self.completed = True
            """,
            rules=["IN005"],
        )
        assert findings == []


# -- IN006: no silent broad except -------------------------------------


class TestNoSilentBroadExcept:
    def test_silent_broad_except_is_flagged(self):
        findings = lint(
            """
            def load(path):
                try:
                    return read(path)
                except Exception:
                    pass
            """,
            rules=["IN006"],
        )
        assert rule_ids(findings) == ["IN006"]

    def test_bare_except_continue_is_flagged(self):
        findings = lint(
            """
            def drain(items):
                for item in items:
                    try:
                        handle(item)
                    except:
                        continue
            """,
            rules=["IN006"],
        )
        assert rule_ids(findings) == ["IN006"]

    def test_narrow_silent_except_passes(self):
        findings = lint(
            """
            def resolve(schema, name):
                try:
                    return lookup(schema, name)
                except ExpressionError:
                    return None
            """,
            rules=["IN006"],
        )
        assert findings == []

    def test_broad_except_that_logs_passes(self):
        findings = lint(
            """
            def load(path):
                try:
                    return read(path)
                except Exception as exc:
                    log.warning("load failed: %s", exc)
                    return None
            """,
            rules=["IN006"],
        )
        assert findings == []

    def test_broad_except_that_reraises_passes(self):
        findings = lint(
            """
            def load(path):
                try:
                    return read(path)
                except Exception:
                    cleanup()
                    raise
            """,
            rules=["IN006"],
        )
        assert findings == []


# -- suppression comments ----------------------------------------------


class TestSuppression:
    def test_trailing_disable_comment_silences_the_rule(self):
        findings = lint(
            """
            def fetch(conn, table):
                return conn.execute(f"SELECT * FROM {table}")  # insightlint: disable=IN003 -- vetted upstream
            """,
        )
        assert findings == []

    def test_standalone_comment_applies_to_next_line(self):
        findings = lint(
            """
            def fetch(conn, table):
                # insightlint: disable=IN003 -- vetted upstream
                return conn.execute(f"SELECT * FROM {table}")
            """,
        )
        assert findings == []

    def test_disable_without_rule_list_silences_everything(self):
        findings = lint(
            """
            def load(path):
                try:
                    return read(path)
                except Exception:  # insightlint: disable -- best effort
                    pass
            """,
        )
        assert findings == []

    def test_disable_of_other_rule_does_not_silence(self):
        findings = lint(
            """
            def fetch(conn, table):
                return conn.execute(f"SELECT * FROM {table}")  # insightlint: disable=IN006
            """,
        )
        assert rule_ids(findings) == ["IN003"]

    def test_directive_inside_string_literal_is_ignored(self):
        findings = lint(
            """
            def fetch(conn, table):
                note = "# insightlint: disable=IN003"
                return conn.execute(f"SELECT * FROM {table}")
            """,
        )
        assert rule_ids(findings) == ["IN003"]


# -- baseline ----------------------------------------------------------


def _finding(rule="IN003", path="repro/storage/x.py", line=1):
    return Finding(
        path=path, line=line, column=1, rule=rule,
        severity="error", message="m",
    )


class TestBaseline:
    def test_apply_splits_fresh_from_grandfathered(self):
        first, second = _finding(line=1), _finding(line=9)
        baseline = Baseline.from_findings([first])
        fresh, grandfathered = baseline.apply([first, second])
        assert fresh == [second]
        assert grandfathered == [first]

    def test_counts_cap_the_allowance(self):
        findings = [_finding(line=i) for i in range(1, 4)]
        baseline = Baseline.from_findings(findings[:2])
        fresh, grandfathered = baseline.apply(findings)
        assert len(grandfathered) == 2
        assert len(fresh) == 1

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(line=2)])
        target = tmp_path / "lint-baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == {"IN003::repro/storage/x.py": 2}

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_unsupported_version_is_rejected(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        target.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(target)

    def test_malformed_entries_are_rejected(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        target.write_text('{"version": 1, "entries": {"k": "two"}}')
        with pytest.raises(ValueError, match="malformed baseline entries"):
            Baseline.load(target)
