"""Tests for insightsan, the runtime lock-order sanitizer.

Every test builds a *private* :class:`SanitizerState` and swaps it in
with :func:`swap_state`, so manufactured violations never leak into the
ambient report when the suite itself runs under ``INSIGHT_SANITIZE=1``.
Locks are constructed directly as instrumented wrappers — the factory
plumbing is exercised separately via ``repro.concurrency``.
"""

import importlib.util
import json
import queue
import threading
from concurrent.futures import Future
from pathlib import Path

from repro.analysis import sanitizer
from repro.analysis.sanitizer import check as sanitizer_check
from repro.analysis.sanitizer.runtime import (
    InstrumentedLock,
    InstrumentedRLock,
    SanitizerState,
    blocking_patches,
    swap_state,
)
from repro.concurrency import LockSpec


def spec(name: str, kind: str = "lock", guards_io: bool = False) -> LockSpec:
    return LockSpec(name=name, kind=kind, guards_io=guards_io)


class TestLockOrderInversion:
    def test_two_lock_inversion_across_threads_is_reported(self):
        state = SanitizerState()
        alpha = InstrumentedLock(spec("test.alpha"), state)
        beta = InstrumentedLock(spec("test.beta"), state)
        forward_done = threading.Event()

        def forward():
            with alpha:
                with beta:
                    pass
            forward_done.set()

        def backward():
            forward_done.wait(timeout=5.0)
            with beta:
                with alpha:
                    pass

        with swap_state(state):
            first = threading.Thread(target=forward, name="san-fwd")
            second = threading.Thread(target=backward, name="san-bwd")
            first.start()
            second.start()
            first.join(timeout=5.0)
            second.join(timeout=5.0)

        (violation,) = state.violations
        assert violation.kind == "lock-order-inversion"
        assert violation.locks == ("test.alpha", "test.beta")
        assert "test.alpha" in violation.detail
        assert "test.beta" in violation.detail
        assert violation.witnesses  # each cycle edge carries a witness

    def test_consistent_order_produces_no_violation(self):
        state = SanitizerState()
        alpha = InstrumentedLock(spec("test.alpha"), state)
        beta = InstrumentedLock(spec("test.beta"), state)
        with swap_state(state):
            for _ in range(3):
                with alpha:
                    with beta:
                        pass
        assert state.violations == []
        assert list(state.order["test.alpha"]) == ["test.beta"]

    def test_same_role_nesting_is_a_tally_not_a_violation(self):
        # Two stripes of one striped lock share a name; nesting them is
        # interchangeable-stripe behavior, not an order inversion.
        state = SanitizerState()
        stripe_a = InstrumentedLock(spec("test.stripe"), state)
        stripe_b = InstrumentedLock(spec("test.stripe"), state)
        with swap_state(state):
            with stripe_a:
                with stripe_b:
                    pass
        assert state.violations == []
        assert state.same_role_nestings == {"test.stripe": 1}
        assert "test.stripe" not in state.order

    def test_rlock_reentry_is_invisible(self):
        state = SanitizerState()
        lock = InstrumentedRLock(spec("test.rlock", kind="rlock"), state)
        with swap_state(state):
            with lock:
                with lock:
                    pass
        assert state.acquisitions == 1
        assert state.violations == []


class TestBlockingUnderLock:
    def test_queue_get_under_lock_is_reported_with_lock_name(self):
        state = SanitizerState()
        lock = InstrumentedLock(spec("test.state"), state)
        inbox: "queue.Queue[int]" = queue.Queue()
        inbox.put(1)
        with swap_state(state), blocking_patches():
            with lock:
                assert inbox.get() == 1
        (violation,) = state.violations
        assert violation.kind == "blocking-under-lock"
        assert violation.locks == ("test.state",)
        assert "queue.Queue.get" in violation.detail

    def test_future_result_on_pending_future_is_reported(self):
        state = SanitizerState()
        lock = InstrumentedLock(spec("test.state"), state)
        future: "Future[int]" = Future()
        future.set_running_or_notify_cancel()
        timer = threading.Timer(0.05, future.set_result, args=(7,))
        timer.start()
        try:
            with swap_state(state), blocking_patches():
                with lock:
                    assert future.result() == 7
        finally:
            timer.join()
        (violation,) = state.violations
        assert violation.kind == "blocking-under-lock"
        assert "Future.result" in violation.detail

    def test_completed_future_result_is_not_blocking(self):
        state = SanitizerState()
        lock = InstrumentedLock(spec("test.state"), state)
        future: "Future[int]" = Future()
        future.set_result(1)
        with swap_state(state), blocking_patches():
            with lock:
                assert future.result() == 1
        assert state.violations == []

    def test_guards_io_lock_is_exempt(self):
        state = SanitizerState()
        lock = InstrumentedLock(
            spec("test.writer", guards_io=True), state
        )
        inbox: "queue.Queue[int]" = queue.Queue()
        inbox.put(1)
        with swap_state(state), blocking_patches():
            with lock:
                assert inbox.get() == 1
        assert state.violations == []

    def test_blocking_without_any_lock_is_fine(self):
        state = SanitizerState()
        inbox: "queue.Queue[int]" = queue.Queue()
        inbox.put(1)
        with swap_state(state), blocking_patches():
            assert inbox.get() == 1
        assert state.violations == []


class TestReportAndReset:
    def test_report_shape(self):
        state = SanitizerState()
        alpha = InstrumentedLock(spec("test.alpha"), state)
        beta = InstrumentedLock(spec("test.beta"), state)
        with swap_state(state):
            with alpha:
                with beta:
                    pass
        report = state.report()
        assert report["version"] == 1
        assert report["acquisitions"] == 2
        assert set(report["locks"]) == {"test.alpha", "test.beta"}
        (edge,) = report["order_edges"]
        assert (edge["from"], edge["to"]) == ("test.alpha", "test.beta")
        assert report["violations"] == []
        json.dumps(report)  # must be JSON-serializable as-is

    def test_reset_clears_graph_but_keeps_specs(self):
        state = SanitizerState()
        alpha = InstrumentedLock(spec("test.alpha"), state)
        with swap_state(state):
            with alpha:
                pass
        state.reset()
        assert state.acquisitions == 0
        assert state.order == {}
        assert "test.alpha" in state.lock_specs

    def test_duplicate_violations_are_deduplicated(self):
        state = SanitizerState()
        lock = InstrumentedLock(spec("test.state"), state)
        inbox: "queue.Queue[int]" = queue.Queue()
        inbox.put(1)
        inbox.put(2)
        with swap_state(state), blocking_patches():
            with lock:
                inbox.get()
                inbox.get()
        assert len(state.violations) == 1


class TestSeededFixtureAtRuntime:
    """The static canary's lock-order inversion, reproduced live: the
    same file insightlint flags (IN007) also trips the runtime
    sanitizer when its functions execute under the instrumented
    factory — static and runtime layers agree on the defect and speak
    the same lock names."""

    FIXTURE = (
        Path(__file__).resolve().parent
        / "fixtures"
        / "known_bad_concurrency.py"
    )

    def test_seeded_inversion_is_reported_by_the_sanitizer(self):
        state = SanitizerState()
        was_enabled = sanitizer.enabled()
        if not was_enabled:
            sanitizer.enable()
        try:
            with swap_state(state):
                module_spec = importlib.util.spec_from_file_location(
                    "known_bad_concurrency_fixture", self.FIXTURE
                )
                module = importlib.util.module_from_spec(module_spec)
                module_spec.loader.exec_module(module)
                module.take_alpha_then_beta()
                module.take_beta_then_alpha()
        finally:
            if not was_enabled:
                sanitizer.disable()
        inversions = [
            violation
            for violation in state.violations
            if violation.kind == "lock-order-inversion"
        ]
        (violation,) = inversions
        assert violation.locks == ("fixture.alpha", "fixture.beta")
        assert violation.witnesses


class TestCheckCommand:
    def test_clean_report_exits_zero(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"violations": [], "acquisitions": 5}))
        assert sanitizer_check.main([str(report)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_one_and_print(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        report.write_text(
            json.dumps(
                {
                    "violations": [
                        {
                            "kind": "lock-order-inversion",
                            "locks": ["a", "b"],
                            "detail": "a -> b -> a",
                            "site": "x.py:1 in f",
                            "witnesses": [],
                        }
                    ]
                }
            )
        )
        assert sanitizer_check.main([str(report)]) == 1
        out = capsys.readouterr().out
        assert "lock-order-inversion" in out
        assert "a -> b -> a" in out

    def test_missing_report_exits_two(self, tmp_path, capsys):
        assert sanitizer_check.main([str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().out
