"""Tests for insightlint v2: call graph, lock-context dataflow, and the
interprocedural rules (IN001 through helpers, IN005 through helpers,
IN007 lock-order consistency, IN008 blocking-under-lock).

Rule fixtures stay inline strings through :func:`lint_source` — project
rules see a single-module project, which is exactly the hermetic shape
these tests need.  The one on-disk fixture is the seeded known-bad file
the CI self-check lints; its test pins the canary contract.
"""

import textwrap
from pathlib import Path

from repro.analysis.lint import lint_source
from repro.analysis.lint.callgraph import Project, module_dotted_name
from repro.analysis.lint.framework import ModuleSource, parse_modules
from repro.analysis.lint.lockflow import get_lockflow

FIXTURE = (
    Path(__file__).resolve().parent / "fixtures" / "known_bad_concurrency.py"
)


def lint(source: str, path: str = "repro/module.py", rules=None):
    return lint_source(textwrap.dedent(source), path=path, rule_ids=rules)


def rule_ids(findings):
    return [finding.rule for finding in findings]


def project_from(source: str, path: str = "repro/module.py") -> Project:
    import ast

    text = textwrap.dedent(source)
    return Project([ModuleSource(path, text, ast.parse(text))])


# -- call graph ---------------------------------------------------------


class TestCallGraph:
    def test_module_dotted_name_strips_src_prefix(self):
        assert module_dotted_name("src/repro/engine/cost.py") == (
            "repro.engine.cost"
        )
        assert module_dotted_name("repro/engine/__init__.py") == (
            "repro.engine"
        )

    def test_bare_name_call_resolves_to_module_function(self):
        project = project_from(
            """
            def helper():
                return 1

            def caller():
                return helper()
            """
        )
        (site,) = project.graph.calls["repro/module.py::caller"]
        assert site.callee == "repro/module.py::helper"

    def test_self_method_call_resolves_through_class(self):
        project = project_from(
            """
            class Engine:
                def run(self):
                    return self._step()

                def _step(self):
                    return 1
            """
        )
        (site,) = project.graph.calls["repro/module.py::Engine.run"]
        assert site.callee == "repro/module.py::Engine._step"

    def test_self_method_resolves_through_base_class(self):
        project = project_from(
            """
            class Base:
                def _step(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self._step()
            """
        )
        (site,) = project.graph.calls["repro/module.py::Child.run"]
        assert site.callee == "repro/module.py::Base._step"

    def test_ambiguous_method_name_produces_no_edge(self):
        # Two unrelated classes define .put(); obj.put() must not guess.
        project = project_from(
            """
            class A:
                def put(self):
                    return 1

            class B:
                def put(self):
                    return 2

            def caller(store):
                return store.put()
            """
        )
        assert project.graph.calls.get("repro/module.py::caller", []) == []

    def test_lock_attribute_resolves_to_registered_name(self):
        project = project_from(
            """
            from repro.concurrency import make_lock

            class Engine:
                def __init__(self):
                    self._lock = make_lock("engine.demo")

                def run(self):
                    with self._lock:
                        return 1
            """
        )
        flow = get_lockflow(project)
        (region,) = flow.regions["repro/module.py::Engine.run"]
        (lock,) = region.locks
        assert lock.name == "engine.demo"
        assert lock.registered is True

    def test_unregistered_lock_gets_synthetic_name(self):
        project = project_from(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._table_lock = threading.Lock()

                def run(self):
                    with self._table_lock:
                        return 1
            """
        )
        flow = get_lockflow(project)
        (region,) = flow.regions["repro/module.py::Engine.run"]
        (lock,) = region.locks
        assert lock.registered is False
        assert "_table_lock" in lock.name


class TestLockFlow:
    def test_sql_reachability_is_transitive(self):
        project = project_from(
            """
            def leaf(pool):
                return pool.execute("SELECT 1")

            def middle(pool):
                return leaf(pool)

            def top(pool):
                return middle(pool)
            """
        )
        flow = get_lockflow(project)
        for name in ("leaf", "middle", "top"):
            assert f"repro/module.py::{name}" in flow.sql_reachable

    def test_lock_acquires_propagate_to_callers(self):
        project = project_from(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.inner")

            def inner():
                with _lock:
                    return 1

            def outer():
                return inner()
            """
        )
        flow = get_lockflow(project)
        acquired = flow.lock_acquires["repro/module.py::outer"]
        assert {lock.name for lock in acquired} == {"demo.inner"}


# -- IN001 interprocedural ----------------------------------------------


IN001_HELPER_SOURCE = """
from repro.concurrency import make_lock

_lock = make_lock("demo.state")


def run_query(pool):
    return pool.execute("SELECT 1")


def caller(pool):
    with _lock:
        return run_query(pool)
"""


class TestInterproceduralSQLUnderLock:
    def test_helper_sql_under_lock_is_flagged_at_call_site(self):
        findings = lint(IN001_HELPER_SOURCE, rules=["IN001"])
        assert rule_ids(findings) == ["IN001"]
        (finding,) = findings
        assert "run_query" in finding.message
        assert "demo.state" in finding.message
        # Anchored at the call site inside `caller`, not in the helper.
        assert finding.line == 13

    def test_suppression_at_call_site_suppresses(self):
        source = IN001_HELPER_SOURCE.replace(
            "return run_query(pool)",
            "return run_query(pool)  # insightlint: disable=IN001",
        )
        assert lint(source, rules=["IN001"]) == []

    def test_suppression_on_helper_definition_does_not_suppress(self):
        # The callee is innocent; a disable comment on its definition
        # must not silence the caller's defect.
        source = IN001_HELPER_SOURCE.replace(
            "def run_query(pool):",
            "def run_query(pool):  # insightlint: disable=IN001",
        )
        findings = lint(source, rules=["IN001"])
        assert rule_ids(findings) == ["IN001"]

    def test_guards_io_lock_is_exempt(self):
        source = IN001_HELPER_SOURCE.replace(
            'make_lock("demo.state")',
            'make_lock("demo.writer", guards_io=True)',
        )
        assert lint(source, rules=["IN001"]) == []

    def test_sql_outside_lock_through_helper_passes(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def run_query(pool):
                return pool.execute("SELECT 1")


            def caller(pool):
                with _lock:
                    cached = True
                return run_query(pool)
            """,
            rules=["IN001"],
        )
        assert findings == []


# -- IN005 interprocedural ----------------------------------------------


class TestInterproceduralExecutorMutation:
    def test_unguarded_helper_write_is_flagged_at_submit_site(self):
        findings = lint(
            """
            class Engine:
                def run(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    self._bump()

                def _bump(self):
                    self.count += 1
            """,
            rules=["IN005"],
        )
        assert rule_ids(findings) == ["IN005"]
        (finding,) = findings
        assert "_bump" in finding.message
        assert finding.line == 4  # the submit call

    def test_guarded_helper_write_passes(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            class Engine:
                def __init__(self):
                    self._lock = make_lock("demo.engine")

                def run(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    self._bump()

                def _bump(self):
                    with self._lock:
                        self.count += 1
            """,
            rules=["IN005"],
        )
        assert findings == []

    def test_helper_init_is_not_flagged(self):
        # __init__ runs at construction, before publication to workers.
        findings = lint(
            """
            class Worker:
                def __init__(self):
                    self.count = 0

            class Engine:
                def run(self, pool):
                    pool.submit(self._work)

                def _work(self):
                    return Worker()
            """,
            rules=["IN005"],
        )
        assert findings == []


# -- IN007 lock-order consistency ---------------------------------------


class TestLockOrderConsistency:
    def test_two_lock_inversion_is_one_finding(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _a = make_lock("demo.alpha")
            _b = make_lock("demo.beta")


            def forward():
                with _a:
                    with _b:
                        pass


            def backward():
                with _b:
                    with _a:
                        pass
            """,
            rules=["IN007"],
        )
        assert rule_ids(findings) == ["IN007"]
        (finding,) = findings
        assert "demo.alpha" in finding.message
        assert "demo.beta" in finding.message
        assert "potential deadlock" in finding.message

    def test_consistent_order_passes(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _a = make_lock("demo.alpha")
            _b = make_lock("demo.beta")


            def one():
                with _a:
                    with _b:
                        pass


            def two():
                with _a:
                    with _b:
                        pass
            """,
            rules=["IN007"],
        )
        assert findings == []

    def test_inversion_through_helper_call_is_flagged(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _a = make_lock("demo.alpha")
            _b = make_lock("demo.beta")


            def take_alpha():
                with _a:
                    pass


            def forward():
                with _a:
                    with _b:
                        pass


            def backward():
                with _b:
                    take_alpha()
            """,
            rules=["IN007"],
        )
        assert rule_ids(findings) == ["IN007"]

    def test_same_name_striped_locks_are_not_an_edge(self):
        # Two stripes of one striped lock share a name; nesting them is
        # the sanitizer's same-role tally, not a static order edge.
        findings = lint(
            """
            from repro.concurrency import make_lock

            class Stripe:
                def __init__(self):
                    self.lock = make_lock("demo.stripe")


            def transfer(a, b):
                with a.lock:
                    with b.lock:
                        pass
            """,
            rules=["IN007"],
        )
        assert findings == []


# -- IN008 blocking under lock ------------------------------------------


class TestNoBlockingUnderLock:
    def test_future_result_under_lock_is_flagged(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def wait(future):
                with _lock:
                    return future.result()
            """,
            rules=["IN008"],
        )
        assert rule_ids(findings) == ["IN008"]
        assert "demo.state" in findings[0].message

    def test_future_result_with_timeout_passes(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def wait(future):
                with _lock:
                    return future.result(timeout=5.0)
            """,
            rules=["IN008"],
        )
        assert findings == []

    def test_blocking_reached_through_helper_is_flagged(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def drain(work_queue):
                return work_queue.get()


            def locked_drain(work_queue):
                with _lock:
                    return drain(work_queue)
            """,
            rules=["IN008"],
        )
        assert rule_ids(findings) == ["IN008"]
        assert "drain" in findings[0].message

    def test_guards_io_lock_is_exempt(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _io = make_lock("demo.writer", guards_io=True)


            def wait(future):
                with _io:
                    return future.result()
            """,
            rules=["IN008"],
        )
        assert findings == []

    def test_dict_get_is_not_blocking(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def read(cache, key):
                with _lock:
                    return cache.get(key)
            """,
            rules=["IN008"],
        )
        assert findings == []

    def test_suppression_at_call_site_suppresses(self):
        findings = lint(
            """
            from repro.concurrency import make_lock

            _lock = make_lock("demo.state")


            def wait(future):
                with _lock:
                    return future.result()  # insightlint: disable=IN008
            """,
            rules=["IN008"],
        )
        assert findings == []


# -- the seeded CI canary ------------------------------------------------


class TestSeededFixture:
    def test_known_bad_fixture_reports_all_three_rules(self):
        source = FIXTURE.read_text()
        findings = lint_source(
            source, path="tests/analysis/fixtures/known_bad_concurrency.py"
        )
        assert set(rule_ids(findings)) == {"IN001", "IN007", "IN008"}
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        assert len(by_rule["IN001"]) == 1
        assert len(by_rule["IN007"]) == 1
        assert len(by_rule["IN008"]) == 2
        assert "fixture.alpha" in by_rule["IN007"][0].message
        assert "fixture.beta" in by_rule["IN007"][0].message
