"""Tests for the named-lock registry (``repro.concurrency``).

The inventory pin at the bottom is deliberate friction: adding a lock
to the engine requires naming it here *and* in DESIGN.md §15's table,
which forces a review of its place in the acquisition order.
"""

import ast
import threading
from pathlib import Path

import pytest

from repro.concurrency import (
    LockSpec,
    install_lock_factory,
    lock_inventory,
    make_lock,
    make_rlock,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestRegistry:
    def test_make_lock_returns_a_working_mutex(self):
        lock = make_lock("testreg.plain")
        assert lock.acquire(blocking=False)
        lock.release()
        with lock:
            pass

    def test_make_rlock_is_reentrant(self):
        lock = make_rlock("testreg.reentrant")
        with lock:
            with lock:
                pass

    def test_invalid_name_is_rejected(self):
        for bad in ("nodot", "Upper.case", "trailing.", ".leading", "a.1x"):
            with pytest.raises(ValueError, match="dotted lowercase"):
                make_lock(bad)

    def test_same_shape_re_registration_is_fine(self):
        make_lock("testreg.stable")
        make_lock("testreg.stable")
        assert lock_inventory()["testreg.stable"] == LockSpec(
            name="testreg.stable", kind="lock", guards_io=False
        )

    def test_shape_conflict_is_rejected(self):
        make_lock("testreg.conflict")
        with pytest.raises(ValueError, match="different"):
            make_rlock("testreg.conflict")
        with pytest.raises(ValueError, match="different"):
            make_lock("testreg.conflict", guards_io=True)

    def test_inventory_records_every_name(self):
        make_lock("testreg.listed", guards_io=True)
        spec = lock_inventory()["testreg.listed"]
        assert spec.kind == "lock"
        assert spec.guards_io is True


@pytest.fixture
def restore_factory():
    """Put back whatever factory was installed (the ambient sanitizer's,
    when the suite runs under ``INSIGHT_SANITIZE=1``)."""
    import repro.concurrency as concurrency

    previous = concurrency._factory
    yield
    install_lock_factory(previous)


class TestFactoryHook:
    def test_installed_factory_builds_the_locks(self, restore_factory):
        built: list[LockSpec] = []

        def factory(spec: LockSpec):
            built.append(spec)
            return threading.Lock()

        install_lock_factory(factory)
        make_lock("testreg.hooked")
        assert [spec.name for spec in built] == ["testreg.hooked"]

    def test_none_restores_plain_threading_locks(self, restore_factory):
        install_lock_factory(None)
        lock = make_lock("testreg.plain_again")
        # Plain threading locks have no .spec attribute.
        assert not hasattr(lock, "spec")


#: The documented lock-name inventory (DESIGN.md §15).  One entry per
#: ``make_lock``/``make_rlock`` site in ``src/repro`` — adding a lock
#: without updating this table (and the design doc) fails the test.
DOCUMENTED_INVENTORY = {
    "annotations.id_sequence": ("lock", True),
    "catalog.cache": ("lock", False),
    "catalog.instances": ("lock", False),
    "database.rowid": ("lock", False),
    "database.schema": ("lock", False),
    "database.trace": ("lock", False),
    "database.trace_counter": ("lock", False),
    "engine.cost_stats": ("lock", False),
    "engine.execution_stats": ("lock", False),
    "engine.planner_counters": ("lock", False),
    "engine.results": ("lock", False),
    "maintenance.summary_manager": ("rlock", True),
    "pool.registry": ("lock", False),
    "pool.stats": ("lock", False),
    "pool.write": ("rlock", True),
    "serve.stats": ("lock", False),
    "zoomin.cache": ("rlock", False),
    "zoomin.flight_stripe": ("lock", False),
    "zoomin.store_txn": ("lock", True),
    "zoomin.tiered": ("lock", False),
    "zoomin.traces": ("lock", False),
}


def _scan_lock_sites() -> dict[str, tuple[str, bool]]:
    """Every literal ``make_lock``/``make_rlock`` name in the tree."""
    sites: dict[str, tuple[str, bool]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            else:
                continue
            if callee not in ("make_lock", "make_rlock"):
                continue
            if not (node.args and isinstance(node.args[0], ast.Constant)):
                continue
            kind = "rlock" if callee == "make_rlock" else "lock"
            guards_io = any(
                keyword.arg == "guards_io"
                and getattr(keyword.value, "value", False) is True
                for keyword in node.keywords
            )
            sites[node.args[0].value] = (kind, guards_io)
    return sites


def test_lock_inventory_matches_the_documented_table():
    assert _scan_lock_sites() == DOCUMENTED_INVENTORY
