"""Tests for repro.analysis.reports."""

import pytest

from repro import InsightNotes
from repro.analysis import (
    annotation_coverage,
    contested_rows,
    hot_rows,
    label_distribution,
)
from repro.errors import CatalogError


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("m", ["station", "value"])
    ok = notes.insert("m", ("s1", 10))
    bad = notes.insert("m", ("s2", 99))
    worse = notes.insert("m", ("s3", -5))
    silent = notes.insert("m", ("s4", 7))
    notes.define_classifier("Beliefs", ["refute", "approve"], [
        ("wrong value reject this", "refute"),
        ("impossible entry remove it", "refute"),
        ("confirmed and verified", "approve"),
        ("looks correct to me", "approve"),
    ])
    notes.link("Beliefs", "m")
    notes.add_annotation("confirmed and verified", table="m", row_id=ok)
    notes.add_annotation("wrong value reject", table="m", row_id=bad)
    notes.add_annotation("confirmed correct", table="m", row_id=bad)
    notes.add_annotation("wrong value remove", table="m", row_id=bad)
    notes.add_annotation("impossible entry remove", table="m", row_id=worse)
    notes.add_annotation("wrong value reject", table="m", row_id=worse)
    notes.add_annotation("remove this impossible entry", table="m",
                         row_id=worse)
    yield notes, {"ok": ok, "bad": bad, "worse": worse, "silent": silent}
    notes.close()


class TestContestedRows:
    def test_finds_and_ranks_by_margin(self, stack):
        notes, rows = stack
        contested = contested_rows(notes, "m", "Beliefs", "refute", "approve")
        assert [c.row_id for c in contested] == [rows["worse"], rows["bad"]]
        assert contested[0].margin == 3
        assert contested[1].margin == 1

    def test_approved_rows_excluded(self, stack):
        notes, rows = stack
        contested = contested_rows(notes, "m", "Beliefs", "refute", "approve")
        assert rows["ok"] not in [c.row_id for c in contested]

    def test_requires_classifier_instance(self, stack):
        notes, _rows = stack
        notes.define_cluster("Cl")
        notes.link("Cl", "m")
        with pytest.raises(CatalogError, match="expected a Classifier"):
            contested_rows(notes, "m", "Cl", "a", "b")

    def test_values_carried(self, stack):
        notes, rows = stack
        contested = contested_rows(notes, "m", "Beliefs", "refute", "approve")
        assert contested[0].values == ("s3", -5)


class TestLabelDistribution:
    def test_table_wide_histogram(self, stack):
        notes, _rows = stack
        distribution = label_distribution(notes, "m", "Beliefs")
        assert distribution == {"refute": 5, "approve": 2}

    def test_empty_table(self, stack):
        notes, _rows = stack
        notes.create_table("empty", ["v"])
        notes.link("Beliefs", "empty")
        assert label_distribution(notes, "empty", "Beliefs") == {}


class TestCoverage:
    def test_coverage_report(self, stack):
        notes, rows = stack
        report = annotation_coverage(notes, "m")
        assert report.row_count == 4
        assert report.annotated_rows == 3
        assert report.total_attachments == 7
        assert report.silent_row_ids == (rows["silent"],)
        assert report.coverage == pytest.approx(0.75)
        assert report.mean_annotations_per_row == pytest.approx(7 / 4)

    def test_empty_table_coverage(self, stack):
        notes, _rows = stack
        notes.create_table("none", ["v"])
        report = annotation_coverage(notes, "none")
        assert report.row_count == 0
        assert report.coverage == 0.0


class TestHotRows:
    def test_ranked_by_annotation_count(self, stack):
        notes, rows = stack
        # "bad" and "worse" tie at 3 annotations; row id breaks the tie.
        ranked = hot_rows(notes, "m", limit=3)
        assert [entry[0] for entry in ranked] == [
            rows["bad"], rows["worse"], rows["ok"],
        ]
        assert ranked[0][2] == ranked[1][2] == 3
        assert ranked[2][2] == 1

    def test_limit_respected(self, stack):
        notes, _rows = stack
        assert len(hot_rows(notes, "m", limit=1)) == 1

    def test_reports_never_touch_raw_text(self, stack):
        """The analyses must run entirely off summaries + attachments."""
        notes, _rows = stack
        # Sever the raw bodies: blank out every annotation body directly
        # in storage.  All reports must still produce identical numbers.
        with notes.db.connection:
            notes.db.connection.execute(
                "UPDATE _in_annotations SET body = ''"
            )
        notes.manager.drop_caches()
        assert label_distribution(notes, "m", "Beliefs") == {
            "refute": 5, "approve": 2,
        }
        assert annotation_coverage(notes, "m").total_attachments == 7
