"""CLI-level tests for ``python -m repro.analysis.lint``.

Exercise the exit-code contract (0 clean / 1 findings / 2 usage), both
report formats, ``--output``, and the baseline workflow end to end on
temporary trees — plus one subprocess test proving the module entry
point works the way CI invokes it.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN_SOURCE = textwrap.dedent(
    """
    def fetch(conn, row_id):
        return conn.execute("SELECT * FROM birds WHERE rowid = ?", (row_id,))
    """
)

BAD_SOURCE = textwrap.dedent(
    """
    def fetch(conn, table):
        return conn.execute(f"SELECT * FROM {table}")
    """
)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A temp working tree; lint paths and baseline files live here."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write_module(tree: Path, name: str, source: str) -> Path:
    target = tree / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        write_module(tree, "pkg/clean.py", CLEAN_SOURCE)
        assert main(["pkg"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tree, capsys):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg"]) == 1
        out = capsys.readouterr().out
        assert "IN003" in out
        assert "pkg/bad.py" in out

    def test_unparseable_file_exits_one(self, tree, capsys):
        write_module(tree, "pkg/broken.py", "def broken(:\n")
        assert main(["pkg"]) == 1
        assert "IN000" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tree):
        with pytest.raises(SystemExit) as excinfo:
            main(["no/such/dir"])
        assert excinfo.value.code == 2

    def test_bad_baseline_file_exits_two(self, tree, capsys):
        write_module(tree, "pkg/clean.py", CLEAN_SOURCE)
        (tree / "lint-baseline.json").write_text("{not json")
        assert main(["pkg", "--baseline"]) == 2
        assert "bad baseline file" in capsys.readouterr().err


class TestFormats:
    def test_json_report_shape(self, tree, capsys):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["failed"] is True
        assert payload["summary"]["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "IN003"
        assert finding["path"] == "pkg/bad.py"
        assert finding["line"] >= 1

    def test_output_writes_report_file_and_prints_summary(
        self, tree, capsys
    ):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        report_path = tree / "report.json"
        code = main(
            ["pkg", "--format", "json", "--output", str(report_path)]
        )
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["summary"]["findings"] == 1
        assert "1 finding(s)" in capsys.readouterr().out

    def test_list_rules_names_all_eight(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "IN001",
            "IN002",
            "IN003",
            "IN004",
            "IN005",
            "IN006",
            "IN007",
            "IN008",
        ):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_fix_baseline_then_baseline_run_passes(self, tree, capsys):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--fix-baseline"]) == 0
        entries = json.loads((tree / "lint-baseline.json").read_text())
        assert entries == {
            "version": 1,
            "entries": {"IN003::pkg/bad.py": 1},
        }
        capsys.readouterr()
        assert main(["pkg", "--baseline"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_violation_in_baselined_file_still_fails(self, tree):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--fix-baseline"]) == 0
        write_module(
            tree,
            "pkg/bad.py",
            BAD_SOURCE
            + "\n\ndef more(conn, t):\n"
            '    return conn.execute(f"DROP TABLE {t}")\n',
        )
        assert main(["pkg", "--baseline"]) == 1

    def test_baseline_flag_without_file_behaves_like_empty(self, tree):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--baseline"]) == 1

    def test_fix_baseline_shrinks_entry_when_count_drops(self, tree):
        # Two violations grandfathered; fixing one must shrink the
        # allowance to 1, not leave a stale slot for a regression to
        # hide under.
        two_bad = BAD_SOURCE + (
            "\n\ndef more(conn, t):\n"
            '    return conn.execute(f"DROP TABLE {t}")\n'
        )
        write_module(tree, "pkg/bad.py", two_bad)
        assert main(["pkg", "--fix-baseline"]) == 0
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["entries"] == {"IN003::pkg/bad.py": 2}
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--fix-baseline"]) == 0
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["entries"] == {"IN003::pkg/bad.py": 1}

    def test_fix_baseline_drops_entry_when_file_is_clean(self, tree):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        assert main(["pkg", "--fix-baseline"]) == 0
        write_module(tree, "pkg/bad.py", CLEAN_SOURCE)
        assert main(["pkg", "--fix-baseline"]) == 0
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["entries"] == {}

    def test_fix_baseline_preserves_entries_outside_linted_paths(
        self, tree
    ):
        # Refreshing from a subset of the tree must not wipe other
        # files' grandfathered debt.
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        write_module(tree, "other/also_bad.py", BAD_SOURCE)
        (tree / "lint-baseline.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": {"IN003::other/also_bad.py": 1},
                }
            )
        )
        assert main(["pkg", "--fix-baseline"]) == 0
        payload = json.loads((tree / "lint-baseline.json").read_text())
        assert payload["entries"] == {
            "IN003::other/also_bad.py": 1,
            "IN003::pkg/bad.py": 1,
        }


class TestRuleSelection:
    def test_rules_flag_restricts_the_rule_set(self, tree, capsys):
        write_module(tree, "pkg/bad.py", BAD_SOURCE)
        # The file violates IN003 but not IN006 — restricting to IN006
        # must pass, restricting to IN003 must fail.
        assert main(["pkg", "--rules", "IN006"]) == 0
        capsys.readouterr()
        assert main(["pkg", "--rules", "IN003"]) == 1
        assert "IN003" in capsys.readouterr().out

    def test_unknown_rule_id_is_a_usage_error(self, tree, capsys):
        write_module(tree, "pkg/clean.py", CLEAN_SOURCE)
        assert main(["pkg", "--rules", "IN999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_jobs_flag_parses_in_parallel(self, tree, capsys):
        for index in range(6):
            write_module(tree, f"pkg/mod_{index}.py", CLEAN_SOURCE)
        assert main(["pkg", "--jobs", "4"]) == 0
        assert "6 file(s)" in capsys.readouterr().out


class TestChangedOnly:
    def _git(self, tree: Path, *argv: str) -> None:
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=lint@test",
                "-c",
                "user.name=lint",
                *argv,
            ],
            cwd=tree,
            check=True,
            capture_output=True,
        )

    def test_changed_only_reports_only_changed_files(self, tree, capsys):
        # A committed violation is invisible to --changed-only; a fresh
        # (untracked) one still fails the run.
        write_module(tree, "pkg/old_bad.py", BAD_SOURCE)
        self._git(tree, "init", "-q")
        self._git(tree, "add", ".")
        self._git(tree, "commit", "-qm", "seed")
        write_module(tree, "pkg/new_bad.py", BAD_SOURCE)
        assert main(["pkg", "--changed-only"]) == 1
        out = capsys.readouterr().out
        assert "new_bad.py" in out
        assert "old_bad.py" not in out


def test_module_entry_point_subprocess(tmp_path):
    """``python -m repro.analysis.lint`` exits non-zero on a known-bad
    fixture — the exact invocation the CI self-check step performs."""
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    completed = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(bad)],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    assert completed.returncode == 1
    assert "IN003" in completed.stdout
