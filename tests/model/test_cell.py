"""Tests for repro.model.cell."""

from repro.model.cell import CellRef, ColumnRef


class TestColumnRef:
    def test_str(self):
        assert str(ColumnRef("birds", "name")) == "birds.name"

    def test_hashable_and_equal(self):
        assert ColumnRef("t", "c") == ColumnRef("t", "c")
        assert len({ColumnRef("t", "c"), ColumnRef("t", "c")}) == 1


class TestCellRef:
    def test_str(self):
        assert str(CellRef("birds", 3, "name")) == "birds[3].name"

    def test_column_ref(self):
        cell = CellRef("birds", 3, "name")
        assert cell.column_ref == ColumnRef("birds", "name")

    def test_distinct_rows_differ(self):
        assert CellRef("t", 1, "c") != CellRef("t", 2, "c")

    def test_usable_as_dict_key(self):
        mapping = {CellRef("t", 1, "c"): "value"}
        assert mapping[CellRef("t", 1, "c")] == "value"
