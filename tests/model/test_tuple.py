"""Tests for repro.model.tuple."""

from repro.model.tuple import AnnotatedTuple
from repro.summaries.classifier import ClassifierSummary


def _tuple_with_attachments() -> AnnotatedTuple:
    return AnnotatedTuple(
        values=(1, "x", 2.5),
        attachments={
            1: frozenset({"t.a"}),
            2: frozenset({"t.a", "t.b"}),
            3: frozenset({"t.c"}),
        },
    )


class TestAnnotatedTuple:
    def test_annotation_ids(self):
        row = _tuple_with_attachments()
        assert row.annotation_ids() == frozenset({1, 2, 3})

    def test_annotations_on_columns(self):
        row = _tuple_with_attachments()
        assert row.annotations_on_columns(["t.a"]) == {1, 2}
        assert row.annotations_on_columns(["t.c"]) == {3}
        assert row.annotations_on_columns(["t.z"]) == set()

    def test_restrict_attachments_returns_dropped(self):
        row = _tuple_with_attachments()
        dropped = row.restrict_attachments(["t.a"])
        assert dropped == {3}
        assert row.attachments == {
            1: frozenset({"t.a"}),
            2: frozenset({"t.a"}),
        }

    def test_restrict_attachments_keeps_multi_column_survivors(self):
        row = _tuple_with_attachments()
        dropped = row.restrict_attachments(["t.b", "t.c"])
        assert dropped == {1}
        assert row.attachments[2] == frozenset({"t.b"})

    def test_restrict_to_nothing_drops_all(self):
        row = _tuple_with_attachments()
        dropped = row.restrict_attachments([])
        assert dropped == {1, 2, 3}
        assert row.attachments == {}

    def test_rename_attachment_columns(self):
        row = _tuple_with_attachments()
        row.rename_attachment_columns({"t.a": "u.a"})
        assert row.attachments[1] == frozenset({"u.a"})
        assert row.attachments[2] == frozenset({"u.a", "t.b"})

    def test_copy_is_independent(self):
        row = AnnotatedTuple(values=(1,))
        summary = ClassifierSummary("C", ["x", "y"])
        summary.add(1, "x")
        row.summaries["C"] = summary
        row.attachments[1] = frozenset({"t.a"})
        clone = row.copy()
        clone.summaries["C"].add(2, "y")
        clone.attachments[2] = frozenset({"t.b"})
        assert row.summaries["C"].annotation_ids() == frozenset({1})
        assert 2 not in row.attachments

    def test_total_summary_size(self):
        row = AnnotatedTuple(values=(1,))
        assert row.total_summary_size() == 0
        summary = ClassifierSummary("C", ["x"])
        summary.add(1, "x")
        row.summaries["C"] = summary
        assert row.total_summary_size() == summary.size_estimate()

    def test_source_rows_default_empty(self):
        assert AnnotatedTuple(values=()).source_rows == frozenset()
