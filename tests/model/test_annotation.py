"""Tests for repro.model.annotation."""

import pytest

from repro.model.annotation import Annotation, AnnotationKind


class TestAnnotation:
    def test_construction_defaults(self):
        annotation = Annotation(annotation_id=1, text="hello")
        assert annotation.author == "anonymous"
        assert annotation.kind is AnnotationKind.COMMENT
        assert annotation.title == ""

    def test_rejects_non_positive_id(self):
        with pytest.raises(ValueError, match="positive"):
            Annotation(annotation_id=0, text="x")
        with pytest.raises(ValueError, match="positive"):
            Annotation(annotation_id=-3, text="x")

    def test_is_document(self):
        comment = Annotation(annotation_id=1, text="x")
        document = Annotation(
            annotation_id=2, text="x", kind=AnnotationKind.DOCUMENT
        )
        assert not comment.is_document
        assert document.is_document

    def test_immutable(self):
        annotation = Annotation(annotation_id=1, text="x")
        with pytest.raises(AttributeError):
            annotation.text = "y"

    def test_display_title_prefers_title(self):
        annotation = Annotation(annotation_id=1, text="body", title="My Title")
        assert annotation.display_title() == "My Title"

    def test_display_title_short_body(self):
        annotation = Annotation(annotation_id=1, text="short body")
        assert annotation.display_title() == "short body"

    def test_display_title_truncates_long_body(self):
        annotation = Annotation(annotation_id=1, text="x" * 100)
        title = annotation.display_title()
        assert len(title) == 60
        assert title.endswith("...")

    def test_kind_str(self):
        assert str(AnnotationKind.COMMENT) == "comment"
        assert str(AnnotationKind.DOCUMENT) == "document"

    def test_kind_round_trips_through_value(self):
        for kind in AnnotationKind:
            assert AnnotationKind(kind.value) is kind

    def test_equality_is_structural(self):
        first = Annotation(annotation_id=1, text="x", created_at=5.0)
        second = Annotation(annotation_id=1, text="x", created_at=5.0)
        assert first == second
