"""TCP front end: JSON lines over a real socket, pipelining, teardown."""

from __future__ import annotations

import asyncio
import json

from repro.serve import AnnotationServer, ServerConfig, TcpAnnotationServer


def run(coroutine):
    return asyncio.run(coroutine)


async def started_tcp(**kwargs) -> TcpAnnotationServer:
    tcp = TcpAnnotationServer(AnnotationServer(**kwargs))
    await tcp.start("127.0.0.1", 0)
    return tcp


async def request(writer, reader, payload: dict) -> dict:
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


def test_roundtrip_over_socket():
    async def scenario():
        tcp = await started_tcp()
        try:
            host, port = tcp.address
            reader, writer = await asyncio.open_connection(host, port)
            assert (await request(writer, reader, {"op": "ping", "id": 0}))[
                "result"
            ]["pong"]
            created = await request(
                writer,
                reader,
                {"op": "execute", "statement": "CREATE TABLE t (a)", "id": 1},
            )
            assert created["ok"] is True
            inserted = await request(
                writer,
                reader,
                {"op": "insert", "table": "t", "rows": [[1], [2]], "id": 2},
            )
            assert inserted["result"]["row_ids"] == [1, 2]
            queried = await request(
                writer,
                reader,
                {"op": "query", "sql": "SELECT a FROM t", "id": 3},
            )
            assert [t["values"] for t in queried["result"]["tuples"]] == [
                [1],
                [2],
            ]
            writer.close()
        finally:
            await tcp.stop()

    run(scenario())


def test_pipelined_requests_correlate_by_id():
    async def scenario():
        tcp = await started_tcp()
        try:
            host, port = tcp.address
            reader, writer = await asyncio.open_connection(host, port)
            # Burst without awaiting responses: ids come back to match.
            writer.write(
                b'{"id": "a", "op": "execute", "statement": '
                b'"CREATE TABLE t (x)"}\n'
                b'{"id": "b", "op": "ping"}\n'
                b'{"id": "c", "op": "ping"}\n'
            )
            await writer.drain()
            responses = {}
            for _ in range(3):
                response = json.loads(await reader.readline())
                responses[response["id"]] = response
            assert set(responses) == {"a", "b", "c"}
            assert all(r["ok"] for r in responses.values())
            writer.close()
        finally:
            await tcp.stop()

    run(scenario())


def test_malformed_line_answers_400_and_connection_survives():
    async def scenario():
        tcp = await started_tcp()
        try:
            host, port = tcp.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            bad = json.loads(await reader.readline())
            assert bad["ok"] is False
            assert bad["error"]["code"] == 400
            # The connection is still usable afterwards.
            pong = await request(writer, reader, {"op": "ping", "id": 9})
            assert pong["result"]["pong"]
            writer.close()
        finally:
            await tcp.stop()

    run(scenario())


def test_overload_comes_back_as_429_payload():
    async def scenario():
        config = ServerConfig(
            readers=1, read_queue_depth=0, request_timeout_s=None
        )
        tcp = await started_tcp(config=config)
        try:
            host, port = tcp.address
            reader, writer = await asyncio.open_connection(host, port)
            await request(
                writer,
                reader,
                {"op": "execute", "statement": "CREATE TABLE t (a)", "id": 0},
            )
            # Pipeline more reads than the lane admits; with capacity 1
            # at least one must be refused with 429 and none may hang.
            burst = 6
            for i in range(burst):
                writer.write(
                    json.dumps(
                        {"op": "query", "sql": "SELECT a FROM t", "id": i}
                    ).encode()
                    + b"\n"
                )
            await writer.drain()
            responses = [
                json.loads(await reader.readline()) for _ in range(burst)
            ]
            codes = [
                r["error"]["code"] for r in responses if not r["ok"]
            ]
            assert all(code == 429 for code in codes)
            assert any(r["ok"] for r in responses)
            writer.close()
        finally:
            await tcp.stop()

    run(scenario())


def test_stop_closes_listener_and_drains_annotation_server(tmp_path):
    async def scenario():
        path = str(tmp_path / "served.db")
        tcp = await started_tcp(path=path)
        host, port = tcp.address
        reader, writer = await asyncio.open_connection(host, port)
        await request(
            writer,
            reader,
            {"op": "execute", "statement": "CREATE TABLE b (n)", "id": 0},
        )
        await request(
            writer, reader, {"op": "insert", "table": "b", "rows": [["x"]]}
        )
        await request(
            writer,
            reader,
            {
                "op": "add_annotations",
                "specs": [{"text": "note", "table": "b", "row_id": 1}],
            },
        )
        await tcp.stop()
        assert tcp.server.state == "stopped"
        # The listener is gone.
        try:
            await asyncio.open_connection(host, port)
        except OSError:
            pass
        else:  # pragma: no cover - would mean the socket leaked
            raise AssertionError("listener still accepting after stop()")
        # The ingested annotation was flushed and is durable.
        from repro import InsightNotes

        with InsightNotes(path) as reopened:
            assert reopened.annotations.count() == 1

    run(scenario())


def test_cli_parser_defaults():
    from repro.serve.__main__ import build_parser

    args = build_parser().parse_args([])
    assert args.path == ":memory:"
    assert args.port == 8765
    assert args.readers == 4
    args = build_parser().parse_args(
        ["--path", "x.db", "--port", "0", "--shards", "4", "--quiet"]
    )
    assert args.shards == 4
    assert args.quiet is True
