"""AnnotationServer happy paths: lanes, routing, stats, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import SQLSyntaxError, ServeError
from repro.serve import AnnotationServer, ServerConfig
from repro.serve.server import READ, WRITE


def run(coroutine):
    return asyncio.run(coroutine)


async def populated_server(**kwargs) -> AnnotationServer:
    server = AnnotationServer(**kwargs)
    await server.start()
    await server.execute("CREATE TABLE birds (name, species, weight)")
    await server.insert_many(
        "birds",
        [("Swan Goose", "Anser cygnoides", 3.2), ("Finch", "Fringilla", 0.2)],
    )
    server.session.define_classifier(
        "BirdClass",
        ["Behavior", "Disease"],
        [
            ("observed feeding on stonewort", "Behavior"),
            ("shows symptoms of avian influenza", "Disease"),
        ],
    )
    server.session.link("BirdClass", "birds")
    return server


def test_query_roundtrip_and_engine_stats():
    async def scenario():
        server = await populated_server()
        async with server:
            await server.add_annotations(
                [
                    {
                        "text": "observed feeding near the shore",
                        "table": "birds",
                        "row_id": 1,
                    }
                ]
            )
            result = await server.query("SELECT name FROM birds")
            assert [row[0] for row in result.rows()] == ["Swan Goose", "Finch"]
            snapshot = server.stats.snapshot()
            # The query's ExecutionStats counters were folded into the
            # server aggregate — the served system reports the same
            # trajectory the library benchmarks gate on.
            assert snapshot["engine"]["rows_scanned"] >= 2
            lanes = snapshot["lanes"]
            assert lanes[READ]["completed"] >= 1
            assert lanes[WRITE]["completed"] >= 3
            assert lanes[READ]["latency_ms"]["p99"] >= 0

    run(scenario())


def test_zoomin_on_reader_lane():
    async def scenario():
        server = await populated_server()
        async with server:
            await server.add_annotations(
                [
                    {
                        "text": "observed feeding on stonewort",
                        "table": "birds",
                        "row_id": 1,
                    }
                ]
            )
            result = await server.query("SELECT name, species FROM birds")
            zoom = await server.zoomin(
                f"ZOOMIN REFERENCE QID = {result.qid} ON BirdClass INDEX 1"
            )
            payload = zoom.to_json()
            assert payload["command"].startswith("ZOOMIN REFERENCE QID")
            assert payload["annotation_count"] >= 1
            assert payload["matches"][0]["annotations"][0]["text"]

    run(scenario())


def test_execute_routes_by_statement_kind():
    async def scenario():
        async with AnnotationServer() as server:
            await server.execute("CREATE TABLE t (a, b)")
            await server.execute("INSERT INTO t VALUES (1, 2)")
            result = await server.execute("SELECT a FROM t")
            assert result.rows() == [(1,)]
            lanes = server.stats.snapshot()["lanes"]
            assert lanes[WRITE]["admitted"] == 2  # CREATE + INSERT
            assert lanes[READ]["admitted"] == 1  # SELECT

    run(scenario())


def test_statistics_merges_session_and_server_counters():
    async def scenario():
        server = await populated_server()
        async with server:
            payload = await server.statistics()
            assert payload["tables"] == 1
            assert payload["rows"] == 2
            assert "lanes" in payload["server"]
            assert READ in payload["server"]["lanes"]

    run(scenario())


def test_engine_errors_propagate_and_count_as_failed():
    async def scenario():
        async with AnnotationServer() as server:
            with pytest.raises(SQLSyntaxError):
                await server.query("SELEKT nothing")
            # Give the done-callback a tick to record the outcome.
            await asyncio.sleep(0)
            lanes = server.stats.snapshot()["lanes"]
            assert lanes[READ]["failed"] == 1
            assert lanes[READ]["completed"] == 0

    run(scenario())


def test_stop_is_idempotent_and_flushes():
    async def scenario():
        server = await populated_server()
        await server.add_annotations(
            [{"text": "note", "table": "birds", "row_id": 1}]
        )
        await server.stop()
        assert server.state == "stopped"
        await server.stop()  # second stop is a no-op
        assert server.state == "stopped"

    run(scenario())


def test_config_validation():
    with pytest.raises(ServeError):
        ServerConfig(readers=0)
    with pytest.raises(ServeError):
        ServerConfig(writers=0)
    with pytest.raises(ServeError):
        ServerConfig(read_queue_depth=-1)
    with pytest.raises(ServeError):
        ServerConfig(request_timeout_s=0)
    with pytest.raises(ServeError):
        AnnotationServer(session=object(), path=":memory:")  # type: ignore[arg-type]


def test_session_flush_without_close():
    from repro.engine.session import InsightNotes

    notes = InsightNotes()
    notes.create_table("t", ["a"])
    notes.insert("t", (1,))
    notes.flush()  # no deferred state is fine; session stays usable
    assert notes.query("SELECT a FROM t").rows() == [(1,)]
    notes.close()


def test_write_wait_counter_visible_in_pool_stats():
    from repro.engine.session import InsightNotes

    notes = InsightNotes()
    notes.create_table("t", ["a"])
    notes.insert("t", (1,))
    stats = notes.db.backend.counters()["0"]
    assert "write_wait_ms" in stats
    assert stats["write_wait_ms"] >= 0
    notes.close()
