"""Served stress: N async clients race a bulk-ingest writer.

The served analogue of ``tests/engine/test_concurrency.py``: reader
clients issue summary-aware queries and zoom-ins through the asyncio
front end while an ingest client streams bulk ``add_annotations``
batches through the writer lane.  Guarantees pinned:

1. every client request completes without error (capacities are sized
   to the offered load, so no 429s either);
2. every reader result is byte-identical to its serial replay — reader
   queries target ``birds``, which the ingest stream never touches, so
   results are deterministic even mid-ingest;
3. the race's writes are durable: after drain, the session holds
   exactly the annotations the ingest client sent.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import AnnotationServer, ServerConfig

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
]

QUERIES = [
    "SELECT name, species FROM birds WHERE weight < 20",
    "SELECT name FROM birds WHERE species = 'species3'",
    "SELECT name, weight FROM birds WHERE weight >= 30 "
    "ORDER BY name LIMIT 10",
    "SELECT species, COUNT(*) FROM birds GROUP BY species",
    "SELECT name FROM birds "
    "WHERE SUMMARY_COUNT('BirdClass', 'Behavior') >= 1 LIMIT 15",
]

CLIENTS = 4
ROUNDS = 6
INGEST_BATCHES = 8
BATCH_ROWS = 10


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


async def build_server(path: str) -> AnnotationServer:
    config = ServerConfig(
        readers=4,
        writers=1,
        read_queue_depth=CLIENTS * 4,
        write_queue_depth=INGEST_BATCHES,
        request_timeout_s=60.0,
    )
    server = AnnotationServer(config=config, path=path)
    await server.start()
    session = server.session
    session.create_table("birds", ["name", "species", "weight"])
    session.create_table("sightings", ["site", "count"])
    session.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    session.link("BirdClass", "birds")
    await server.insert_many(
        "birds",
        [
            (f"bird{i:03d}", f"species{i % 7}", float(i % 40))
            for i in range(120)
        ],
    )
    await server.add_annotations(
        [
            {
                "text": "observed feeding on stonewort at dawn",
                "table": "birds",
                "row_id": i + 1,
            }
            for i in range(120)
        ]
    )
    await server.insert_many(
        "sightings", [(f"site{i % 5}", i) for i in range(40)]
    )
    return server


def ingest_payload(batch: int) -> list[dict]:
    return [
        {
            "text": f"served stress note b{batch} i{i}",
            "table": "sightings",
            "row_id": (batch * 5 + i) % 40 + 1,
        }
        for i in range(BATCH_ROWS)
    ]


def test_async_clients_race_bulk_ingest_with_serial_replay(tmp_path):
    async def scenario():
        server = await build_server(str(tmp_path / "stress.db"))
        # Serial replay first: the expected byte-exact answers.
        expected = [
            fingerprint(await server.query(sql)) for sql in QUERIES
        ]
        before_count = server.session.annotations.count()
        mismatches: list[str] = []

        async def reader_client(worker: int) -> None:
            for round_number in range(ROUNDS):
                index = (worker + round_number) % len(QUERIES)
                result = await server.query(QUERIES[index])
                if fingerprint(result) != expected[index]:
                    mismatches.append(
                        f"client {worker} round {round_number} query {index}"
                    )
                if round_number % 3 == 2:
                    zoom = await server.zoomin(
                        f"ZOOMIN REFERENCE QID = {result.qid} "
                        "ON BirdClass INDEX 1"
                    )
                    assert zoom.matches is not None

        async def ingest_client() -> None:
            for batch in range(INGEST_BATCHES):
                stored = await server.add_annotations(ingest_payload(batch))
                assert len(stored) == BATCH_ROWS

        await asyncio.gather(
            ingest_client(),
            *(reader_client(worker) for worker in range(CLIENTS)),
        )
        assert mismatches == []

        # Durability: exactly the ingested annotations were added.
        after_count = server.session.annotations.count()
        assert after_count - before_count == INGEST_BATCHES * BATCH_ROWS

        # Nothing was rejected or timed out under the sized load, and
        # the request accounting adds up.
        lanes = server.stats.snapshot()["lanes"]
        for lane in lanes.values():
            assert lane["rejected_overload"] == 0
            assert lane["rejected_closed"] == 0
            assert lane["timed_out"] == 0
            assert lane["failed"] == 0
        await server.stop()

        # Post-drain serial replay on a fresh session: the final state
        # answers the reader queries identically (ingest never touched
        # the queried table).
        from repro import InsightNotes

        with InsightNotes(str(tmp_path / "stress.db")) as replay:
            for index, sql in enumerate(QUERIES):
                assert fingerprint(replay.query(sql)) == expected[index]
            assert (
                replay.annotations.count() - before_count
                == INGEST_BATCHES * BATCH_ROWS
            )

    asyncio.run(scenario())
