"""Server error paths: admission, timeouts, graceful shutdown.

These tests drive the :meth:`AnnotationServer.submit` seam directly
with controllable callables (gated on ``threading.Event``) so each
failure mode is provoked deterministically, not by racing real queries.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import (
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve import AnnotationServer, ServerConfig
from repro.serve.server import READ, WRITE


def run(coroutine):
    return asyncio.run(coroutine)


async def wait_until(event: threading.Event, timeout: float = 5.0) -> None:
    """Poll a threading.Event from the loop without blocking it."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not event.is_set():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("worker never started")
        await asyncio.sleep(0.005)


def gated_work(started: threading.Event, gate: threading.Event):
    """A request body that parks on ``gate`` until the test releases it."""

    def work() -> str:
        started.set()
        assert gate.wait(timeout=10)
        return "done"

    return work


def test_admission_rejects_when_lane_is_full():
    async def scenario():
        config = ServerConfig(
            readers=1, read_queue_depth=1, request_timeout_s=None
        )
        async with AnnotationServer(config=config) as server:
            started, gate = threading.Event(), threading.Event()
            # Fill the lane: one running (holds the worker), one queued.
            running = asyncio.create_task(
                server.submit(READ, "slow", gated_work(started, gate))
            )
            await wait_until(started)
            queued = asyncio.create_task(
                server.submit(READ, "queued", lambda: "queued-done")
            )
            await asyncio.sleep(0.01)  # let the queued submit be admitted
            # capacity = readers + depth = 2 — the third is refused
            # immediately with the 429-style signal.
            with pytest.raises(ServerOverloadedError) as excinfo:
                await server.submit(READ, "overflow", lambda: None)
            assert excinfo.value.op_class == READ
            assert excinfo.value.capacity == 2
            # The writer lane is independent: it still admits.
            assert await server.submit(WRITE, "w", lambda: "w-ok") == "w-ok"
            gate.set()
            assert await running == "done"
            assert await queued == "queued-done"
            # With the lane drained, admission opens again.
            assert await server.submit(READ, "after", lambda: "ok") == "ok"
            lanes = server.stats.snapshot()["lanes"]
            assert lanes[READ]["rejected_overload"] == 1
            assert lanes[READ]["completed"] == 3

    run(scenario())


def test_request_timeout_mid_query_releases_slot_when_thread_returns():
    async def scenario():
        config = ServerConfig(
            readers=1, read_queue_depth=0, request_timeout_s=0.05
        )
        async with AnnotationServer(config=config) as server:
            started, gate = threading.Event(), threading.Event()
            with pytest.raises(RequestTimeoutError):
                await server.submit(READ, "slow", gated_work(started, gate))
            # The worker thread is still running: the slot stays held,
            # so the next request is rejected as overload — admission
            # sees true capacity, not wishful capacity.
            with pytest.raises(ServerOverloadedError):
                await server.submit(READ, "probe", lambda: None)
            gate.set()
            # Once the abandoned thread returns, the slot frees up.
            for _ in range(200):
                await asyncio.sleep(0.005)
                if server.stats.snapshot()["lanes"][READ]["timed_out"]:
                    break
            assert await server.submit(READ, "after", lambda: "ok") == "ok"
            lanes = server.stats.snapshot()["lanes"]
            assert lanes[READ]["timed_out"] == 1
            assert lanes[READ]["rejected_overload"] == 1
            assert lanes[READ]["completed"] == 1

    run(scenario())


def test_timeout_applies_to_real_queries():
    async def scenario():
        config = ServerConfig(readers=2, request_timeout_s=30.0)
        async with AnnotationServer(config=config) as server:
            await server.execute("CREATE TABLE t (a)")
            await server.insert_many("t", [(i,) for i in range(50)])
            # Per-call override beats the config default.
            with pytest.raises(RequestTimeoutError):
                await server.submit(
                    READ, "stuck", gated_work(
                        threading.Event(), threading.Event()
                    ),
                    timeout_s=0.05,
                )
            # An ordinary query still completes fine afterwards.
            result = await server.query("SELECT a FROM t LIMIT 3")
            assert len(result.rows()) == 3

    run(scenario())


def test_graceful_shutdown_drains_readers_and_refuses_new_work():
    async def scenario():
        config = ServerConfig(readers=2, request_timeout_s=None)
        server = AnnotationServer(config=config)
        await server.start()
        await server.execute("CREATE TABLE t (a)")
        await server.insert_many("t", [(1,)])
        started, gate = threading.Event(), threading.Event()
        in_flight = asyncio.create_task(
            server.submit(READ, "slow", gated_work(started, gate))
        )
        await wait_until(started)
        stop_task = asyncio.create_task(server.stop())
        await asyncio.sleep(0.02)
        # Draining: the stop is parked on the in-flight reader...
        assert server.state == "draining"
        assert not stop_task.done()
        # ...and every new request — read or write — is refused.
        with pytest.raises(ServerClosedError):
            await server.query("SELECT a FROM t")
        with pytest.raises(ServerClosedError):
            await server.add_annotations([{"text": "x"}])
        # Releasing the reader lets the drain finish: the in-flight
        # request delivers its result, then the session closes.
        gate.set()
        assert await in_flight == "done"
        await stop_task
        assert server.state == "stopped"
        lanes = server.stats.snapshot()["lanes"]
        assert lanes[READ]["rejected_closed"] == 1
        assert lanes[WRITE]["rejected_closed"] == 1

    run(scenario())


def test_shutdown_flushes_deferred_summary_writes(tmp_path):
    """Annotations ingested through the server are durable after stop."""
    path = str(tmp_path / "durable.db")

    async def scenario():
        server = AnnotationServer(path=path)
        async with server:
            await server.execute("CREATE TABLE birds (name)")
            await server.insert_many("birds", [("finch",), ("heron",)])
            server.session.define_classifier(
                "C", ["Behavior"], [("observed feeding", "Behavior")]
            )
            server.session.link("C", "birds")
            await server.add_annotations(
                [
                    {"text": "observed feeding", "table": "birds", "row_id": 1},
                    {"text": "observed resting", "table": "birds", "row_id": 2},
                ]
            )

    run(scenario())
    from repro import InsightNotes

    with InsightNotes(path) as reopened:
        assert reopened.annotations.count() == 2
        result = reopened.query(
            "SELECT name FROM birds WHERE SUMMARY_COUNT('C', 'Behavior') >= 1"
        )
        assert len(result.rows()) == 2


def test_drain_timeout_is_a_hard_stop_not_a_hang():
    async def scenario():
        config = ServerConfig(
            readers=1, request_timeout_s=None, drain_timeout_s=0.1
        )
        server = AnnotationServer(config=config)
        await server.start()
        started, gate = threading.Event(), threading.Event()
        stuck = asyncio.create_task(
            server.submit(READ, "stuck", gated_work(started, gate))
        )
        await wait_until(started)
        # stop() must return within the drain budget even though the
        # worker never finishes on its own.
        await asyncio.wait_for(server.stop(), timeout=5.0)
        assert server.state == "stopped"
        gate.set()
        assert await stuck == "done"

    run(scenario())
