"""Wire protocol: decoding, dispatch, and structured error codes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import (
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    SQLSyntaxError,
)
from repro.serve import AnnotationServer
from repro.serve.protocol import (
    ProtocolError,
    decode_request,
    encode_response,
    error_code,
    error_response,
    handle_request,
)


def run(coroutine):
    return asyncio.run(coroutine)


# -- decoding ---------------------------------------------------------------


def test_decode_request_accepts_bytes_and_str():
    assert decode_request(b'{"op": "ping"}') == {"op": "ping"}
    assert decode_request('{"op": "ping", "id": 7}')["id"] == 7


@pytest.mark.parametrize(
    "line",
    [
        b"not json",
        b'"a string"',
        b"[1, 2]",
        b'{"no": "op"}',
        b'{"op": "launch_missiles"}',
        "{'op': 'ping'}".encode("utf-16"),
    ],
)
def test_decode_request_rejects_malformed_lines(line):
    with pytest.raises(ProtocolError):
        decode_request(line)


def test_encode_response_is_one_json_line():
    payload = encode_response({"id": 1, "ok": True, "result": {"pong": True}})
    assert payload.endswith(b"\n")
    assert payload.count(b"\n") == 1
    assert json.loads(payload)["ok"] is True


# -- error codes ------------------------------------------------------------


def test_error_codes_are_http_shaped():
    assert error_code(ServerOverloadedError("read", 4)) == 429
    assert error_code(RequestTimeoutError("query", 1.0)) == 408
    assert error_code(ServerClosedError()) == 503
    assert error_code(SQLSyntaxError("bad")) == 400
    assert error_code(ProtocolError("bad")) == 400
    assert error_code(RuntimeError("boom")) == 500


def test_error_response_shape():
    response = error_response(9, ServerOverloadedError("read", 4))
    assert response["id"] == 9
    assert response["ok"] is False
    assert response["error"]["code"] == 429
    assert response["error"]["type"] == "ServerOverloadedError"
    assert "retry" in response["error"]["message"]


# -- dispatch ---------------------------------------------------------------


def test_dispatch_query_and_engine_error_payloads():
    async def scenario():
        async with AnnotationServer() as server:
            ok = await handle_request(
                server,
                {"op": "execute", "statement": "CREATE TABLE t (a)", "id": 1},
            )
            assert ok == {
                "id": 1,
                "ok": True,
                "result": {"status": "table 't' created"},
            }
            await handle_request(
                server, {"op": "insert", "table": "t", "rows": [[1], [2]]}
            )
            result = await handle_request(
                server, {"op": "query", "sql": "SELECT a FROM t", "id": 2}
            )
            assert result["ok"] is True
            assert [t["values"] for t in result["result"]["tuples"]] == [
                [1],
                [2],
            ]
            # Engine rejection comes back structured, not raised.
            bad = await handle_request(
                server, {"op": "query", "sql": "SELEKT x", "id": 3}
            )
            assert bad["ok"] is False
            assert bad["error"]["code"] == 400
            assert bad["error"]["type"] == "SQLSyntaxError"
            # Missing parameter is a 400 ProtocolError.
            missing = await handle_request(server, {"op": "query", "id": 4})
            assert missing["error"]["code"] == 400
            assert missing["error"]["type"] == "ProtocolError"

    run(scenario())


def test_dispatch_annotations_stats_and_ping():
    async def scenario():
        async with AnnotationServer() as server:
            await handle_request(
                server, {"op": "execute", "statement": "CREATE TABLE b (n)"}
            )
            await handle_request(
                server, {"op": "insert", "table": "b", "rows": [["x"]]}
            )
            stored = await handle_request(
                server,
                {
                    "op": "add_annotations",
                    "specs": [{"text": "note", "table": "b", "row_id": 1}],
                },
            )
            assert stored["result"]["count"] == 1
            assert stored["result"]["annotation_ids"] == [1]
            stats = await handle_request(server, {"op": "stats"})
            assert stats["result"]["annotations"] == 1
            assert "lanes" in stats["result"]["server"]
            pong = await handle_request(server, {"op": "ping", "id": "p"})
            assert pong["result"] == {"pong": True, "state": "running"}

    run(scenario())


def test_dispatch_trace():
    async def scenario():
        async with AnnotationServer() as server:
            await handle_request(
                server, {"op": "execute", "statement": "CREATE TABLE t (a)"}
            )
            await handle_request(
                server, {"op": "insert", "table": "t", "rows": [[1]]}
            )
            result = await handle_request(
                server, {"op": "query", "sql": "SELECT a FROM t"}
            )
            qid = result["result"]["qid"]
            traced = await handle_request(
                server, {"op": "trace", "qid": qid, "id": 6}
            )
            assert traced["ok"] is True
            assert traced["result"]["found"] is True
            assert traced["result"]["qid"] == qid
            trace = traced["result"]["trace"]
            assert trace["sql"] == "SELECT a FROM t"
            assert trace["fingerprint"]
            assert isinstance(trace["cache_events"], list)
            # Unknown qid is not an error — found simply comes back False.
            unknown = await handle_request(
                server, {"op": "trace", "qid": 424242}
            )
            assert unknown["result"] == {
                "qid": 424242,
                "found": False,
                "trace": None,
            }
            # Missing qid is a 400 ProtocolError.
            missing = await handle_request(server, {"op": "trace"})
            assert missing["ok"] is False
            assert missing["error"]["type"] == "ProtocolError"

    run(scenario())


def test_dispatch_closed_server_returns_503():
    async def scenario():
        server = AnnotationServer()
        await server.start()
        await server.stop()
        response = await handle_request(
            server, {"op": "query", "sql": "SELECT 1", "id": 5}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == 503

    run(scenario())
