"""Tests for repro.zoomin.policies."""

from repro.zoomin.policies import (
    CacheEntry,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    SizePolicy,
)


def entry(qid, size=100, cost=1, inserted=0, accessed=0, count=0):
    return CacheEntry(
        qid=qid, size_bytes=size, cost=cost,
        inserted_at=inserted, last_access=accessed, access_count=count,
    )


class TestLRU:
    def test_evicts_least_recently_used(self):
        entries = [entry(1, accessed=10), entry(2, accessed=5), entry(3, accessed=8)]
        assert LRUPolicy().victim(entries, now=20).qid == 2

    def test_tie_breaks_by_qid(self):
        entries = [entry(2, accessed=5), entry(1, accessed=5)]
        assert LRUPolicy().victim(entries, now=20).qid == 1


class TestLFU:
    def test_evicts_least_frequent(self):
        entries = [entry(1, count=10), entry(2, count=1), entry(3, count=5)]
        assert LFUPolicy().victim(entries, now=20).qid == 2

    def test_recency_breaks_frequency_ties(self):
        entries = [entry(1, count=3, accessed=9), entry(2, count=3, accessed=2)]
        assert LFUPolicy().victim(entries, now=20).qid == 2


class TestFIFO:
    def test_evicts_oldest_insertion(self):
        entries = [entry(1, inserted=5), entry(2, inserted=1), entry(3, inserted=9)]
        assert FIFOPolicy().victim(entries, now=20).qid == 2

    def test_access_does_not_matter(self):
        entries = [entry(1, inserted=1, accessed=100, count=50), entry(2, inserted=2)]
        assert FIFOPolicy().victim(entries, now=200).qid == 1


class TestSize:
    def test_evicts_largest(self):
        entries = [entry(1, size=10), entry(2, size=1000), entry(3, size=100)]
        assert SizePolicy().victim(entries, now=0).qid == 2


class TestPolicyNames:
    def test_names_are_distinct(self):
        names = {
            policy.name
            for policy in (LRUPolicy(), LFUPolicy(), FIFOPolicy(), SizePolicy())
        }
        assert names == {"LRU", "LFU", "FIFO", "SIZE"}
