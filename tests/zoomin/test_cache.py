"""Tests for repro.zoomin.cache."""

import pytest

from repro.engine.results import QueryResult
from repro.model.tuple import AnnotatedTuple
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.policies import FIFOPolicy, LRUPolicy


def make_result(qid: int, rows: int = 1, cost: int = 1) -> QueryResult:
    tuples = [
        AnnotatedTuple(values=(i, "x" * 100)) for i in range(rows)
    ]
    return QueryResult(
        qid=qid, columns=("t.a", "t.b"), tuples=tuples, plan_cost=cost
    )


class TestBasicOperations:
    def test_put_then_get(self):
        cache = ZoomInCache(capacity_bytes=10_000)
        result = make_result(1)
        assert cache.put(result)
        assert cache.get(1) is result
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = ZoomInCache()
        assert cache.get(42) is None
        assert cache.stats.misses == 1

    def test_contains_and_len(self):
        cache = ZoomInCache()
        cache.put(make_result(1))
        assert 1 in cache
        assert len(cache) == 1

    def test_oversized_result_rejected(self):
        cache = ZoomInCache(capacity_bytes=64)
        assert not cache.put(make_result(1, rows=10))
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            ZoomInCache(capacity_bytes=0)

    def test_invalidate(self):
        cache = ZoomInCache()
        cache.put(make_result(1))
        cache.invalidate(1)
        assert 1 not in cache
        assert cache.bytes_used == 0

    def test_clear_keeps_stats(self):
        cache = ZoomInCache()
        cache.put(make_result(1))
        cache.get(1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestEviction:
    def _small_cache(self, policy=None):
        # Capacity fits roughly two one-row results.
        single = make_result(1).size_estimate()
        return ZoomInCache(capacity_bytes=int(single * 2.5), policy=policy)

    def test_eviction_frees_space(self):
        cache = self._small_cache(LRUPolicy())
        for qid in (1, 2, 3):
            cache.put(make_result(qid))
        assert len(cache) == 2
        assert cache.stats.evictions >= 1
        assert cache.bytes_used <= cache.capacity_bytes

    def test_lru_evicts_stale_entry(self):
        cache = self._small_cache(LRUPolicy())
        cache.put(make_result(1))
        cache.put(make_result(2))
        cache.get(1)  # refresh 1 -> 2 is now the LRU victim
        cache.put(make_result(3))
        assert 1 in cache
        assert 2 not in cache

    def test_fifo_ignores_access(self):
        cache = self._small_cache(FIFOPolicy())
        cache.put(make_result(1))
        cache.put(make_result(2))
        cache.get(1)
        cache.put(make_result(3))
        assert 1 not in cache  # inserted first, evicted first

    def test_reput_refreshes_entry(self):
        cache = self._small_cache(LRUPolicy())
        cache.put(make_result(1))
        cache.put(make_result(2))
        cache.put(make_result(1))  # refresh, no growth
        assert len(cache) == 2

    def test_bytes_used_tracks_entries(self):
        cache = ZoomInCache(capacity_bytes=10**6)
        first = make_result(1)
        second = make_result(2, rows=3)
        cache.put(first)
        cache.put(second)
        expected = first.size_estimate() + second.size_estimate()
        assert cache.bytes_used == expected

    def test_resident_qids_sorted(self):
        cache = ZoomInCache(capacity_bytes=10**6)
        for qid in (5, 2, 9):
            cache.put(make_result(qid))
        assert cache.resident_qids() == [2, 5, 9]

    def test_hit_ratio(self):
        cache = ZoomInCache()
        cache.put(make_result(1))
        cache.get(1)
        cache.get(2)
        assert cache.stats.hit_ratio == pytest.approx(0.5)
