"""Tests for repro.zoomin.command."""

import pytest

from repro.errors import ZoomInSyntaxError
from repro.zoomin.command import ZoomInCommand, parse_zoomin


class TestParse:
    def test_full_command(self):
        command = parse_zoomin(
            "ZoomIn Reference QID = 101 Where C1 = 'x' "
            "On NaiveBayesClass Index 1;"
        )
        assert command.qid == 101
        assert command.instance == "NaiveBayesClass"
        assert command.index == 1
        assert str(command.predicate) == "C1 = 'x'"

    def test_minimal_command(self):
        command = parse_zoomin("ZOOMIN REFERENCE QID = 7 ON MyCluster")
        assert command.qid == 7
        assert command.index is None
        assert command.predicate is None

    def test_case_insensitive_keywords(self):
        command = parse_zoomin("zoomin reference qid = 3 on Inst index 2")
        assert (command.qid, command.index) == (3, 2)

    def test_complex_predicate(self):
        command = parse_zoomin(
            "ZOOMIN REFERENCE QID = 5 WHERE a > 1 AND b = 'two' ON Inst"
        )
        assert command.predicate is not None
        assert "AND" in str(command.predicate)

    def test_missing_on_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="ON"):
            parse_zoomin("ZOOMIN REFERENCE QID = 5 WHERE a = 1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="="):
            parse_zoomin("ZOOMIN REFERENCE QID 5 ON Inst")

    def test_non_integer_qid_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="integer"):
            parse_zoomin("ZOOMIN REFERENCE QID = 1.5 ON Inst")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="trailing"):
            parse_zoomin("ZOOMIN REFERENCE QID = 1 ON Inst INDEX 1 extra")

    def test_wrong_leading_keyword_rejected(self):
        with pytest.raises(ZoomInSyntaxError):
            parse_zoomin("SELECT * FROM t")


class TestCommandValidation:
    def test_negative_qid_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="QID"):
            ZoomInCommand(qid=-1, instance="I")

    def test_zero_index_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="1-based"):
            ZoomInCommand(qid=1, instance="I", index=0)

    def test_render_round_trips(self):
        command = parse_zoomin(
            "ZOOMIN REFERENCE QID = 9 WHERE a = 1 ON Inst INDEX 3"
        )
        reparsed = parse_zoomin(command.render())
        assert reparsed.qid == command.qid
        assert reparsed.instance == command.instance
        assert reparsed.index == command.index
        assert str(reparsed.predicate) == str(command.predicate)
