"""Property test: cached zoom-ins are byte-identical to recomputed ones.

The tiered cache's contract is that it is *purely* a performance
optimization: a zoom-in served from the memory tier, served from the
disk tier (through JSON serialization and back), or recomputed from
scratch after an invalidation must produce exactly the same expansion —
same matches, same components, same raw annotation text — down to the
serialized byte.  Hypothesis drives the comparison across all five
summary types against two identically-populated sessions, one whose
results live in the memory tier and one whose memory budget of a single
byte forces every result through the disk tier.

The annotation corpus deliberately includes non-ASCII text so the
disk tier's UTF-8 round trip is part of what byte-identity covers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes
from repro.summaries.registry import extended_registry
from tests.conftest import TRAINING

_TYPES = [
    ("Classifier", {"labels": ["Behavior", "Disease"]}),
    ("Cluster", {"threshold": 0.3}),
    ("Snippet", {"max_sentences": 2}),
    ("Terms", {"top_k": 5}),
    ("Timeline", {"bucket_seconds": 60}),
]

_INSTANCES = [f"{name}Id" for name, _ in _TYPES]

_TEXTS = [
    "observed feeding stonewort near the shore",
    "symptoms of avian pox in the flock",
    "Anser cygnoïdes — 鸿雁 — banded during molt",
    "diving for insects at dawn in the reeds",
]


def _build(memory_bytes: int) -> InsightNotes:
    notes = InsightNotes(
        registry=extended_registry(),
        cache_bytes=memory_bytes,
        cache_disk_bytes=1 << 24,
    )
    notes.create_table("birds", ["name", "species", "weight"])
    row_ids = notes.insert_many(
        "birds",
        [(f"b{i}", f"sp{i % 4}", (i * 7) % 10) for i in range(16)],
    )
    for type_name, config in _TYPES:
        name = f"{type_name}Id"
        instance = notes.catalog.define_instance(
            type_name, name, dict(config)
        )
        if type_name == "Classifier":
            instance.train(list(TRAINING))
            notes.catalog.save_instance_config(name)
        notes.link(name, "birds")
    # Every row carries a plain comment; every other row also carries a
    # document annotation so the Snippet type (documents_only) has
    # something to extract from.
    specs = [
        {
            "text": _TEXTS[i % len(_TEXTS)],
            "table": "birds",
            "row_id": row_id,
            "created_at": float(45 * i),
        }
        for i, row_id in enumerate(row_ids)
    ]
    specs.extend(
        {
            "text": (
                "Field report for the flock. "
                + " ".join(_TEXTS[: 1 + i % len(_TEXTS)])
                + "."
            ),
            "table": "birds",
            "row_id": row_id,
            "document": True,
            "title": f"report-{i}",
            "created_at": float(100 + 45 * i),
        }
        for i, row_id in enumerate(row_ids[::2])
    )
    notes.add_annotations(specs)
    notes.analyze()
    return notes


def canonical(zoom) -> bytes:
    """The zoom-in's wire payload minus the fields that *name* where it
    came from (source, cache_hit) and how long it took — everything a
    client renders must be byte-for-byte stable across tiers."""
    payload = zoom.to_json()
    payload.pop("source")
    payload.pop("cache_hit")
    payload["elapsed_seconds"] = 0.0
    return json.dumps(
        payload, sort_keys=True, ensure_ascii=False
    ).encode("utf-8")


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCacheByteIdentity:
    @pytest.fixture(scope="class")
    def pair(self):
        # Both sessions execute the identical statement stream, so
        # their qid sequences stay in lockstep and zoom-in commands
        # (which embed the qid) render identically.
        mem = _build(memory_bytes=1 << 22)
        disk = _build(memory_bytes=1)
        yield mem, disk
        mem.close()
        disk.close()

    @given(
        instance=st.sampled_from(_INSTANCES),
        threshold=st.integers(min_value=0, max_value=8),
    )
    @_SETTINGS
    def test_tiers_and_recompute_agree_to_the_byte(
        self, pair, instance, threshold
    ):
        mem, disk = pair
        sql = f"SELECT name, weight FROM birds WHERE weight > {threshold}"
        payloads = []
        for notes, tier in ((mem, "memory"), (disk, "disk")):
            qid = notes.query(sql).qid
            command = f"ZOOMIN REFERENCE QID = {qid} ON {instance}"
            cached = notes.zoomin(command)
            assert cached.source == tier
            assert cached.cache_hit
            notes.cache.invalidate(qid)
            recomputed = notes.zoomin(command)
            assert recomputed.source == "recomputed"
            assert not recomputed.cache_hit
            payloads.append(canonical(cached))
            payloads.append(canonical(recomputed))
        assert len(set(payloads)) == 1  # all four byte-identical

    def test_every_type_zooms_identically_once(self, pair):
        """Deterministic sweep: one zoom-in per summary type carrying
        raw annotations, memory tier vs disk tier vs recompute."""
        mem, disk = pair
        for instance in _INSTANCES:
            qid_mem = mem.query("SELECT name FROM birds").qid
            qid_disk = disk.query("SELECT name FROM birds").qid
            assert qid_mem == qid_disk
            command = f"ZOOMIN REFERENCE QID = {qid_mem} ON {instance}"
            zm, zd = mem.zoomin(command), disk.zoomin(command)
            assert (zm.source, zd.source) == ("memory", "disk")
            assert zm.annotation_count() == zd.annotation_count() > 0
            assert canonical(zm) == canonical(zd)
