"""Tests for the production two-tier zoom-in cache."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.results import QueryResult
from repro.model.tuple import AnnotatedTuple
from repro.zoomin.admission import AdmitAll, CostAwareAdmission
from repro.zoomin.stores import SQLiteResultStore
from repro.zoomin.tiered import TieredZoomInCache
from repro.zoomin.tracing import TraceStore


def make_result(qid: int, rows: int = 4, pad: int = 32, cost: float = 100.0):
    """A summary-free result of a controllable size and recompute cost."""
    tuples = [
        AnnotatedTuple(values=(f"row{qid}-{i}", "x" * pad)) for i in range(rows)
    ]
    return QueryResult(
        qid=qid,
        columns=("a", "b"),
        tuples=tuples,
        sql=f"SELECT {qid}",
        plan_text=f"Scan(t{qid})",
        plan_cost=3,
        cost_estimate=cost,
    )


def make_cache(memory=64 * 1024, disk=256 * 1024, **kwargs):
    kwargs.setdefault("admission", AdmitAll())
    return TieredZoomInCache(memory_bytes=memory, disk_bytes=disk, **kwargs)


class TestTierMechanics:
    def test_memory_hit_round_trip(self):
        cache = make_cache()
        result = make_result(101)
        verdict = cache.put(result)
        assert verdict.admitted
        assert cache.tier_of(101) == "memory"
        assert cache.get(101) is result
        assert cache.counters.memory_hits == 1

    def test_miss_counts(self):
        cache = make_cache()
        assert cache.get(999) is None
        assert cache.counters.misses == 1

    def test_memory_pressure_demotes_to_disk(self):
        one = make_result(101).size_estimate()
        cache = make_cache(memory=int(one * 2.5))
        for qid in (101, 102, 103):
            cache.put(make_result(qid))
        assert cache.counters.demotions == 1
        assert cache.tier_of(101) == "disk"  # oldest untouched entry
        assert cache.tier_of(102) == "memory"
        assert cache.tier_of(103) == "memory"
        assert sorted(cache.resident_qids()) == [101, 102, 103]

    def test_disk_hit_promotes_back_and_demotes_a_victim(self):
        one = make_result(101).size_estimate()
        cache = make_cache(memory=int(one * 2.5))
        for qid in (101, 102, 103):
            cache.put(make_result(qid))
        assert cache.tier_of(101) == "disk"
        revived = cache.get(101)
        assert revived is not None
        assert revived.rows() == make_result(101).rows()
        assert cache.tier_of(101) == "memory"
        assert cache.counters.disk_hits == 1
        assert cache.counters.promotions == 1
        # Promotion displaced something; both tiers stay within budget.
        assert cache.memory_bytes_used <= cache.memory_bytes
        assert len(cache.resident_qids()) == 3

    def test_disk_tier_evicts_past_its_budget(self):
        one = make_result(101).size_estimate()
        store = SQLiteResultStore()
        # Memory fits ~1 entry; disk fits ~2 serialized entries.
        import json

        disk_one = len(
            json.dumps(make_result(101).to_json()).encode("utf-8")
        )
        cache = make_cache(
            memory=int(one * 1.5), disk=int(disk_one * 2.5), disk_store=store
        )
        for qid in (101, 102, 103, 104):
            cache.put(make_result(qid))
        assert cache.counters.disk_evictions >= 1
        assert cache.disk_bytes_used <= cache.disk_bytes
        # Evicted payloads really left the file.
        gone = [
            qid
            for qid in (101, 102, 103, 104)
            if cache.tier_of(qid) is None
        ]
        assert gone
        for qid in gone:
            assert store.get(qid) is None

    def test_invalidate_each_tier(self):
        one = make_result(101).size_estimate()
        cache = make_cache(memory=int(one * 1.5))
        cache.put(make_result(101))
        cache.put(make_result(102))  # demotes 101
        assert cache.tier_of(101) == "disk"
        cache.invalidate(101)
        cache.invalidate(102)
        assert cache.resident_qids() == []
        assert cache.counters.invalidations == 2
        assert cache.get(101) is None

    def test_clear_keeps_counters(self):
        cache = make_cache()
        cache.put(make_result(101))
        cache.get(101)
        cache.clear()
        assert cache.resident_qids() == []
        assert cache.memory_bytes_used == 0
        assert cache.counters.memory_hits == 1

    def test_stats_json_shape(self):
        cache = make_cache()
        cache.put(make_result(101))
        cache.get(101)
        payload = cache.stats_json()
        assert payload["memory_hits"] == 1
        assert payload["hit_ratio"] == 1.0
        assert payload["tiers"]["memory"]["entries"] == 1
        assert payload["tiers"]["disk"]["entries"] == 0
        assert payload["policy"] == "RCO"


class TestCostAwareAdmissionIntegration:
    def admission(self):
        return CostAwareAdmission(
            min_recompute_cost=10.0, pin_cost=1000.0, max_entry_fraction=0.5
        )

    def test_cheap_result_is_not_cached(self):
        cache = make_cache(admission=self.admission())
        verdict = cache.put(make_result(101, cost=5.0))
        assert not verdict.admitted
        assert cache.tier_of(101) is None
        assert cache.counters.rejected_cheap == 1

    def test_pinned_entry_survives_pressure(self):
        one = make_result(101).size_estimate()
        cache = make_cache(
            memory=int(one * 2.5), admission=self.admission()
        )
        cache.put(make_result(101, cost=5000.0))  # pinned
        assert cache.pinned_qids() == [101]
        for qid in range(102, 108):
            cache.put(make_result(qid, cost=50.0))
        assert cache.tier_of(101) == "memory"
        assert cache.counters.pinned_insertions == 1

    def test_oversize_for_memory_lands_on_disk(self):
        small = make_result(101).size_estimate()
        big = make_result(102, rows=64, pad=256)
        cache = make_cache(
            memory=int(small * 3), admission=self.admission()
        )
        assert big.size_estimate() > 0.5 * cache.memory_bytes  # premise
        verdict = cache.put(big, cost=500.0)
        assert verdict.admitted and not verdict.pinned
        assert cache.tier_of(102) == "disk"
        got = cache.get(102)
        assert got is not None and got.rows() == big.rows()

    def test_oversize_for_both_tiers_rejected(self):
        cache = make_cache(memory=256, disk=512, admission=self.admission())
        verdict = cache.put(make_result(101, rows=64, pad=256, cost=500.0))
        assert not verdict.admitted or cache.tier_of(101) is None
        assert cache.counters.rejected_oversize == 1

    def test_default_admission_is_cost_aware(self):
        cache = TieredZoomInCache()
        assert isinstance(cache.admission, CostAwareAdmission)


class TestWarmRestart:
    def test_disk_tier_repopulates_from_store(self, tmp_path):
        path = str(tmp_path / "cache.db")
        store = SQLiteResultStore(path)
        # memory_bytes=1 forces every entry through the disk tier.
        cache = make_cache(memory=1, disk=10**6, disk_store=store)
        for qid in (101, 102):
            cache.put(make_result(qid))
        assert cache.tier_of(101) == "disk"
        store.close()

        reopened = SQLiteResultStore(path)
        warm = make_cache(memory=64 * 1024, disk=10**6, disk_store=reopened)
        assert warm.counters.warm_loaded == 2
        assert sorted(warm.resident_qids()) == [101, 102]
        got = warm.get(101)
        assert got is not None
        assert got.rows() == make_result(101).rows()
        assert warm.counters.disk_hits == 1
        reopened.close()

    def test_warm_start_sheds_overflow_of_a_shrunk_budget(self, tmp_path):
        path = str(tmp_path / "cache.db")
        store = SQLiteResultStore(path)
        cache = make_cache(memory=1, disk=10**6, disk_store=store)
        sizes = {}
        for qid in (101, 102, 103):
            cache.put(make_result(qid))
        for meta in store.load_metadata():
            sizes[meta.qid] = meta.size_bytes
        store.close()

        reopened = SQLiteResultStore(path)
        budget = int(sum(sizes.values()) - min(sizes.values()) / 2)
        warm = make_cache(memory=1, disk=budget, disk_store=reopened)
        assert warm.counters.disk_evictions >= 1
        assert warm.disk_bytes_used <= budget
        reopened.close()


class TestSingleFlight:
    def test_stampede_computes_exactly_once(self):
        cache = make_cache()
        gate = threading.Barrier(8)
        calls: list[int] = []
        call_lock = threading.Lock()

        def compute():
            with call_lock:
                calls.append(1)
            # Hold the flight open long enough for the other threads,
            # already past the barrier, to pile onto it.
            time.sleep(0.2)
            return make_result(404)

        outcomes: list[str] = []
        out_lock = threading.Lock()

        def worker():
            gate.wait()
            _, source = cache.get_or_compute(404, compute)
            with out_lock:
                outcomes.append(source)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The hard guarantee: the query ran exactly once.
        assert len(calls) == 1
        assert outcomes.count("recomputed") == 1
        assert cache.counters.recomputes == 1
        # The rest coalesced onto the flight (or, if the scheduler was
        # very unfair, hit the already-landed result — never recomputed).
        assert outcomes.count("coalesced") >= 1
        assert set(outcomes) <= {"recomputed", "coalesced", "memory"}

    def test_leader_failure_propagates_to_followers(self):
        cache = make_cache()
        gate = threading.Barrier(4)
        errors: list[BaseException] = []
        err_lock = threading.Lock()

        def compute():
            raise RuntimeError("source table vanished")

        def worker():
            gate.wait()
            try:
                cache.get_or_compute(404, compute)
            except RuntimeError as exc:
                with err_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 4
        # A failed flight leaves nothing behind; the next call retries.
        result, source = cache.get_or_compute(404, lambda: make_result(404))
        assert source == "recomputed"
        assert result.qid == 404

    def test_hit_skips_the_flight_machinery(self):
        cache = make_cache()
        cache.put(make_result(101))
        result, source = cache.get_or_compute(
            101, lambda: pytest.fail("must not recompute")
        )
        assert source == "memory"
        assert result.qid == 101

    def test_unrelated_qids_use_different_stripes(self):
        cache = make_cache(n_stripes=4)
        for qid in range(200, 208):
            _, source = cache.get_or_compute(
                qid, lambda qid=qid: make_result(qid)
            )
            assert source == "recomputed"
        assert cache.counters.recomputes == 8


class TestTraceEvents:
    def test_cache_events_land_on_the_trace(self):
        traces = TraceStore()
        one = make_result(101).size_estimate()
        cache = make_cache(memory=int(one * 1.5), trace_store=traces)
        first = make_result(101)
        traces.record_query(first)
        cache.put(first)
        second = make_result(102)
        traces.record_query(second)
        cache.put(second)  # demotes 101
        cache.get(101)  # disk hit + promote (demotes 102)
        kinds_101 = [e.kind for e in traces.get(101).cache_events]
        assert "admit" in kinds_101
        assert "demote" in kinds_101
        assert "hit-disk" in kinds_101
        assert "promote" in kinds_101
