"""Property tests for the RCO priority function.

The replacement decisions the paper's policy makes are only sound if
the score behaves monotonically in each factor: more zoom-in references
or a costlier plan must never *lower* an entry's retention priority,
and a larger footprint must never raise it.  Hypothesis sweeps the
entry space; the defaults (all factor weights positive) make every
monotonicity strict.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.zoomin.policies import CacheEntry
from repro.zoomin.rco import RCOPolicy

_SIZES = st.integers(min_value=0, max_value=10**8)
_COSTS = st.integers(min_value=0, max_value=10**6)
_COUNTS = st.integers(min_value=0, max_value=10**4)
_CLOCK = st.integers(min_value=0, max_value=10**6)
_DELTAS = st.integers(min_value=1, max_value=10**4)


def _entry(qid=1, size=1024, cost=5, accessed=0, count=0):
    return CacheEntry(
        qid=qid,
        size_bytes=size,
        cost=cost,
        inserted_at=0,
        last_access=accessed,
        access_count=count,
    )


class TestMonotonicity:
    @given(size=_SIZES, cost=_COSTS, count=_COUNTS, age=_CLOCK, delta=_DELTAS)
    def test_priority_monotone_in_references(
        self, size, cost, count, age, delta
    ):
        policy = RCOPolicy()
        now = age
        base = _entry(size=size, cost=cost, count=count)
        hotter = _entry(size=size, cost=cost, count=count + delta)
        assert policy.priority(hotter, now) > policy.priority(base, now)

    @given(size=_SIZES, cost=_COSTS, count=_COUNTS, age=_CLOCK, delta=_DELTAS)
    def test_priority_monotone_in_cost(self, size, cost, count, age, delta):
        policy = RCOPolicy()
        base = _entry(size=size, cost=cost, count=count)
        dearer = _entry(size=size, cost=cost + delta, count=count)
        assert policy.priority(dearer, age) > policy.priority(base, age)

    @given(size=_SIZES, cost=_COSTS, count=_COUNTS, age=_CLOCK, delta=_DELTAS)
    def test_priority_anti_monotone_in_size(
        self, size, cost, count, age, delta
    ):
        policy = RCOPolicy()
        base = _entry(size=size, cost=cost, count=count)
        bigger = _entry(size=size + delta, cost=cost, count=count)
        assert policy.priority(bigger, age) < policy.priority(base, age)

    @given(size=_SIZES, cost=_COSTS, count=_COUNTS, gap=_DELTAS, now=_CLOCK)
    def test_priority_monotone_in_recency(self, size, cost, count, gap, now):
        policy = RCOPolicy()
        recent = _entry(size=size, cost=cost, count=count, accessed=now)
        stale = _entry(
            size=size, cost=cost, count=count, accessed=max(0, now - gap)
        )
        assert policy.priority(recent, now) >= policy.priority(stale, now)


class TestTieBreaking:
    @given(
        qids=st.lists(
            st.integers(min_value=1, max_value=10**6),
            min_size=2,
            max_size=12,
            unique=True,
        ),
        size=_SIZES,
        cost=_COSTS,
        count=_COUNTS,
        now=_CLOCK,
        seed=st.randoms(use_true_random=False),
    )
    def test_equal_scores_break_ties_on_lowest_qid(
        self, qids, size, cost, count, now, seed
    ):
        """Identical entries (bar qid) in any order: the victim is always
        the lowest qid — eviction is deterministic, not dict-order luck."""
        policy = RCOPolicy()
        entries = [
            _entry(qid=qid, size=size, cost=cost, count=count)
            for qid in qids
        ]
        seed.shuffle(entries)
        assert policy.victim(entries, now).qid == min(qids)

    @given(
        specs=st.lists(
            st.tuples(_SIZES, _COSTS, _COUNTS),
            min_size=2,
            max_size=10,
        ),
        now=_CLOCK,
        seed=st.randoms(use_true_random=False),
    )
    def test_victim_is_permutation_invariant(self, specs, now, seed):
        policy = RCOPolicy()
        entries = [
            _entry(qid=i + 1, size=size, cost=cost, count=count)
            for i, (size, cost, count) in enumerate(specs)
        ]
        shuffled = list(entries)
        seed.shuffle(shuffled)
        assert (
            policy.victim(shuffled, now).qid == policy.victim(entries, now).qid
        )
