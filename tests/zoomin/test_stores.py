"""Tests for result serialization and the disk-based cache store."""

import pytest

from repro import InsightNotes
from repro.engine.results import QueryResult
from repro.summaries.registry import default_registry
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.stores import MemoryResultStore, SQLiteResultStore
from tests.conftest import TRAINING


@pytest.fixture
def populated():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan", 3.2))
    notes.insert("birds", ("Goose", None))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.define_cluster("Cl", threshold=0.3)
    notes.link("C", "birds")
    notes.link("Cl", "birds")
    notes.add_annotation("observed feeding on stonewort",
                         table="birds", row_id=1)
    notes.add_annotation("shows symptoms of avian pox",
                         table="birds", row_id=1, columns=["weight"])
    yield notes
    notes.close()


class TestResultSerialization:
    def test_round_trip_preserves_everything(self, populated):
        result = populated.query("SELECT name, weight FROM birds")
        revived = QueryResult.from_json(
            result.to_json(), populated.catalog.registry
        )
        assert revived.qid == result.qid
        assert revived.columns == result.columns
        assert revived.rows() == result.rows()
        for left, right in zip(result.tuples, revived.tuples):
            assert left.attachments == right.attachments
            assert left.source_rows == right.source_rows
            assert {k: v.render() for k, v in left.summaries.items()} == {
                k: v.render() for k, v in right.summaries.items()
            }

    def test_round_trip_is_json_safe(self, populated):
        import json

        result = populated.query("SELECT name FROM birds")
        json.dumps(result.to_json())  # no raise

    def test_zoom_components_survive(self, populated):
        result = populated.query("SELECT name, weight FROM birds")
        revived = QueryResult.from_json(
            result.to_json(), populated.catalog.registry
        )
        original = result.tuples[0].summaries["C"].zoom_components()
        rebuilt = revived.tuples[0].summaries["C"].zoom_components()
        assert [(c.label, c.annotation_ids) for c in original] == [
            (c.label, c.annotation_ids) for c in rebuilt
        ]


class TestSQLiteResultStore:
    def test_put_get_delete(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        size = store.put(result)
        assert size > 0
        revived = store.get(result.qid)
        assert revived is not None
        assert revived.rows() == result.rows()
        store.delete(result.qid)
        assert store.get(result.qid) is None
        store.close()

    def test_put_is_upsert(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        store.put(result)
        store.put(result)
        assert store.get(result.qid) is not None
        store.close()

    def test_file_backed_store(self, populated, tmp_path):
        path = str(tmp_path / "cache.db")
        store = SQLiteResultStore(path, registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        store.put(result)
        store.close()
        reopened = SQLiteResultStore(path, registry=populated.catalog.registry)
        assert reopened.get(result.qid) is not None
        reopened.close()

    def test_charged_bytes_are_encoded_payload_size(self, populated):
        import json

        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name, weight FROM birds")
        size = store.put(result)
        payload = json.dumps(result.to_json(), ensure_ascii=False)
        assert size == len(payload.encode("utf-8"))
        store.close()

    def test_non_ascii_payload_charges_bytes_not_chars(self, populated):
        """Regression: ``len(payload)`` counts characters and
        undercharges multi-byte annotation text; the disk tier must
        charge what actually lands in the file."""
        import json

        notes = InsightNotes()
        notes.create_table("t", ["v"])
        notes.insert("t", ("Anser cygnoïdes — 鸿雁",))
        result = notes.query("SELECT v FROM t")
        payload = json.dumps(result.to_json(), ensure_ascii=False)
        assert len(payload.encode("utf-8")) > len(payload)  # premise
        store = SQLiteResultStore(registry=notes.catalog.registry)
        assert store.put(result) == len(payload.encode("utf-8"))
        store.close()
        notes.close()

    def test_memory_store_charges_size_estimate(self, populated):
        store = MemoryResultStore()
        result = populated.query("SELECT name FROM birds")
        assert store.put(result) == result.size_estimate()


class TestStoredMetadata:
    def test_put_persists_replacement_metadata(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        size = store.put(result, cost=42.5, access_count=3, last_access=17)
        (meta,) = store.load_metadata()
        assert meta.qid == result.qid
        assert meta.size_bytes == size
        assert meta.cost == 42.5
        assert meta.access_count == 3
        assert meta.last_access == 17
        store.close()

    def test_cost_defaults_to_plan_cost(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        store.put(result)
        (meta,) = store.load_metadata()
        assert meta.cost == float(result.plan_cost)
        store.close()

    def test_update_access_refreshes_bookkeeping(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        store.put(result)
        store.update_access(result.qid, access_count=9, last_access=33)
        (meta,) = store.load_metadata()
        assert (meta.access_count, meta.last_access) == (9, 33)
        store.close()

    def test_metadata_survives_reopen(self, populated, tmp_path):
        path = str(tmp_path / "cache.db")
        store = SQLiteResultStore(path, registry=populated.catalog.registry)
        result = populated.query("SELECT name FROM birds")
        store.put(result, cost=7.0, access_count=2, last_access=5)
        store.close()
        reopened = SQLiteResultStore(path, registry=populated.catalog.registry)
        (meta,) = reopened.load_metadata()
        assert (meta.cost, meta.access_count, meta.last_access) == (7.0, 2, 5)
        reopened.close()

    def test_migrates_pre_metadata_schema(self, populated, tmp_path):
        """A cache file written by the two-column schema gains the
        metadata columns in place and keeps its payloads readable."""
        import json
        import sqlite3

        path = str(tmp_path / "old.db")
        result = populated.query("SELECT name FROM birds")
        legacy = sqlite3.connect(path)
        legacy.execute(
            "CREATE TABLE cached_results (qid INTEGER PRIMARY KEY, "
            "payload TEXT NOT NULL)"
        )
        legacy.execute(
            "INSERT INTO cached_results VALUES (?, ?)",
            (result.qid, json.dumps(result.to_json())),
        )
        legacy.commit()
        legacy.close()
        store = SQLiteResultStore(path, registry=populated.catalog.registry)
        revived = store.get(result.qid)
        assert revived is not None and revived.rows() == result.rows()
        (meta,) = store.load_metadata()
        assert meta.qid == result.qid
        assert meta.size_bytes == 0  # unknown for legacy rows
        store.update_access(result.qid, access_count=1, last_access=1)
        store.close()


class TestCacheWithDiskStore:
    def test_cache_over_sqlite_store(self, populated):
        cache = ZoomInCache(
            capacity_bytes=10**6,
            store=SQLiteResultStore(registry=populated.catalog.registry),
        )
        result = populated.query("SELECT name FROM birds")
        assert cache.put(result)
        revived = cache.get(result.qid)
        assert revived is not None
        assert revived.rows() == result.rows()
        assert cache.stats.hits == 1

    def test_eviction_deletes_from_store(self, populated):
        store = SQLiteResultStore(registry=populated.catalog.registry)
        first = populated.query("SELECT name FROM birds")
        single = store.put(first)
        store.delete(first.qid)
        cache = ZoomInCache(capacity_bytes=int(single * 2.2), store=store)
        qids = []
        for _ in range(3):
            result = populated.query("SELECT name FROM birds")
            cache.put(result)
            qids.append(result.qid)
        assert len(cache) == 2
        assert store.get(qids[0]) is None  # evicted from disk too

    def test_session_with_disk_cache(self):
        notes = InsightNotes(cache_store="disk")
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        notes.define_classifier("C", ["a", "b"], [("one", "a"), ("two", "b")])
        notes.link("C", "t")
        notes.add_annotation("one one", table="t", row_id=1)
        result = notes.query("SELECT v FROM t")
        zoom = notes.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1")
        assert zoom.cache_hit
        assert zoom.annotation_count() == 1
        notes.close()

    def test_memory_store_is_default(self):
        cache = ZoomInCache()
        assert isinstance(cache.store, MemoryResultStore)
