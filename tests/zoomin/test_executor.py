"""Tests for repro.zoomin.executor."""

import pytest

from repro import InsightNotes
from repro.errors import UnknownQueryIdError, ZoomInError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("T", ["C1", "C2", "C3"])
    notes.insert("T", ("x", "y", 5))
    notes.insert("T", ("x", "y", 10))
    notes.define_classifier("NB", ["refute", "approve"], [
        ("value is wrong needs fixing", "refute"),
        ("invalid experiment reject", "refute"),
        ("confirmed and verified correct", "approve"),
        ("looks correct to me", "approve"),
    ])
    notes.link("NB", "T")
    notes.add_annotation("value 5 is wrong", table="T", row_id=1)
    notes.add_annotation("needs fixing invalid", table="T", row_id=2)
    notes.add_annotation("invalid experiment", table="T", row_id=2)
    notes.add_annotation("confirmed correct", table="T", row_id=1)
    yield notes
    notes.close()


class TestExecution:
    def test_figure3a_refuting_annotations(self, stack):
        result = stack.query("SELECT C1, C2, C3 FROM T")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} WHERE C1 = 'x' "
            f"ON NB INDEX 1"
        )
        counts = [len(match.annotations) for match in zoom.matches]
        assert counts == [1, 2]  # one refute on r1, two on r2

    def test_predicate_filters_tuples(self, stack):
        result = stack.query("SELECT C1, C2, C3 FROM T")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} WHERE C3 = 5 ON NB INDEX 2"
        )
        assert len(zoom.matches) == 1
        assert zoom.matches[0].annotations[0].text == "confirmed correct"

    def test_no_index_expands_all_components(self, stack):
        result = stack.query("SELECT C1 FROM T LIMIT 1")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON NB"
        )
        labels = [match.component.label for match in zoom.matches]
        assert labels == ["refute", "approve"]

    def test_annotation_count(self, stack):
        result = stack.query("SELECT C1, C2, C3 FROM T")
        zoom = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB")
        assert zoom.annotation_count() == 4

    def test_unknown_qid_raises(self, stack):
        with pytest.raises(UnknownQueryIdError):
            stack.zoomin("ZOOMIN REFERENCE QID = 9999 ON NB")

    def test_index_out_of_range(self, stack):
        result = stack.query("SELECT C1 FROM T")
        with pytest.raises(ZoomInError, match="out of range"):
            stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB INDEX 7")

    def test_unknown_instance_raises_with_available_list(self, stack):
        result = stack.query("SELECT C1 FROM T")
        with pytest.raises(ZoomInError, match="available"):
            stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON Nope")

    def test_no_matching_tuples_is_empty_not_error(self, stack):
        result = stack.query("SELECT C1, C2, C3 FROM T")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} WHERE C3 = 999 ON NB"
        )
        assert zoom.matches == []


class TestCacheInteraction:
    def test_query_result_pre_populates_cache(self, stack):
        result = stack.query("SELECT C1 FROM T")
        zoom = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB")
        assert zoom.cache_hit

    def test_miss_falls_back_to_registry_and_refills(self, stack):
        result = stack.query("SELECT C1 FROM T")
        stack.cache.invalidate(result.qid)
        zoom = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB")
        assert not zoom.cache_hit
        assert result.qid in stack.cache  # refilled
        second = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB")
        assert second.cache_hit

    def test_repeated_zoomins_bump_reference_counts(self, stack):
        result = stack.query("SELECT C1 FROM T")
        for _ in range(3):
            stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON NB INDEX 1")
        entry = stack.cache._entries[result.qid]
        assert entry.access_count == 3
