"""Tests for repro.zoomin.rco."""

import pytest

from repro.zoomin.policies import CacheEntry
from repro.zoomin.rco import RCOPolicy, RCOWeights


def entry(qid, size=1024, cost=5, accessed=0, count=0):
    return CacheEntry(
        qid=qid, size_bytes=size, cost=cost,
        inserted_at=0, last_access=accessed, access_count=count,
    )


class TestRCOFactors:
    def test_recently_accessed_ranks_higher(self):
        policy = RCOPolicy()
        recent = entry(1, accessed=99)
        stale = entry(2, accessed=1)
        assert policy.priority(recent, 100) > policy.priority(stale, 100)

    def test_frequently_accessed_ranks_higher(self):
        policy = RCOPolicy()
        hot = entry(1, count=50)
        cold = entry(2, count=0)
        assert policy.priority(hot, 100) > policy.priority(cold, 100)

    def test_expensive_results_rank_higher(self):
        policy = RCOPolicy()
        expensive = entry(1, cost=100)
        cheap = entry(2, cost=1)
        assert policy.priority(expensive, 100) > policy.priority(cheap, 100)

    def test_large_results_rank_lower(self):
        policy = RCOPolicy()
        small = entry(1, size=512)
        huge = entry(2, size=1024 * 1024)
        assert policy.priority(small, 100) > policy.priority(huge, 100)

    def test_victim_is_minimum_priority(self):
        policy = RCOPolicy()
        entries = [
            entry(1, count=10, cost=50),  # hot, expensive -> keep
            entry(2, count=0, cost=1, size=1024 * 512),  # cold, big -> evict
            entry(3, count=2, cost=5),
        ]
        assert policy.victim(entries, now=100).qid == 2


class TestRCOWeights:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RCOWeights(recency=-1.0)

    def test_zero_overhead_weight_ignores_size(self):
        policy = RCOPolicy(RCOWeights(overhead=0.0))
        small = entry(1, size=10)
        huge = entry(2, size=10**9)
        assert policy.priority(small, 0) == pytest.approx(
            policy.priority(huge, 0)
        )

    def test_zero_complexity_weight_ignores_cost(self):
        policy = RCOPolicy(RCOWeights(complexity=0.0))
        cheap = entry(1, cost=1)
        dear = entry(2, cost=1000)
        assert policy.priority(cheap, 0) == pytest.approx(
            policy.priority(dear, 0)
        )

    def test_weight_sweep_changes_victim(self):
        # A big expensive result vs a small cheap one: the overhead weight
        # decides which goes first.
        big_expensive = entry(1, size=1024 * 256, cost=200, count=3)
        small_cheap = entry(2, size=256, cost=1, count=3)
        keep_expensive = RCOPolicy(RCOWeights(overhead=0.0))
        punish_size = RCOPolicy(RCOWeights(overhead=3.0))
        assert keep_expensive.victim([big_expensive, small_cheap], 10).qid == 2
        assert punish_size.victim([big_expensive, small_cheap], 10).qid == 1
