"""Tests for the ZOOMIN DETAIL levels."""

import pytest

from repro import InsightNotes
from repro.errors import ZoomInSyntaxError
from repro.zoomin.command import ZoomInCommand, parse_zoomin
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("t", ["v"])
    notes.insert("t", ("x",))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "t")
    notes.add_annotation("observed feeding on stonewort", table="t", row_id=1)
    notes.add_annotation("seen foraging near shore", table="t", row_id=1)
    yield notes
    notes.close()


class TestParsing:
    def test_detail_count(self):
        command = parse_zoomin("ZOOMIN REFERENCE QID = 1 ON C DETAIL COUNT")
        assert command.detail == "count"

    def test_detail_full_is_default(self):
        assert parse_zoomin("ZOOMIN REFERENCE QID = 1 ON C").detail == "full"

    def test_detail_after_index(self):
        command = parse_zoomin(
            "ZOOMIN REFERENCE QID = 1 ON C INDEX 2 DETAIL FULL"
        )
        assert command.index == 2
        assert command.detail == "full"

    def test_invalid_detail_rejected(self):
        with pytest.raises(ZoomInSyntaxError, match="COUNT or FULL"):
            parse_zoomin("ZOOMIN REFERENCE QID = 1 ON C DETAIL SOME")

    def test_command_validation(self):
        with pytest.raises(ZoomInSyntaxError, match="DETAIL"):
            ZoomInCommand(qid=1, instance="C", detail="nope")

    def test_render_round_trips_detail(self):
        command = parse_zoomin("ZOOMIN REFERENCE QID = 3 ON C DETAIL COUNT")
        assert parse_zoomin(command.render()).detail == "count"


class TestExecution:
    def test_count_mode_skips_annotation_fetch(self, stack):
        result = stack.query("SELECT v FROM t")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1 DETAIL COUNT"
        )
        match = zoom.matches[0]
        assert match.component.count == 2  # counts still reported
        assert match.annotations == []  # bodies not fetched

    def test_full_mode_fetches(self, stack):
        result = stack.query("SELECT v FROM t")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1 DETAIL FULL"
        )
        assert len(zoom.matches[0].annotations) == 2
