"""Tests for the structured query-tracing layer."""

from __future__ import annotations

from repro import InsightNotes
from repro.zoomin.tracing import (
    CacheEvent,
    TraceStore,
    plan_fingerprint,
)
from tests.conftest import TRAINING


class TestPlanFingerprint:
    def test_whitespace_insensitive(self):
        assert plan_fingerprint("Scan(t)\n  Hydrate(t)") == plan_fingerprint(
            "Scan(t)   Hydrate(t)"
        )

    def test_different_plans_differ(self):
        assert plan_fingerprint("Scan(a)") != plan_fingerprint("Scan(b)")

    def test_short_stable_hex(self):
        fingerprint = plan_fingerprint("Scan(t)")
        assert len(fingerprint) == 12
        assert fingerprint == plan_fingerprint("Scan(t)")
        int(fingerprint, 16)  # hex, no raise


class TestTraceStore:
    def _result(self, qid):
        from repro.engine.results import QueryResult

        return QueryResult(
            qid=qid, columns=("a",), tuples=[], plan_text=f"Scan(t{qid})"
        )

    def test_bounded_oldest_first(self):
        store = TraceStore(capacity=2)
        for qid in (1, 2, 3):
            store.record_query(self._result(qid))
        assert store.qids() == [2, 3]
        assert store.get(1) is None

    def test_events_on_aged_out_trace_are_dropped(self):
        store = TraceStore(capacity=1)
        store.record_query(self._result(1))
        store.record_query(self._result(2))
        store.record_event(1, CacheEvent("evict"))  # no raise, no effect
        assert store.get(1) is None
        store.record_event(2, CacheEvent("admit", tier="memory"))
        assert [e.kind for e in store.get(2).cache_events] == ["admit"]

    def test_to_json_round_trip(self):
        import json

        store = TraceStore()
        store.record_query(self._result(7))
        store.record_event(7, CacheEvent("admit", tier="memory", detail="x"))
        payload = store.to_json(7)
        json.dumps(payload)  # no raise
        assert payload["qid"] == 7
        assert payload["fingerprint"] == plan_fingerprint("Scan(t7)")
        assert payload["cache_events"] == [
            {"kind": "admit", "tier": "memory", "detail": "x"}
        ]
        assert store.to_json(404) is None


class TestSessionTracing:
    def _populated(self, **kwargs):
        notes = InsightNotes(**kwargs)
        notes.create_table("birds", ["name", "weight"])
        notes.insert_many("birds", [(f"b{i}", float(i)) for i in range(8)])
        notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        notes.link("C", "birds")
        notes.add_annotation(
            "observed feeding on stonewort", table="birds", row_id=1
        )
        return notes

    def test_trace_covers_plan_execution_and_cache(self):
        notes = self._populated(cache_disk_bytes=1024 * 1024)
        result = notes.query("SELECT name FROM birds", trace=True)
        notes.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1")
        trace = notes.trace(result.qid)
        assert trace is not None
        assert trace["qid"] == result.qid
        assert trace["sql"] == "SELECT name FROM birds"
        assert trace["fingerprint"] == plan_fingerprint(result.plan_text)
        assert trace["cost_estimate"] > 0
        assert trace["execution"]["rows_scanned"] == 8
        # trace=True recorded inclusive per-operator timings.
        operators = {t["operator"] for t in trace["operator_timings"]}
        assert any("Scan" in op for op in operators)
        assert all(t["seconds"] >= 0 for t in trace["operator_timings"])
        # The cache's view of the result's life so far.
        kinds = [e["kind"] for e in trace["cache_events"]]
        assert kinds[0] == "admit"
        assert "hit-memory" in kinds
        notes.close()

    def test_untraced_query_has_no_operator_timings(self):
        notes = self._populated(cache_disk_bytes=1024 * 1024)
        result = notes.query("SELECT name FROM birds")
        trace = notes.trace(result.qid)
        assert trace["operator_timings"] == []
        assert trace["fingerprint"]
        notes.close()

    def test_single_tier_session_traces_too(self):
        notes = self._populated()  # prototype cache, no disk tier
        result = notes.query("SELECT name FROM birds")
        trace = notes.trace(result.qid)
        assert trace is not None and trace["qid"] == result.qid
        assert notes.trace(424242) is None
        notes.close()

    def test_trace_history_is_bounded(self):
        notes = self._populated(trace_history=2)
        qids = [
            notes.query("SELECT name FROM birds").qid for _ in range(3)
        ]
        assert notes.trace(qids[0]) is None
        assert notes.trace(qids[2]) is not None
        notes.close()

    def test_statistics_expose_unified_zoomin_counters(self):
        notes = self._populated(cache_disk_bytes=1024 * 1024)
        result = notes.query("SELECT name FROM birds")
        notes.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1")
        stats = notes.statistics()
        zoomin = stats["zoomin"]
        assert zoomin["memory_hits"] == 1
        assert zoomin["insertions"] >= 1
        assert {"misses", "demotions", "promotions", "rejected_cheap"} <= set(
            zoomin
        )
        assert zoomin["tiers"]["disk"]["capacity_bytes"] == 1024 * 1024
        # The legacy key stays coherent with the unified shape.
        assert stats["zoomin_cache"]["hits"] == 1
        assert stats["traces_retained"] >= 1
        notes.close()
