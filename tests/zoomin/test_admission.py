"""Tests for the cost-aware admission policy."""

import pytest

from repro.zoomin.admission import (
    ADMITTED,
    PINNED,
    REJECTED_CHEAP,
    REJECTED_OVERSIZE,
    AdmitAll,
    CostAwareAdmission,
)

_CAP = 1000


class TestAdmitAll:
    def test_admits_anything_that_fits(self):
        verdict = AdmitAll().assess(_CAP, recompute_cost=0.0, capacity_bytes=_CAP)
        assert verdict.admitted and not verdict.pinned
        assert verdict.reason == ADMITTED

    def test_rejects_larger_than_capacity(self):
        verdict = AdmitAll().assess(
            _CAP + 1, recompute_cost=10**9, capacity_bytes=_CAP
        )
        assert not verdict.admitted
        assert verdict.reason == REJECTED_OVERSIZE


class TestCostAwareAdmission:
    def policy(self, **overrides):
        defaults = dict(
            min_recompute_cost=10.0,
            pin_cost=1000.0,
            max_entry_fraction=0.5,
            max_pinned_fraction=0.5,
        )
        defaults.update(overrides)
        return CostAwareAdmission(**defaults)

    def test_cheap_result_never_admitted(self):
        verdict = self.policy().assess(100, 9.9, _CAP)
        assert not verdict.admitted
        assert verdict.reason == REJECTED_CHEAP

    def test_worth_caching_is_admitted_unpinned(self):
        verdict = self.policy().assess(100, 10.0, _CAP)
        assert verdict.admitted and not verdict.pinned
        assert verdict.reason == ADMITTED

    def test_expensive_plan_is_pinned(self):
        verdict = self.policy().assess(100, 1000.0, _CAP)
        assert verdict.admitted and verdict.pinned
        assert verdict.reason == PINNED

    def test_oversize_rejected_before_cost_rules(self):
        # 501 > 0.5 * 1000: too big even though the cost would pin it.
        verdict = self.policy().assess(501, 10**6, _CAP)
        assert not verdict.admitted
        assert verdict.reason == REJECTED_OVERSIZE

    def test_pinning_capped_by_pinned_fraction(self):
        """Past the pinned watermark an expensive result is still
        admitted, just unpinned — pinning must never wedge the cache."""
        verdict = self.policy().assess(
            100, 10**6, _CAP, pinned_bytes=450
        )
        assert verdict.admitted and not verdict.pinned
        assert verdict.reason == ADMITTED

    def test_pinning_allowed_at_exact_watermark(self):
        verdict = self.policy().assess(
            100, 10**6, _CAP, pinned_bytes=400
        )
        assert verdict.pinned

    def test_verdict_json_carries_the_numbers(self):
        verdict = self.policy().assess(64, 123.4567, _CAP)
        payload = verdict.to_json()
        assert payload["admitted"] is True
        assert payload["reason"] == ADMITTED
        assert payload["recompute_cost"] == 123.457
        assert payload["size_bytes"] == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_recompute_cost": -1.0},
            {"pin_cost": 5.0},  # below min_recompute_cost=10
            {"max_entry_fraction": 0.0},
            {"max_entry_fraction": 1.5},
            {"max_pinned_fraction": -0.1},
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            self.policy(**kwargs)
