"""Tests for repro.workloads.generator."""

import pytest

from repro.workloads.generator import WorkloadConfig, build_workload


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError, match="document_fraction"):
            WorkloadConfig(document_fraction=1.5)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="num_birds"):
            WorkloadConfig(num_birds=0)
        with pytest.raises(ValueError, match="annotations_per_row"):
            WorkloadConfig(annotations_per_row=-1)


class TestBuildWorkload:
    def test_row_counts_match_config(self, small_workload):
        config = small_workload.config
        assert len(small_workload.bird_rows) == config.num_birds
        assert len(small_workload.sighting_rows) == config.num_sightings

    def test_annotation_ratio_respected(self, small_workload):
        config = small_workload.config
        expected = config.num_birds * config.annotations_per_row
        assert small_workload.annotation_count == expected
        assert small_workload.session.annotations.count() == expected

    def test_instances_defined_and_linked(self, small_workload):
        session = small_workload.session
        assert session.catalog.instance_names() == [
            "ClassBird1", "ClassBird2", "SimCluster", "TextSummary1",
        ]
        for instance in session.catalog.instance_names():
            assert session.catalog.is_linked(instance, "birds")

    def test_ground_truth_covers_all_annotations(self, small_workload):
        stored_ids = {
            a.annotation_id
            for a in small_workload.session.annotations.iter_all()
        }
        assert set(small_workload.ground_truth) == stored_ids

    def test_summaries_populated(self, small_workload):
        session = small_workload.session
        result = session.query("SELECT name, species, region, weight FROM birds")
        for row in result.tuples:
            classifier = row.summaries["ClassBird1"]
            assert sum(count for _, count in classifier.counts()) > 0

    def test_deterministic_generation(self):
        config = WorkloadConfig(num_birds=3, num_sightings=4,
                                annotations_per_row=5, seed=21)
        first = build_workload(config)
        second = build_workload(config)
        assert first.ground_truth == second.ground_truth
        first_rows = first.session.query("SELECT * FROM birds").rows()
        second_rows = second.session.query("SELECT * FROM birds").rows()
        assert first_rows == second_rows
        first.session.close()
        second.session.close()

    def test_instances_configurable(self):
        workload = build_workload(
            WorkloadConfig(num_birds=2, num_sightings=2, annotations_per_row=2,
                           with_classifiers=False, with_snippet=False)
        )
        assert workload.session.catalog.instance_names() == ["SimCluster"]
        workload.session.close()

    def test_document_annotations_marked(self):
        workload = build_workload(
            WorkloadConfig(num_birds=2, num_sightings=0,
                           annotations_per_row=40, document_fraction=0.3,
                           seed=5)
        )
        assert workload.document_ids
        annotation = workload.session.annotations.get(workload.document_ids[0])
        assert annotation.is_document
        workload.session.close()
