"""Tests for repro.workloads.domains and the genomics workload."""

import pytest

from repro.summaries.naive_bayes import NaiveBayesClassifier
from repro.workloads import (
    GENOMICS,
    ORNITHOLOGY,
    PROFILES,
    AnnotationFactory,
    CorpusGenerator,
    WorkloadConfig,
    build_genomics_workload,
)


class TestProfiles:
    def test_registry_contains_both(self):
        assert set(PROFILES) == {"ornithology", "genomics"}

    def test_categories_declared_in_order(self):
        assert ORNITHOLOGY.categories[0] == "Behavior"
        assert GENOMICS.categories[0] == "FunctionPrediction"

    def test_default_weights_cover_categories(self):
        for profile in PROFILES.values():
            assert set(profile.default_weights) == set(profile.categories)

    def test_pools_are_immutable(self):
        with pytest.raises(TypeError):
            GENOMICS.pools["FunctionPrediction"] = {}  # type: ignore[index]


class TestGenomicsCorpus:
    def test_sentences_per_category(self):
        corpus = CorpusGenerator(seed=1, profile=GENOMICS)
        for category in GENOMICS.categories:
            assert corpus.sentence(category).strip()

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown category"):
            CorpusGenerator(profile=GENOMICS).sentence("Behavior")

    def test_factory_uses_profile_weights(self):
        factory = AnnotationFactory(seed=2, profile=GENOMICS)
        categories = {factory.draw()[1] for _ in range(60)}
        assert categories <= set(GENOMICS.categories)

    def test_genomics_categories_learnable(self):
        corpus = CorpusGenerator(seed=3, profile=GENOMICS)
        train = corpus.labelled_sentences(100)
        test = CorpusGenerator(seed=99, profile=GENOMICS).labelled_sentences(50)
        model = NaiveBayesClassifier(GENOMICS.categories).fit(train)
        correct = sum(model.predict(text) == label for text, label in test)
        assert correct / len(test) > 0.8

    def test_profiles_produce_distinct_vocabulary(self):
        birds = CorpusGenerator(seed=1, profile=ORNITHOLOGY)
        genes = CorpusGenerator(seed=1, profile=GENOMICS)
        bird_text = " ".join(t for t, _ in birds.labelled_sentences(120))
        gene_text = " ".join(t for t, _ in genes.labelled_sentences(120))
        from repro.text.tokenize import tokenize

        overlap_free_bird = set(tokenize(bird_text)) - set(tokenize(gene_text))
        # The domains share function words but keep distinct content terms.
        assert {"wing", "flock"} & overlap_free_bird or "stonewort" in bird_text
        assert "stonewort" not in gene_text
        assert "crispr" not in bird_text


class TestGenomicsWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        generated = build_genomics_workload(
            WorkloadConfig(num_birds=5, num_sightings=6,
                           annotations_per_row=6, seed=9)
        )
        yield generated
        generated.session.close()

    def test_tables_created(self, workload):
        assert workload.session.db.tables() == ["assays", "genes"]
        assert workload.session.db.row_count("genes") == 5

    def test_instances_linked(self, workload):
        assert workload.session.catalog.instance_names() == [
            "GeneClasses", "GeneCluster", "GeneDocs",
        ]

    def test_annotations_summarized(self, workload):
        result = workload.session.query("SELECT symbol FROM genes")
        for row in result.tuples:
            total = sum(c for _, c in row.summaries["GeneClasses"].counts())
            assert total > 0

    def test_ground_truth_recorded(self, workload):
        assert len(workload.ground_truth) == 30
        assert set(workload.ground_truth.values()) <= set(
            GENOMICS.categories
        ) | {"Comment"}

    def test_join_across_gene_tables(self, workload):
        result = workload.session.query(
            "SELECT g.symbol, a.tissue FROM genes g, assays a "
            "WHERE g.organism = a.organism"
        )
        assert result.columns == ("g.symbol", "a.tissue")

    def test_deterministic(self):
        config = WorkloadConfig(num_birds=3, num_sightings=3,
                                annotations_per_row=4, seed=11)
        first = build_genomics_workload(config)
        second = build_genomics_workload(config)
        assert first.ground_truth == second.ground_truth
        first.session.close()
        second.session.close()
