"""Tests for repro.workloads.zoomin_workload."""

import pytest

from repro.workloads.zoomin_workload import ZoomInWorkload, zipf_weights


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)

    def test_exponent_zero_is_uniform(self):
        assert zipf_weights(4, exponent=0.0) == [1.0] * 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=-1)


class TestZoomInWorkload:
    def test_stream_length(self):
        workload = ZoomInWorkload([101, 102], ["A"], seed=1)
        assert len(workload.stream(25)) == 25

    def test_references_only_known_qids_and_instances(self):
        workload = ZoomInWorkload([101, 102], ["A", "B"], seed=1)
        for reference in workload.stream(50):
            assert reference.qid in (101, 102)
            assert reference.instance in ("A", "B")

    def test_skew_prefers_first_qids(self):
        workload = ZoomInWorkload(list(range(1, 21)), ["A"],
                                  exponent=1.5, seed=2)
        stream = workload.stream(500)
        first_half = sum(1 for r in stream if r.qid <= 10)
        assert first_half > 350  # strongly skewed toward early ranks

    def test_command_text_round_trips(self):
        from repro.zoomin.command import parse_zoomin

        workload = ZoomInWorkload([101], ["Inst"], seed=3)
        reference = workload.draw()
        command = parse_zoomin(reference.command_text())
        assert command.qid == reference.qid
        assert command.instance == reference.instance

    def test_validation(self):
        with pytest.raises(ValueError, match="qids"):
            ZoomInWorkload([], ["A"])
        with pytest.raises(ValueError, match="instances"):
            ZoomInWorkload([1], [])

    def test_deterministic(self):
        first = ZoomInWorkload([1, 2, 3], ["A"], seed=7).stream(10)
        second = ZoomInWorkload([1, 2, 3], ["A"], seed=7).stream(10)
        assert first == second
