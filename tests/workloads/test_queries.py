"""Tests for repro.workloads.queries."""

from repro.workloads.queries import QueryWorkload


class TestQueryWorkload:
    def test_all_classes_parse_and_run(self, small_workload):
        session = small_workload.session
        workload = QueryWorkload(seed=4)
        for query in workload.mixed(10):
            result = session.query(query.sql)
            assert result.columns  # executed without raising

    def test_mixed_covers_all_classes(self):
        workload = QueryWorkload(seed=4)
        classes = {q.query_class for q in workload.mixed(10)}
        assert classes == {"select", "project", "spj", "aggregate", "summary"}

    def test_projection_width_clamped(self):
        workload = QueryWorkload()
        assert workload.projection(0).sql.count(",") == 0
        assert workload.projection(99).sql.count(",") == 3

    def test_deterministic(self):
        first = [q.sql for q in QueryWorkload(seed=8).mixed(6)]
        second = [q.sql for q in QueryWorkload(seed=8).mixed(6)]
        assert first == second

    def test_summary_predicate_query_runs(self, small_workload):
        query = QueryWorkload(seed=1).summary_predicate()
        result = small_workload.session.query(query.sql)
        assert result.columns == ("birds.name", "birds.species")
