"""Tests for repro.workloads.corpus."""

import pytest

from repro.summaries.naive_bayes import NaiveBayesClassifier
from repro.workloads.corpus import (
    ANNOTATION_CATEGORIES,
    AnnotationFactory,
    CorpusGenerator,
)


class TestCorpusGenerator:
    def test_sentence_is_nonempty(self):
        corpus = CorpusGenerator(seed=1)
        for category in ANNOTATION_CATEGORIES:
            assert corpus.sentence(category).strip()

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown category"):
            CorpusGenerator().sentence("Nope")

    def test_deterministic_under_seed(self):
        first = CorpusGenerator(seed=5)
        second = CorpusGenerator(seed=5)
        assert [first.sentence("Behavior") for _ in range(5)] == [
            second.sentence("Behavior") for _ in range(5)
        ]

    def test_labelled_sentences_round_robin(self):
        corpus = CorpusGenerator(seed=1)
        pairs = corpus.labelled_sentences(6, ("Behavior", "Disease"))
        assert [label for _, label in pairs] == [
            "Behavior", "Disease"] * 3

    def test_document_has_title_and_sentences(self):
        corpus = CorpusGenerator(seed=2)
        title, body = corpus.document(sentence_count=8)
        assert title.startswith("Report on")
        assert body.count(".") >= 8

    def test_categories_are_learnable(self):
        # The point of the synthetic corpus: a Naive Bayes classifier must
        # be able to separate the categories.
        corpus = CorpusGenerator(seed=3)
        train = corpus.labelled_sentences(120)
        test = CorpusGenerator(seed=99).labelled_sentences(60)
        model = NaiveBayesClassifier(ANNOTATION_CATEGORIES).fit(train)
        correct = sum(
            model.predict(text) == label for text, label in test
        )
        assert correct / len(test) > 0.8


class TestAnnotationFactory:
    def test_draw_returns_known_category(self):
        factory = AnnotationFactory(seed=1)
        text, category = factory.draw()
        assert category in ANNOTATION_CATEGORIES
        assert text.strip()

    def test_weights_shape_distribution(self):
        factory = AnnotationFactory(
            seed=1, category_weights={"Behavior": 1.0, "Disease": 0.0}
        )
        categories = {factory.draw()[1] for _ in range(50)}
        assert categories == {"Behavior"}

    def test_training_set_balanced(self):
        factory = AnnotationFactory(seed=1)
        training = factory.training_set(per_category=4)
        labels = [label for _, label in training]
        for category in factory.category_weights:
            assert labels.count(category) == 4

    def test_deterministic(self):
        assert AnnotationFactory(seed=9).draw() == AnnotationFactory(seed=9).draw()

    def test_draw_document(self):
        title, body = AnnotationFactory(seed=1).draw_document(6)
        assert title and body
