"""Tests for repro.tools.export (portable export / import)."""

import pytest

from repro import InsightNotes
from repro.errors import InsightNotesError
from repro.tools import (
    export_database,
    export_to_file,
    import_database,
    import_from_file,
)
from repro.workloads import WorkloadConfig, build_workload


@pytest.fixture(scope="module")
def exported():
    workload = build_workload(
        WorkloadConfig(num_birds=4, num_sightings=6, annotations_per_row=6,
                       document_fraction=0.1, seed=23)
    )
    data = export_database(workload.session)
    yield workload.session, data
    workload.session.close()


class TestExport:
    def test_format_version_stamped(self, exported):
        _session, data = exported
        assert data["format_version"] == 1

    def test_tables_and_rows_captured(self, exported):
        session, data = exported
        names = {table["name"] for table in data["tables"]}
        assert names == {"birds", "sightings"}
        birds = next(t for t in data["tables"] if t["name"] == "birds")
        assert len(birds["rows"]) == session.db.row_count("birds")
        assert all("row_id" in row for row in birds["rows"])

    def test_annotations_with_cells(self, exported):
        session, data = exported
        assert len(data["annotations"]) == session.annotations.count()
        assert all(entry["cells"] for entry in data["annotations"])

    def test_instances_and_links(self, exported):
        session, data = exported
        assert {i["name"] for i in data["instances"]} == set(
            session.catalog.instance_names()
        )
        assert len(data["links"]) == len(session.catalog.links())

    def test_json_serializable(self, exported):
        import json

        _session, data = exported
        json.dumps(data)


class TestImport:
    def test_round_trip_rows(self, exported):
        session, data = exported
        clone = import_database(data)
        for table in session.db.tables():
            assert list(clone.db.rows(table)) == list(session.db.rows(table))
        clone.close()

    def test_round_trip_summaries(self, exported):
        session, data = exported
        clone = import_database(data)
        sql = "SELECT name, species, region, weight FROM birds"
        original = session.query(sql)
        imported = clone.query(sql)
        for left, right in zip(original.tuples, imported.tuples):
            assert {k: v.render() for k, v in left.summaries.items()} == {
                k: v.render() for k, v in right.summaries.items()
            }
        clone.close()

    def test_round_trip_zoomin(self, exported):
        _session, data = exported
        clone = import_database(data)
        result = clone.query("SELECT name, species FROM birds")
        zoom = clone.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON ClassBird1 INDEX 1"
        )
        assert zoom.annotation_count() >= 0  # executes without raising
        clone.close()

    def test_version_check(self, exported):
        _session, data = exported
        bad = dict(data, format_version=99)
        with pytest.raises(InsightNotesError, match="format version"):
            import_database(bad)

    def test_file_round_trip(self, exported, tmp_path):
        session, data = exported
        path = tmp_path / "export.json"
        export_to_file(session, path)
        clone = import_from_file(path)
        assert clone.annotations.count() == session.annotations.count()
        clone.close()

    def test_import_preserves_rowids(self, exported):
        session, data = exported
        clone = import_database(data)
        original_ids = [row_id for row_id, _ in session.db.rows("birds")]
        imported_ids = [row_id for row_id, _ in clone.db.rows("birds")]
        assert original_ids == imported_ids
        clone.close()

    def test_import_after_deletions_keeps_ids_aligned(self):
        # Deleting annotations leaves id gaps; the import must reproduce
        # the surviving ids exactly (attachments reference them).
        notes = InsightNotes()
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        first = notes.add_annotation("first", table="t", row_id=1)
        second = notes.add_annotation("second", table="t", row_id=1)
        notes.delete_annotation(first.annotation_id)
        data = export_database(notes)
        clone = import_database(data)
        survivors = [a.annotation_id for a in clone.annotations.iter_all()]
        assert survivors == [second.annotation_id]
        notes.close()
        clone.close()

    def test_import_with_extension_registry(self):
        from repro.summaries import extended_registry

        notes = InsightNotes(registry=extended_registry())
        notes.create_table("t", ["v"])
        notes.insert("t", ("x",))
        notes.define_instance("Terms", "Hot", {"top_k": 3})
        notes.link("Hot", "t")
        notes.add_annotation("stonewort feeding", table="t", row_id=1)
        data = export_database(notes)
        # Importing without the extension registry fails clearly...
        from repro.errors import UnknownSummaryTypeError

        with pytest.raises(UnknownSummaryTypeError):
            import_database(data)
        # ...and succeeds with it.
        clone = import_database(data, registry=extended_registry())
        result = clone.query("SELECT v FROM t")
        assert result.tuples[0].summaries["Hot"].term_count("stonewort") == 1
        notes.close()
        clone.close()
