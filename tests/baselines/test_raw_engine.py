"""Tests for repro.baselines.raw_engine."""

import pytest

from repro import InsightNotes
from repro.baselines import RawQueryEngine
from repro.engine import plan as lp
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.sqlparser import build_logical, parse_sql


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b"])
    notes.create_table("S", ["x", "z"])
    notes.insert("R", (1, 2))
    notes.insert("R", (1, 3))
    notes.insert("R", (4, 2))
    notes.insert("S", (1, "z1"))
    notes.insert("S", (4, "z4"))
    notes.add_annotation("alpha note", table="R", row_id=1, columns=["a"])
    notes.add_annotation("beta note", table="R", row_id=1, columns=["b"])
    notes.add_annotation("gamma note", table="S", row_id=1, columns=["x"])
    yield notes, RawQueryEngine(notes.db, notes.annotations)
    notes.close()


def run_sql(notes, engine, sql):
    logical = build_logical(parse_sql(sql), notes.planner)
    return engine.execute(notes.planner.prepare(logical))


class TestRawPropagation:
    def test_scan_attaches_raw_annotations(self, stack):
        notes, engine = stack
        result = engine.execute(lp.Scan("R", "r"))
        first = result.tuples[0]
        texts = sorted(a.text for a, _ in first.annotations.values())
        assert texts == ["alpha note", "beta note"]

    def test_projection_drops_annotations(self, stack):
        notes, engine = stack
        result = engine.execute(lp.Project(lp.Scan("R", "r"), ("r.a",)))
        first = result.tuples[0]
        texts = [a.text for a, _ in first.annotations.values()]
        assert texts == ["alpha note"]

    def test_selection_keeps_annotations(self, stack):
        notes, engine = stack
        result = engine.execute(
            lp.Select(lp.Scan("R", "r"), Comparison("=", Column("r.b"), Literal(2)))
        )
        assert len(result.tuples[0].annotations) == 2

    def test_join_unions_annotations(self, stack):
        notes, engine = stack
        result = run_sql(
            notes, engine, "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x"
        )
        joined = next(t for t in result.tuples if t.values[:2] == (1, 2))
        texts = sorted(a.text for a, _ in joined.annotations.values())
        assert texts == ["alpha note", "beta note", "gamma note"]

    def test_join_deduplicates_shared_annotation(self, stack):
        notes, engine = stack
        from repro.model.cell import CellRef

        notes.add_annotation(
            "shared", cells=[CellRef("R", 3, "a"), CellRef("S", 2, "x")]
        )
        result = run_sql(
            notes, engine, "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x"
        )
        joined = next(t for t in result.tuples if t.values[0] == 4)
        texts = [a.text for a, _ in joined.annotations.values()]
        assert texts.count("shared") == 1

    def test_equi_join_column_equivalence(self, stack):
        notes, engine = stack
        result = run_sql(
            notes, engine, "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x"
        )
        joined = next(t for t in result.tuples if t.values[:2] == (1, 2))
        gamma = next(
            (a, cols) for a, cols in joined.annotations.values()
            if a.text == "gamma note"
        )
        assert "r.a" in gamma[1]  # spread across the equality

    def test_group_by_merges_annotations(self, stack):
        notes, engine = stack
        result = run_sql(
            notes, engine, "SELECT a, count(*) FROM R GROUP BY a"
        )
        by_key = {t.values[0]: t for t in result.tuples}
        assert by_key[1].values[1] == 2
        assert len(by_key[1].annotations) >= 1

    def test_distinct_merges_annotations(self, stack):
        notes, engine = stack
        result = run_sql(notes, engine, "SELECT DISTINCT a FROM R")
        assert sorted(t.values for t in result.tuples) == [(1,), (4,)]

    def test_sort_and_limit(self, stack):
        notes, engine = stack
        result = run_sql(
            notes, engine, "SELECT a, b FROM R ORDER BY b DESC LIMIT 2"
        )
        assert [t.values[1] for t in result.tuples] == [3, 2]

    def test_payload_bytes_counts_text(self, stack):
        notes, engine = stack
        result = engine.execute(lp.Scan("R", "r"))
        assert result.total_payload_bytes() == len("alpha note") + len("beta note")


class TestEngineAgreement:
    """Both engines must return identical tuple values on the same plans."""

    QUERIES = [
        "SELECT a, b FROM R WHERE b > 2",
        "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x",
        "SELECT a, count(*) FROM R GROUP BY a ORDER BY a",
        "SELECT DISTINCT a FROM R ORDER BY a",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_values_agree(self, stack, sql):
        notes, engine = stack
        summary_result = notes.query(sql)
        raw_result = run_sql(notes, engine, sql)
        assert sorted(map(str, summary_result.rows())) == sorted(
            map(str, raw_result.rows())
        )

    def test_annotation_ids_agree_with_summary_engine(self, stack):
        notes, engine = stack
        sql = "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x"
        summary_result = notes.query(sql)
        raw_result = run_sql(notes, engine, sql)
        summary_ids = sorted(
            sorted(t.annotation_ids()) for t in summary_result.tuples
        )
        raw_ids = sorted(sorted(t.annotation_ids()) for t in raw_result.tuples)
        assert summary_ids == raw_ids
