"""Sharded backend under concurrent load: stress and replay equivalence.

Mirrors ``tests/engine/test_concurrency.py`` for the sharded topology:
four reader threads running mixed pushdown/summary queries race N
writer threads bulk-ingesting annotation batches through one shared
``shards=4`` session.  Guarantees pinned:

1. **No corruption** — every thread finishes without exceptions, and
   every reader query is byte-identical to its serial replay (readers
   query ``birds``, which the writers never annotate, so per-query
   results are deterministic even mid-ingest).
2. **Durability of the race's writes** — every writer's annotations are
   retrievable afterwards, attachments intact, and the ids handed out
   under contention never collide.  Fingerprints are content-based (the
   interleaving of id *runs* across threads is scheduling-dependent;
   the set of persisted annotations is not).
3. **Scatter-gather equivalence under writes** — a sharded session's
   query results while ingest runs match a single-file session's.
"""

from __future__ import annotations

import json
import threading

from repro import InsightNotes

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
]

_QUERIES = [
    "SELECT name, species FROM birds WHERE weight < 20",
    "SELECT name FROM birds WHERE species = 'species3'",
    "SELECT name, weight FROM birds WHERE weight >= 30 ORDER BY name LIMIT 10",
    "SELECT species, COUNT(*) FROM birds GROUP BY species",
    "SELECT name FROM birds "
    "WHERE SUMMARY_COUNT('BirdClass', 'Behavior') >= 1 LIMIT 15",
]

WRITERS = 3
BATCHES_PER_WRITER = 5
BATCH_ROWS = 8


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


def _build_session(path: str, **kwargs) -> InsightNotes:
    notes = InsightNotes(path, **kwargs)
    notes.create_table("birds", ["name", "species", "weight"])
    notes.create_table("sightings", ["site", "count"])
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    for i in range(120):
        row = notes.insert(
            "birds", (f"bird{i:03d}", f"species{i % 7}", float(i % 40))
        )
        notes.add_annotation(
            "observed feeding on stonewort at dawn", table="birds",
            row_id=row,
        )
    for i in range(40):
        notes.insert("sightings", (f"site{i % 5}", i))
    return notes


def _writer_payload(worker: int, batch: int) -> list[dict]:
    return [
        {
            "text": f"stress note w{worker} b{batch} i{i}",
            "table": "sightings",
            "row_id": (worker * 13 + batch * 5 + i) % 40 + 1,
        }
        for i in range(BATCH_ROWS)
    ]


class TestShardStress:
    def test_four_readers_race_n_writers(self, tmp_path):
        notes = _build_session(str(tmp_path / "stress.db"), shards=4)
        try:
            expected = [fingerprint(notes.query(sql)) for sql in _QUERIES]
            before_count = notes.annotations.count()

            errors: list[BaseException] = []
            mismatches: list[str] = []
            start = threading.Barrier(4 + WRITERS)

            def reader(worker: int) -> None:
                try:
                    start.wait(timeout=10)
                    for round_number in range(8):
                        index = (worker + round_number) % len(_QUERIES)
                        got = fingerprint(notes.query(_QUERIES[index]))
                        if got != expected[index]:
                            mismatches.append(
                                f"reader {worker} round {round_number} "
                                f"query {index}"
                            )
                except BaseException as exc:  # noqa: BLE001 - checked below
                    errors.append(exc)

            def writer(worker: int) -> None:
                try:
                    start.wait(timeout=10)
                    for batch in range(BATCHES_PER_WRITER):
                        notes.add_annotations(_writer_payload(worker, batch))
                except BaseException as exc:  # noqa: BLE001 - checked below
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(4)
            ] + [
                threading.Thread(target=writer, args=(w,))
                for w in range(WRITERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert not mismatches, mismatches
            assert all(not thread.is_alive() for thread in threads)

            ingested = WRITERS * BATCHES_PER_WRITER * BATCH_ROWS
            assert notes.annotations.count() == before_count + ingested

            # Content-based replay: every written text is retrievable
            # with its attachment intact, whatever id interleaving the
            # scheduler produced (ids themselves must be collision-free).
            stored = {
                annotation.text: annotation.annotation_id
                for annotation in notes.annotations.iter_all()
                if annotation.text.startswith("stress note ")
            }
            assert len(stored) == ingested
            seen_ids = set(stored.values())
            assert len(seen_ids) == ingested
            for worker in range(WRITERS):
                for batch in range(BATCHES_PER_WRITER):
                    for spec in _writer_payload(worker, batch):
                        annotation_id = stored[spec["text"]]
                        rows = notes.annotations.rows_for_annotation(
                            annotation_id
                        )
                        assert rows == {("sightings", spec["row_id"])}
        finally:
            notes.close()

    def test_sharded_queries_match_single_file_under_ingest(self, tmp_path):
        sharded = _build_session(str(tmp_path / "sharded.db"), shards=4)
        single = _build_session(str(tmp_path / "single.db"))
        try:
            stop = threading.Event()
            errors: list[BaseException] = []

            def churn() -> None:
                try:
                    batch = 0
                    while not stop.is_set():
                        sharded.add_annotations(
                            _writer_payload(0, batch % 7)
                        )
                        batch += 1
                except BaseException as exc:  # noqa: BLE001 - checked below
                    errors.append(exc)

            thread = threading.Thread(target=churn)
            thread.start()
            try:
                for _ in range(4):
                    for sql in _QUERIES:
                        assert fingerprint(sharded.query(sql)) == fingerprint(
                            single.query(sql)
                        )
            finally:
                stop.set()
                thread.join(timeout=60)
            assert not errors, errors
        finally:
            sharded.close()
            single.close()
