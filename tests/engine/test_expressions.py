"""Tests for repro.engine.expressions."""

import pytest

from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Column,
    Comparison,
    GroupCount,
    InList,
    Like,
    Literal,
    Not,
    SummaryCount,
    conjunction,
    resolve_column,
)
from repro.errors import ExpressionError
from repro.model.tuple import AnnotatedTuple
from repro.summaries.classifier import ClassifierSummary
from repro.summaries.cluster import ClusterGroup, ClusterSummary

SCHEMA = ("r.a", "r.b", "s.x")


def row(*values, summaries=None) -> AnnotatedTuple:
    return AnnotatedTuple(values=tuple(values), summaries=summaries or {})


class TestResolveColumn:
    def test_exact_match(self):
        assert resolve_column(SCHEMA, "r.a") == 0

    def test_suffix_match(self):
        assert resolve_column(SCHEMA, "b") == 1

    def test_ambiguous_suffix_raises(self):
        with pytest.raises(ExpressionError, match="ambiguous"):
            resolve_column(("r.a", "s.a"), "a")

    def test_unknown_raises(self):
        with pytest.raises(ExpressionError, match="unknown column"):
            resolve_column(SCHEMA, "zz")

    def test_aggregate_exact(self):
        assert resolve_column(("r.a", "count(*)"), "count(*)") == 1

    def test_aggregate_suffix(self):
        assert resolve_column(("r.a", "sum(r.b)"), "sum(b)") == 1

    def test_aggregate_function_must_match(self):
        with pytest.raises(ExpressionError):
            resolve_column(("sum(r.b)",), "avg(b)")


class TestEvaluation:
    def test_literal(self):
        assert Literal(5).evaluate(row(), SCHEMA) == 5

    def test_column(self):
        assert Column("r.b").evaluate(row(1, 2, 3), SCHEMA) == 2

    def test_comparisons(self):
        cases = [("=", 2, True), ("!=", 2, False), ("<", 3, True),
                 ("<=", 2, True), (">", 1, True), (">=", 3, False)]
        for op, operand, expected in cases:
            expression = Comparison(op, Column("r.b"), Literal(operand))
            assert expression.evaluate(row(1, 2, 3), SCHEMA) is expected

    def test_comparison_with_null_is_false(self):
        expression = Comparison("=", Column("r.a"), Literal(1))
        assert expression.evaluate(row(None, 2, 3), SCHEMA) is False

    def test_comparison_type_error_wrapped(self):
        expression = Comparison("<", Column("r.a"), Literal("text"))
        with pytest.raises(ExpressionError, match="cannot compare"):
            expression.evaluate(row(1, 2, 3), SCHEMA)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~~", Literal(1), Literal(2))

    def test_boolean_and_or(self):
        true = Comparison("=", Literal(1), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert BooleanOp("and", (true, true)).evaluate(row(), SCHEMA)
        assert not BooleanOp("and", (true, false)).evaluate(row(), SCHEMA)
        assert BooleanOp("or", (false, true)).evaluate(row(), SCHEMA)

    def test_not(self):
        false = Comparison("=", Literal(1), Literal(2))
        assert Not(false).evaluate(row(), SCHEMA)

    def test_arithmetic(self):
        expression = Arithmetic("+", Column("r.a"), Arithmetic(
            "*", Column("r.b"), Literal(10)))
        assert expression.evaluate(row(1, 2, 3), SCHEMA) == 21

    def test_arithmetic_null_propagates(self):
        expression = Arithmetic("+", Column("r.a"), Literal(1))
        assert expression.evaluate(row(None, 2, 3), SCHEMA) is None

    def test_division_by_zero_wrapped(self):
        expression = Arithmetic("/", Literal(1), Literal(0))
        with pytest.raises(ExpressionError):
            expression.evaluate(row(), SCHEMA)

    def test_like(self):
        expression = Like(Column("r.a"), "Swan%")
        assert expression.evaluate(row("Swan Goose", 2, 3), SCHEMA)
        assert not expression.evaluate(row("Goose", 2, 3), SCHEMA)

    def test_like_case_insensitive_and_underscore(self):
        assert Like(Literal("ab"), "A_").evaluate(row(), SCHEMA)

    def test_in_list(self):
        expression = InList(Column("r.b"), (1, 2, 3))
        assert expression.evaluate(row(0, 2, 0), SCHEMA)
        assert not expression.evaluate(row(0, 9, 0), SCHEMA)


class TestSummaryFunctions:
    def _summaries(self):
        classifier = ClassifierSummary("C", ["refute", "approve"])
        classifier.add(1, "refute")
        classifier.add(2, "approve")
        classifier.add(3, "approve")
        cluster = ClusterSummary("S")
        cluster.groups = [
            ClusterGroup(member_ids={1}, ranking=[1]),
            ClusterGroup(member_ids={2, 3}, ranking=[2, 3]),
        ]
        return {"C": classifier, "S": cluster}

    def test_summary_count_with_label(self):
        expression = SummaryCount("C", "approve")
        assert expression.evaluate(row(summaries=self._summaries()), ()) == 2

    def test_summary_count_total(self):
        expression = SummaryCount("C")
        assert expression.evaluate(row(summaries=self._summaries()), ()) == 3

    def test_summary_count_missing_instance_is_zero(self):
        assert SummaryCount("nope", "x").evaluate(row(), ()) == 0

    def test_summary_count_label_on_non_classifier(self):
        expression = SummaryCount("S", "label")
        with pytest.raises(ExpressionError, match="requires a classifier"):
            expression.evaluate(row(summaries=self._summaries()), ())

    def test_group_count(self):
        assert GroupCount("S").evaluate(row(summaries=self._summaries()), ()) == 2

    def test_group_count_on_non_cluster(self):
        with pytest.raises(ExpressionError, match="requires a cluster"):
            GroupCount("C").evaluate(row(summaries=self._summaries()), ())

    def test_group_count_missing_instance_is_zero(self):
        assert GroupCount("nope").evaluate(row(), ()) == 0


class TestHelpers:
    def test_conjunction(self):
        true = Comparison("=", Literal(1), Literal(1))
        assert conjunction([]) is None
        assert conjunction([true]) is true
        combined = conjunction([true, true])
        assert isinstance(combined, BooleanOp)

    def test_referenced_columns(self):
        expression = BooleanOp("and", (
            Comparison("=", Column("r.a"), Column("s.x")),
            Like(Column("r.b"), "%"),
        ))
        assert expression.referenced_columns() == {"r.a", "s.x", "r.b"}

    def test_str_renderings(self):
        expression = Comparison("=", Column("a"), Literal("o'brien"))
        assert str(expression) == "a = 'o''brien'"
        assert str(SummaryCount("C", "x")) == "SUMMARY_COUNT('C', 'x')"
        assert str(GroupCount("S")) == "GROUP_COUNT('S')"
