"""Property test: cost-based plans answer exactly like rule-based plans.

The cost planner's contract is that it is *purely* a performance
optimization: for any query, the session with ``cost_planner=True``
must produce exactly the result of the rule-based session — same value
rows, same summary objects (down to their contributing annotation
ids), same attachments, same provenance.  Plan rewrites may change the
*order* rows stream out of a join, so results are compared as
canonical sorted fingerprints, the ``test_plan_equivalence``
discipline.

Hypothesis draws queries from a grammar covering every rewrite the
cost planner performs — multi-way joins in adversarial FROM orders,
aggregations and DISTINCT over pushable and non-pushable tables, and
mixed value/summary residual predicates (the hydrate-split shape) —
against paired sessions carrying all five summary types, at one shard
and at four.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes
from repro.summaries.registry import extended_registry
from tests.conftest import TRAINING

_TYPES = [
    ("Classifier", {"labels": ["Behavior", "Disease"]}),
    ("Cluster", {"threshold": 0.3}),
    ("Snippet", {"max_sentences": 2}),
    ("Terms", {"top_k": 5}),
    ("Timeline", {"bucket_seconds": 60}),
]

_TEXTS = [
    "observed feeding stonewort near the shore",
    "symptoms of avian pox in the flock",
    "diving for insects at dawn in the reeds",
    "banded during migration molt unclear follow-up",
]


def _build_pair(path_prefix: str | None, shards: int):
    """Identically-populated (rule, cost) sessions."""
    sessions = []
    for mode, cost in (("rule", False), ("cost", True)):
        path = (
            ":memory:" if path_prefix is None
            else f"{path_prefix}-{mode}.db"
        )
        notes = InsightNotes(
            path,
            registry=extended_registry(),
            shards=shards,
            cost_planner=cost,
        )
        notes.create_table(
            "birds", ["name", "species", "weight", "cutoff"]
        )
        notes.create_table("sightings", ["observer", "species", "count"])
        notes.create_table("regions", ["species", "zone"])
        bird_ids = notes.insert_many(
            "birds",
            [
                (f"b{i}", f"sp{i % 4}", (i * 7) % 10, 5)
                for i in range(12)
            ],
        )
        sighting_ids = notes.insert_many(
            "sightings",
            [
                (f"obs{i % 3}", f"sp{i % 4}", (i * 3) % 8)
                for i in range(16)
            ],
        )
        notes.insert_many(
            "regions", [(f"sp{i}", f"z{i % 2}") for i in range(4)]
        )
        for type_name, config in _TYPES:
            name = f"{type_name}Eq"
            instance = notes.catalog.define_instance(
                type_name, name, dict(config)
            )
            if type_name == "Classifier":
                instance.train(list(TRAINING))
                notes.catalog.save_instance_config(name)
            notes.link(name, "birds")
            notes.link(name, "sightings")
        specs = []
        for i, row_id in enumerate(bird_ids):
            specs.append(
                {
                    "text": _TEXTS[i % len(_TEXTS)],
                    "table": "birds",
                    "row_id": row_id,
                    "created_at": float(60 * i),
                }
            )
        for i, row_id in enumerate(sighting_ids[::2]):
            specs.append(
                {
                    "text": _TEXTS[(i + 1) % len(_TEXTS)],
                    "table": "sightings",
                    "row_id": row_id,
                    "created_at": float(90 * i),
                }
            )
        notes.add_annotations(specs)
        notes.analyze()
        sessions.append(notes)
    return tuple(sessions)


def fingerprint(result):
    """Order-insensitive canonical content of a result, summaries deep."""
    rows = []
    for row in result.tuples:
        summaries = tuple(
            (name, tuple(sorted(obj.annotation_ids())))
            for name, obj in sorted(row.summaries.items())
        )
        attachments = tuple(
            (annotation_id, tuple(sorted(columns)))
            for annotation_id, columns in sorted(row.attachments.items())
        )
        rows.append(
            (
                row.values,
                summaries,
                attachments,
                tuple(sorted(row.source_rows)),
            )
        )
    return (result.columns, tuple(sorted(rows, key=repr)))


# -- query grammar ------------------------------------------------------

_SUMMARY_INSTANCES = [f"{name}Eq" for name, _ in _TYPES]


@st.composite
def queries(draw) -> str:
    shape = draw(
        st.sampled_from(
            ["filter", "join2", "join3", "group", "distinct", "hydrate"]
        )
    )
    if shape == "filter":
        threshold = draw(st.integers(min_value=0, max_value=9))
        return (
            "SELECT name, species, weight FROM birds "
            f"WHERE weight > {threshold}"
        )
    if shape == "join2":
        order = draw(st.booleans())
        tables = (
            "birds b, sightings s" if order else "sightings s, birds b"
        )
        threshold = draw(st.integers(min_value=0, max_value=7))
        return (
            f"SELECT b.name, s.observer, s.count FROM {tables} "
            "WHERE b.species = s.species AND "
            f"s.count > {threshold}"
        )
    if shape == "join3":
        tables = draw(
            st.permutations(
                ["birds b", "sightings s", "regions r"]
            )
        )
        return (
            "SELECT b.name, s.observer, r.zone FROM "
            f"{', '.join(tables)} "
            "WHERE b.species = s.species AND s.species = r.species"
        )
    if shape == "group":
        having = draw(st.sampled_from(["", " HAVING count(*) > 2"]))
        where = draw(st.sampled_from(["", " WHERE count > 3"]))
        return (
            "SELECT species, count(*), sum(count), min(observer) "
            f"FROM sightings{where} GROUP BY species{having}"
        )
    if shape == "distinct":
        table, column = draw(
            st.sampled_from(
                [("birds", "species"), ("sightings", "observer"),
                 ("regions", "zone")]
            )
        )
        return f"SELECT DISTINCT {column} FROM {table}"
    # The hydrate-split shape: ``weight < cutoff`` is column-vs-column
    # (not sargable, summary-free) ANDed with a summary conjunct.
    instance = draw(st.sampled_from(_SUMMARY_INSTANCES))
    minimum = draw(st.integers(min_value=0, max_value=1))
    return (
        "SELECT name, weight FROM birds "
        "WHERE weight < cutoff "
        f"AND SUMMARY_COUNT('{instance}') >= {minimum}"
    )


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCostEquivalenceSingleShard:
    @pytest.fixture(scope="class")
    def pair(self):
        rule, cost = _build_pair(None, shards=1)
        yield rule, cost
        rule.close()
        cost.close()

    @given(sql=queries())
    @_SETTINGS
    def test_cost_plans_match_rule_plans(self, pair, sql):
        rule, cost = pair
        assert fingerprint(cost.query(sql)) == fingerprint(
            rule.query(sql)
        )


class TestCostEquivalenceSharded:
    @pytest.fixture(scope="class")
    def pair(self):
        with tempfile.TemporaryDirectory() as tmp:
            rule, cost = _build_pair(f"{tmp}/eq", shards=4)
            yield rule, cost
            rule.close()
            cost.close()

    @given(sql=queries())
    @_SETTINGS
    def test_cost_plans_match_rule_plans(self, pair, sql):
        rule, cost = pair
        assert fingerprint(cost.query(sql)) == fingerprint(
            rule.query(sql)
        )
