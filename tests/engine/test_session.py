"""Tests for repro.engine.session — the public facade."""

import pytest

from repro import InsightNotes
from repro.errors import AnnotationError, SQLSyntaxError
from tests.conftest import TRAINING


class TestDataOperations:
    def test_create_insert_query(self, session):
        session.create_table("t", ["a", "b"])
        session.insert("t", (1, "x"))
        session.insert_many("t", [(2, "y"), (3, "z")])
        result = session.query("SELECT a FROM t WHERE a > 1 ORDER BY a")
        assert result.rows() == [(2,), (3,)]

    def test_query_results_get_sequential_qids(self, session):
        session.create_table("t", ["a"])
        first = session.query("SELECT a FROM t")
        second = session.query("SELECT a FROM t")
        assert second.qid == first.qid + 1

    def test_syntax_error_propagates(self, session):
        with pytest.raises(SQLSyntaxError):
            session.query("SELEC a FROM t")


class TestAnnotationAPI:
    def test_row_level_annotation_covers_all_columns(self, birds_session):
        annotation = birds_session.add_annotation(
            "watched chasing shoots", table="birds", row_id=2
        )
        cells = birds_session.annotations.cells_of(annotation.annotation_id)
        assert {cell.column for cell in cells} == {"name", "species", "weight"}

    def test_column_restricted_annotation(self, birds_session):
        annotation = birds_session.add_annotation(
            "weight looks wrong", table="birds", row_id=2, columns=["weight"]
        )
        cells = birds_session.annotations.cells_of(annotation.annotation_id)
        assert [cell.column for cell in cells] == ["weight"]

    def test_requires_target(self, session):
        with pytest.raises(AnnotationError, match="either cells or table"):
            session.add_annotation("dangling")

    def test_rejects_both_cells_and_table(self, birds_session):
        from repro.model.cell import CellRef

        with pytest.raises(AnnotationError, match="not both"):
            birds_session.add_annotation(
                "x", table="birds", row_id=1,
                cells=[CellRef("birds", 1, "name")],
            )

    def test_delete_annotation_updates_summaries(self, birds_session):
        result_before = birds_session.query("SELECT name FROM birds")
        behavior_before = result_before.tuples[0].summaries["BirdClass"].count(
            "Behavior"
        )
        annotation_ids = sorted(
            birds_session.annotations.annotation_ids_for_row("birds", 1)
        )
        birds_session.delete_annotation(annotation_ids[0])
        result_after = birds_session.query("SELECT name FROM birds")
        behavior_after = result_after.tuples[0].summaries["BirdClass"].count(
            "Behavior"
        )
        assert behavior_after == behavior_before - 1


class TestSummaryLifecycle:
    def test_link_bootstraps_existing_annotations(self, birds_session):
        birds_session.define_classifier("Late", ["Behavior", "Disease"], TRAINING)
        birds_session.link("Late", "birds")
        result = birds_session.query("SELECT name, species, weight FROM birds")
        assert result.tuples[0].summaries["Late"].count("Behavior") == 2

    def test_unlink_removes_summaries_from_results(self, birds_session):
        birds_session.unlink("BirdCluster", "birds")
        result = birds_session.query("SELECT name FROM birds")
        assert "BirdCluster" not in result.tuples[0].summaries

    def test_define_helpers(self, session):
        session.create_table("t", ["a"])
        session.define_classifier("Cf", ["x", "y"])
        session.define_cluster("Cl", threshold=0.5)
        session.define_snippet("Sn", max_sentences=3)
        assert session.catalog.instance_names() == ["Cf", "Cl", "Sn"]


class TestQuerying:
    def test_summaries_propagate_through_query(self, birds_session):
        result = birds_session.query(
            "SELECT name, species FROM birds WHERE name = 'Swan Goose'"
        )
        summary = result.tuples[0].summaries["BirdClass"]
        # Two Behavior annotations; the Disease one sits on weight only and
        # is projected out.
        assert summary.count("Behavior") == 2
        assert summary.count("Disease") == 0

    def test_trace_captures_operators(self, birds_session):
        result = birds_session.query("SELECT name FROM birds", trace=True)
        assert result.trace is not None
        assert any("Scan" in op for op in result.trace.by_operator())

    def test_explain_renders_plan(self, birds_session):
        text = birds_session.explain("SELECT name FROM birds WHERE weight > 5")
        # The sargable predicate is pushed into the storage scan and
        # hydration sits above the (empty) residual chain.
        assert "Scan(birds) [pushed: weight > 5]" in text
        assert "Hydrate(birds)" in text
        assert "Select" not in text

    def test_results_are_registered_and_cached(self, birds_session):
        result = birds_session.query("SELECT name FROM birds")
        assert birds_session.results.get(result.qid) is result
        assert result.qid in birds_session.cache

    def test_summary_predicate_query(self, birds_session):
        result = birds_session.query(
            "SELECT name FROM birds "
            "WHERE SUMMARY_COUNT('BirdClass', 'Behavior') >= 2"
        )
        assert result.rows() == [("Swan Goose",)]

    def test_zoomin_round_trip(self, birds_session):
        result = birds_session.query("SELECT name, species FROM birds")
        zoom = birds_session.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} "
            f"WHERE name = 'Swan Goose' ON BirdClass INDEX 1"
        )
        texts = [a.text for m in zoom.matches for a in m.annotations]
        assert texts == [
            "observed feeding on stonewort at dawn",
            "seen feeding on stonewort beds today",
        ]


class TestPersistence:
    def test_file_backed_session_round_trip(self, tmp_path):
        path = str(tmp_path / "notes.db")
        first = InsightNotes(path)
        first.create_table("t", ["a"])
        first.insert("t", ("v",))
        first.define_classifier("C", ["x", "y"], [("one", "x"), ("two", "y")])
        first.link("C", "t")
        first.add_annotation("one one one", table="t", row_id=1)
        first.close()

        second = InsightNotes(path)
        result = second.query("SELECT a FROM t")
        assert result.rows() == [("v",)]
        assert result.tuples[0].summaries["C"].count("x") == 1
        second.close()

    def test_context_manager(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with InsightNotes(path) as notes:
            notes.create_table("t", ["a"])
        with InsightNotes(path) as notes:
            assert notes.db.tables() == ["t"]
