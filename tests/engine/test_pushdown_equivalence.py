"""Property test: pushdown is byte-identical to the eager pipeline.

Storage-level predicate/limit pushdown and lazy block-wise hydration are
*purely* performance optimizations: for any query, a pushdown-enabled
session must return exactly what the eager pipeline (``pushdown=False``
— every row hydrated at the scan, every predicate evaluated in memory)
returns — same values, same serialized summary objects, same attachment
maps, byte for byte.

Hypothesis drives random queries — sargable and residual predicates
(comparisons, IN, LIKE, NULL tests, summary functions, AND/OR/NOT
mixes), DISTINCT, GROUP BY, ORDER BY, LIMIT, and IN-subqueries — over a
table that includes NULL cells, against both modes of the same dataset.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("spotted diving for small insects at dusk", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
    ("tested positive for botulism in the flock", "Disease"),
]

_ROWS = [
    ("Swan Goose", "Anser cygnoides", 3.2),
    ("Mute Swan", "Cygnus olor", 10.5),
    ("Brant", None, 1.9),
    (None, "Anser caerulescens", None),
    ("Snow Goose", "Anser caerulescens", 2.4),
    ("Tundra Swan", "Cygnus columbianus", 7.0),
    ("Whooper Swan", "Cygnus cygnus", 9.8),
    (None, None, 0.0),
]

_NOTES = [
    (1, None, "observed feeding on stonewort at dawn"),
    (1, ["weight"], "shows symptoms of avian influenza"),
    (2, ["name"], "seen foraging among pond weeds"),
    (3, None, "spotted diving for small insects"),
    (4, ["species"], "appears infected with avian pox"),
    (5, ["name", "weight"], "tested positive for botulism"),
    (6, None, "watched chasing shoots near the shore"),
    (7, ["weight"], "weight reading looks suspicious"),
]


def _build_session(pushdown: bool) -> InsightNotes:
    notes = InsightNotes(pushdown=pushdown)
    notes.create_table("birds", ["name", "species", "weight"])
    for row in _ROWS:
        notes.insert("birds", row)
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    notes.define_cluster("BirdCluster", threshold=0.3)
    notes.link("BirdCluster", "birds")
    for row_id, columns, text in _NOTES:
        notes.add_annotation(text, table="birds", row_id=row_id,
                             columns=columns)
    return notes


@pytest.fixture(scope="module")
def paired_sessions():
    lazy = _build_session(pushdown=True)
    eager = _build_session(pushdown=False)
    yield lazy, eager
    lazy.close()
    eager.close()


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


# -- query strategy -----------------------------------------------------

_numeric = st.sampled_from(["-1", "0", "1.9", "2.4", "3.2", "7", "9.8", "11"])
_strings = st.sampled_from([
    "'Swan Goose'", "'mute swan'", "'Brant'", "'Cygnus olor'",
    "'Anser caerulescens'", "''",
])
_patterns = st.sampled_from(["'S%'", "'%oose'", "'%a%'", "'_wan%'", "'%swan'"])


def _leaves() -> st.SearchStrategy[str]:
    comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
    return st.one_of(
        st.builds(lambda op, v: f"weight {op} {v}", comparison_ops, _numeric),
        st.builds(lambda op, v: f"name {op} {v}", comparison_ops, _strings),
        st.builds(
            lambda values: f"species IN ({', '.join(values)})",
            st.lists(_strings, min_size=1, max_size=3, unique=True),
        ),
        st.builds(
            lambda column, negated:
                f"{column} IS{' NOT' if negated else ''} NULL",
            st.sampled_from(["name", "species", "weight"]),
            st.booleans(),
        ),
        st.builds(lambda p: f"name LIKE {p}", _patterns),
        st.builds(
            lambda op, n: f"SUMMARY_COUNT('BirdClass', 'Behavior') {op} {n}",
            comparison_ops,
            st.integers(min_value=0, max_value=3),
        ),
        st.builds(
            lambda op, n: f"GROUP_COUNT('BirdCluster') {op} {n}",
            comparison_ops,
            st.integers(min_value=0, max_value=2),
        ),
    )


_predicates = st.recursive(
    _leaves(),
    lambda inner: st.one_of(
        st.builds(lambda a, b: f"({a} AND {b})", inner, inner),
        st.builds(lambda a, b: f"({a} OR {b})", inner, inner),
        st.builds(lambda a: f"NOT ({a})", inner),
    ),
    max_leaves=4,
)

_columns = st.sampled_from([
    "name", "species", "weight",
    "name, weight", "species, weight", "name, species, weight",
])


@st.composite
def queries(draw) -> str:
    form = draw(st.integers(min_value=0, max_value=3))
    where = f" WHERE {draw(_predicates)}" if draw(st.booleans()) else ""
    if form == 0:
        columns = draw(_columns)
        sql = f"SELECT {columns} FROM birds{where}"
        if draw(st.booleans()):
            first = columns.split(",")[0].strip()
            direction = " DESC" if draw(st.booleans()) else ""
            sql += f" ORDER BY {first}{direction}"
        if draw(st.booleans()):
            sql += f" LIMIT {draw(st.integers(min_value=0, max_value=9))}"
        return sql
    if form == 1:
        return f"SELECT DISTINCT species FROM birds{where}"
    if form == 2:
        return (
            f"SELECT species, count(*) FROM birds{where} GROUP BY species"
        )
    sub_where = f" WHERE {draw(_predicates)}"
    column = draw(st.sampled_from(["name", "species", "weight"]))
    return (
        f"SELECT name, weight FROM birds WHERE {column} IN "
        f"(SELECT {column} FROM birds{sub_where})"
    )


@given(sql=queries())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pushdown_matches_eager_pipeline_byte_for_byte(paired_sessions, sql):
    lazy, eager = paired_sessions
    assert fingerprint(lazy.query(sql)) == fingerprint(eager.query(sql)), sql
