"""Tests for uncorrelated IN-subqueries."""

import pytest

from repro import InsightNotes
from repro.engine.expressions import Column, InList, InSubquery, Literal
from repro.engine.sqlparser import parse_expression, parse_sql
from repro.engine.subqueries import contains_subquery, flatten_expression
from repro.errors import ExpressionError, SQLSyntaxError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "species"])
    notes.create_table("sightings", ["species", "count"])
    notes.insert("birds", ("Swan", "cygnus"))
    notes.insert("birds", ("Goose", "anser"))
    notes.insert("birds", ("Heron", "ardea"))
    notes.insert("sightings", ("cygnus", 5))
    notes.insert("sightings", ("anser", 1))
    yield notes
    notes.close()


class TestParsing:
    def test_in_subquery_parses(self):
        expression = parse_expression(
            "a IN (SELECT x FROM t WHERE y > 1)"
        )
        assert isinstance(expression, InSubquery)
        assert contains_subquery(expression)

    def test_in_literal_list_still_works(self):
        expression = parse_expression("a IN (1, 2)")
        assert isinstance(expression, InList)
        assert not contains_subquery(expression)

    def test_nested_in_boolean(self):
        expression = parse_expression(
            "a = 1 AND b IN (SELECT x FROM t)"
        )
        assert contains_subquery(expression)

    def test_unflattened_evaluation_raises(self):
        expression = parse_expression("a IN (SELECT x FROM t)")
        from repro.model.tuple import AnnotatedTuple

        with pytest.raises(ExpressionError, match="flattened"):
            expression.evaluate(AnnotatedTuple(values=(1,)), ("a",))


class TestExecution:
    def test_basic_semijoin(self, stack):
        result = stack.query(
            "SELECT name FROM birds WHERE species IN "
            "(SELECT species FROM sightings WHERE count > 1)"
        )
        assert result.rows() == [("Swan",)]

    def test_negated(self, stack):
        result = stack.query(
            "SELECT name FROM birds WHERE NOT species IN "
            "(SELECT species FROM sightings) ORDER BY name"
        )
        assert result.rows() == [("Heron",)]

    def test_empty_subquery_matches_nothing(self, stack):
        result = stack.query(
            "SELECT name FROM birds WHERE species IN "
            "(SELECT species FROM sightings WHERE count > 1000)"
        )
        assert result.rows() == []

    def test_subquery_with_its_own_subquery(self, stack):
        result = stack.query(
            "SELECT name FROM birds WHERE species IN ("
            "SELECT species FROM sightings WHERE species IN ("
            "SELECT species FROM birds WHERE name = 'Swan'))"
        )
        assert result.rows() == [("Swan",)]

    def test_multi_column_subquery_rejected(self, stack):
        with pytest.raises(SQLSyntaxError, match="exactly one column"):
            stack.query(
                "SELECT name FROM birds WHERE species IN "
                "(SELECT species, count FROM sightings)"
            )

    def test_summaries_propagate_on_outer_query(self, stack):
        stack.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        stack.link("C", "birds")
        stack.add_annotation("observed feeding on stonewort",
                             table="birds", row_id=1)
        result = stack.query(
            "SELECT name, species FROM birds WHERE species IN "
            "(SELECT species FROM sightings)"
        )
        swan = next(t for t in result.tuples if t.values[0] == "Swan")
        assert swan.summaries["C"].count("Behavior") == 1

    def test_subquery_with_summary_predicate(self, stack):
        stack.define_classifier("C", ["Behavior", "Disease"], TRAINING)
        stack.link("C", "birds")
        stack.add_annotation("observed feeding on stonewort",
                             table="birds", row_id=1)
        result = stack.query(
            "SELECT species FROM sightings WHERE species IN ("
            "SELECT species FROM birds "
            "WHERE SUMMARY_COUNT('C', 'Behavior') > 0)"
        )
        assert result.rows() == [("cygnus",)]


class TestFlattenRewriter:
    def test_rebuilds_only_changed_branches(self):
        untouched = parse_expression("a = 1 AND b LIKE 'x%'")
        flattened = flatten_expression(untouched, lambda _s: ())
        assert flattened is untouched

    def test_substitutes_values(self):
        expression = parse_expression("a IN (SELECT x FROM t)")
        flattened = flatten_expression(expression, lambda _s: (1, 2, 3))
        assert flattened == InList(Column("a"), (1, 2, 3))
