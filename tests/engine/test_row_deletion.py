"""Tests for the base-row deletion cascade."""

import pytest

from repro import CellRef, InsightNotes
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan", 3.2))
    notes.insert("birds", ("Goose", 2.4))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "birds")
    yield notes
    notes.close()


class TestDeleteRow:
    def test_row_disappears_from_queries(self, stack):
        stack.delete_row("birds", 1)
        assert stack.query("SELECT name FROM birds").rows() == [("Goose",)]

    def test_single_row_annotations_deleted(self, stack):
        annotation = stack.add_annotation("observed feeding",
                                          table="birds", row_id=1)
        stack.delete_row("birds", 1)
        assert stack.annotations.count() == 0
        from repro.errors import UnknownAnnotationError

        with pytest.raises(UnknownAnnotationError):
            stack.annotations.get(annotation.annotation_id)

    def test_shared_annotations_survive_on_other_rows(self, stack):
        shared = stack.add_annotation(
            "shows symptoms of avian pox",
            cells=[CellRef("birds", 1, "name"), CellRef("birds", 2, "name")],
        )
        stack.delete_row("birds", 1)
        # Annotation still exists, attached only to row 2.
        assert stack.annotations.rows_for_annotation(
            shared.annotation_id
        ) == {("birds", 2)}
        result = stack.query("SELECT name, weight FROM birds")
        assert result.tuples[0].summaries["C"].count("Disease") == 1

    def test_summary_state_dropped(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stack.delete_row("birds", 1)
        assert stack.catalog.load_object("C", "birds", 1) is None

    def test_delete_unannotated_row(self, stack):
        stack.delete_row("birds", 2)
        assert stack.db.row_count("birds") == 1

    def test_reinserted_rowid_starts_clean(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stack.delete_row("birds", 1)
        new_row = stack.insert("birds", ("Heron", 1.8))
        result = stack.query("SELECT name, weight FROM birds ORDER BY weight")
        heron = next(t for t in result.tuples if t.values[0] == "Heron")
        assert heron.summaries["C"].is_empty()
        assert new_row != 1 or heron.attachments == {}
