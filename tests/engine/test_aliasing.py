"""Aliasing regression tests: shared caches vs. in-place row mutation.

Hydration serves summary objects out of shared stores — the catalog's
deserialization (object) cache and, for ZOOMIN, the RCO result cache.
Downstream operators mutate per-query rows in place (projection narrows
attachments and calls ``remove_annotations``; computation rewrites
values).  The copy-on-write ``for_query`` boundary must keep those
mutations out of every shared object; these tests pin that invariant in
both pushdown modes, since the two place the mutation at different plan
positions (above Hydrate vs. above the eager scan).
"""

import json

import pytest

from repro import InsightNotes

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("tested positive for botulism in the flock", "Disease"),
]

FULL_SQL = "SELECT name, species, weight FROM birds"

#: Queries whose operators mutate row state in place: projection drops
#: the weight-only annotation, computation rebuilds values/attachments.
MUTATING_SQL = [
    "SELECT name FROM birds",
    "SELECT species FROM birds",
    "SELECT weight * 2 AS heavy FROM birds",
    "SELECT name FROM birds WHERE weight > 1",
]


def build_session(pushdown: bool) -> InsightNotes:
    notes = InsightNotes(pushdown=pushdown)
    notes.create_table("birds", ["name", "species", "weight"])
    notes.insert("birds", ("Swan Goose", "Anser cygnoides", 3.2))
    notes.insert("birds", ("Mute Swan", "Cygnus olor", 10.5))
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    notes.define_cluster("BirdCluster", threshold=0.3)
    notes.link("BirdCluster", "birds")
    notes.add_annotation("observed feeding on stonewort at dawn",
                         table="birds", row_id=1)
    notes.add_annotation("shows symptoms of avian influenza",
                         table="birds", row_id=1, columns=["weight"])
    notes.add_annotation("seen foraging among pond weeds",
                         table="birds", row_id=2, columns=["name"])
    return notes


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("pushdown", [True, False])
class TestObjectCacheAliasing:
    def test_projecting_queries_do_not_corrupt_cached_objects(self, pushdown):
        notes = build_session(pushdown)
        try:
            before = fingerprint(notes.query(FULL_SQL))
            for sql in MUTATING_SQL:
                notes.query(sql)
            # Served from the (now warm) deserialization cache.
            assert fingerprint(notes.query(FULL_SQL)) == before
        finally:
            notes.close()

    def test_registered_results_survive_later_queries(self, pushdown):
        # The result registry keeps live tuples for ZOOMIN recompute;
        # their summary objects must not alias later queries' copies.
        notes = build_session(pushdown)
        try:
            held = notes.query(FULL_SQL)
            before = fingerprint(held)
            for sql in MUTATING_SQL:
                notes.query(sql)
            assert fingerprint(held) == before
        finally:
            notes.close()

    def test_zoomin_stable_across_projecting_queries(self, pushdown):
        notes = build_session(pushdown)
        try:
            result = notes.query(FULL_SQL)
            command = (
                f"ZOOMIN REFERENCE QID = {result.qid} "
                f"WHERE name = 'Swan Goose' ON BirdClass INDEX 1"
            )

            def texts(zoom):
                return sorted(
                    a.text for m in zoom.matches for a in m.annotations
                )

            first = texts(notes.zoomin(command))
            assert first  # the zoom-in actually resolved annotations
            for sql in MUTATING_SQL:
                notes.query(sql)
            # Second call is served via the cache/recompute path over the
            # same registered result; mutation leakage would change it.
            assert texts(notes.zoomin(command)) == first
        finally:
            notes.close()
