"""Concurrent read path: stress and equivalence coverage.

Three guarantees, in increasing strength:

1. **No corruption under load** — N reader threads running mixed
   pushdown/summary queries through one shared session, racing a writer
   that ingests annotation batches, must finish without exceptions and
   with every reader-table query byte-identical to a serial replay (the
   readers query ``birds``, which the writer never touches, so their
   per-query results are deterministic).
2. **Cache sanity** — the shared deserialization LRU must actually serve
   hits under concurrent traffic (locks that silently bypass the cache
   would pass test 1).
3. **Parallel hydration equivalence** — a ``workers=4`` session returns
   byte-for-byte what ``workers=1`` returns, for hypothesis-generated
   predicates and limits.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InsightNotes

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
]

_NOTE_TEXTS = [
    "observed feeding on stonewort at dawn",
    "shows symptoms of avian influenza",
    "seen foraging among pond weeds",
    "appears infected with avian pox",
    "watched chasing shoots near the shore",
]


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


def _build_session(path: str, **kwargs) -> InsightNotes:
    notes = InsightNotes(path, **kwargs)
    notes.create_table("birds", ["name", "species", "weight"])
    notes.create_table("sightings", ["site", "count"])
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    notes.link("BirdClass", "sightings")
    for i in range(120):
        row = notes.insert(
            "birds", (f"bird{i:03d}", f"species{i % 7}", float(i % 40))
        )
        notes.add_annotation(
            _NOTE_TEXTS[i % len(_NOTE_TEXTS)], table="birds", row_id=row
        )
    for i in range(40):
        notes.insert("sightings", (f"site{i % 5}", i))
    return notes


_QUERIES = [
    "SELECT name, species FROM birds WHERE weight < 20",
    "SELECT name FROM birds WHERE species = 'species3'",
    "SELECT name, weight FROM birds WHERE weight >= 30 ORDER BY name LIMIT 10",
    "SELECT species, COUNT(*) FROM birds GROUP BY species",
    "SELECT name FROM birds WHERE SUMMARY_COUNT('BirdClass', 'Behavior') >= 1 LIMIT 15",
    "SELECT name, species, weight FROM birds WHERE weight IN (0, 7, 14) ",
]


class TestStress:
    def test_readers_race_writer_without_corruption(self, tmp_path):
        notes = _build_session(str(tmp_path / "stress.db"), workers=2)
        try:
            # Serial replay first: the expected answer for every query.
            expected = [fingerprint(notes.query(sql)) for sql in _QUERIES]

            errors: list[BaseException] = []
            mismatches: list[str] = []
            start = threading.Barrier(5)
            stop_writing = threading.Event()

            def reader(worker: int) -> None:
                try:
                    start.wait(timeout=10)
                    for round_number in range(8):
                        index = (worker + round_number) % len(_QUERIES)
                        got = fingerprint(notes.query(_QUERIES[index]))
                        if got != expected[index]:
                            mismatches.append(
                                f"worker {worker} round {round_number} "
                                f"query {index}"
                            )
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            def writer() -> None:
                try:
                    start.wait(timeout=10)
                    for batch in range(6):
                        notes.add_annotations(
                            [
                                {
                                    "text": f"sighting note {batch}-{i}",
                                    "table": "sightings",
                                    "row_id": (batch * 5 + i) % 40 + 1,
                                }
                                for i in range(10)
                            ]
                        )
                        if stop_writing.is_set():
                            return
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(4)
            ]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stop_writing.set()
            assert not errors, errors
            assert not mismatches, mismatches
            assert all(not thread.is_alive() for thread in threads)

            # The ingest must actually have landed while readers ran.
            assert notes.annotations.count() >= 120 + 60
        finally:
            notes.close()

    def test_object_cache_serves_hits_under_concurrency(self, tmp_path):
        notes = _build_session(str(tmp_path / "cache.db"))
        try:
            notes.query(_QUERIES[0])  # warm the deserialization LRU
            before = notes.catalog.object_cache_info()

            def read() -> None:
                for _ in range(3):
                    # Dropping the manager's front cache forces each query
                    # through the catalog LRU (and races invalidation).
                    notes.manager.drop_caches()
                    notes.query(_QUERIES[0])

            threads = [threading.Thread(target=read) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            after = notes.catalog.object_cache_info()
            hits = after["hits"] - before["hits"]
            misses = after["misses"] - before["misses"]
            # Twelve re-runs of a warmed query: overwhelmingly hits.
            assert hits > 0
            assert hits > misses
        finally:
            notes.close()


# -- parallel hydration equivalence (hypothesis) ------------------------

_comparisons = st.builds(
    lambda column, op, value: f"{column} {op} {value}",
    st.sampled_from(["weight"]),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    st.sampled_from(["0", "7.0", "14", "21.5", "39"]),
)
_species = st.builds(
    lambda values: f"species IN ({', '.join(values)})",
    st.lists(
        st.sampled_from(["'species0'", "'species3'", "'species6'", "''"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
)
_summary = st.builds(
    lambda op, n: f"SUMMARY_COUNT('BirdClass', 'Behavior') {op} {n}",
    st.sampled_from(["=", ">=", "<"]),
    st.integers(min_value=0, max_value=2),
)
_predicates = st.one_of(_comparisons, _species, _summary)


@pytest.fixture(scope="module")
def worker_sessions(tmp_path_factory):
    root = tmp_path_factory.mktemp("workers")
    serial = _build_session(str(root / "serial.db"), workers=1)
    parallel = _build_session(
        str(root / "parallel.db"), workers=4, scan_block_size=16
    )
    yield serial, parallel
    serial.close()
    parallel.close()


class TestParallelHydrationEquivalence:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        predicate=_predicates,
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=60)),
    )
    def test_workers4_equals_workers1(self, worker_sessions, predicate, limit):
        serial, parallel = worker_sessions
        sql = f"SELECT name, species, weight FROM birds WHERE {predicate}"
        if limit is not None:
            sql += f" LIMIT {limit}"
        assert fingerprint(parallel.query(sql)) == fingerprint(
            serial.query(sql)
        )

    def test_multi_block_scan_is_identical(self, worker_sessions):
        serial, parallel = worker_sessions
        sql = "SELECT name, species, weight FROM birds"
        assert fingerprint(parallel.query(sql)) == fingerprint(
            serial.query(sql)
        )
