"""Tests for the cost-based planner: statistics, rewrites, EXPLAIN.

Covers the tentpole surfaces of DESIGN.md §13:

* catalog statistics — ``analyze()`` collection, persistence in the
  ``planner_stats`` table across sessions, incremental staleness
  tracking, and execution feedback;
* the cost model — stats-driven cardinality estimates and the relative
  ordering that drives rewrites;
* the rewrites — join ordering, storage-side aggregation pushdown (and
  its safety gates), and hydrate placement — each pinned to produce
  byte-identical results to the rule-based plans;
* EXPLAIN — the costed text rendering and its ``to_json`` form;
* staleness — plans stay valid when ``planner_stats`` is empty, stale,
  or describes tables that no longer exist.
"""

import pytest

from repro.engine import plan as lp
from repro.engine.cost import CostModel, PlannerCounters, TableStats
from repro.engine.explain import Explanation
from repro.engine.session import InsightNotes
from repro.storage.planner_stats import PlannerStatsStore


def make_star_session(cost_planner: bool = True) -> InsightNotes:
    """Two dimensions and a fact table, dimensions annotated."""
    notes = InsightNotes(cost_planner=cost_planner)
    notes.create_table("suppliers", ["sname", "region"])
    notes.create_table("parts", ["pname", "kind"])
    notes.create_table("orders", ["supplier", "part", "qty"])
    supplier_ids = notes.insert_many(
        "suppliers", [(f"s{i}", f"r{i % 3}") for i in range(12)]
    )
    notes.insert_many("parts", [(f"p{i}", f"k{i % 2}") for i in range(8)])
    notes.insert_many(
        "orders",
        [(f"s{i % 12}", f"p{i % 8}", i * 7 % 100) for i in range(60)],
    )
    notes.define_classifier(
        "DimClass",
        labels=["Behavior", "Other"],
        training=[("observed feeding near the shore", "Behavior")],
    )
    notes.link("DimClass", "suppliers")
    for row_id in supplier_ids[:4]:
        notes.add_annotation(
            "observed feeding near the shore",
            table="suppliers",
            row_id=row_id,
        )
    notes.analyze()
    return notes


STAR_SQL = (
    "SELECT s.sname, p.pname, o.qty FROM suppliers s, parts p, orders o "
    "WHERE s.sname = o.supplier AND p.pname = o.part AND o.qty > 80"
)


def find_nodes(root, node_type):
    found = []

    def walk(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(root)
    return found


class TestCatalogStatistics:
    def test_analyze_collects_per_table_stats(self):
        with make_star_session() as notes:
            digest = notes.analyze("suppliers")["suppliers"]
            assert digest["row_count"] == 12
            assert digest["columns_analyzed"] == 2
            assert digest["summary_instances"] == 1
            # Whole-row annotations on 4 suppliers, 2 columns each.
            assert digest["annotations"] == 8

    def test_stats_persist_across_sessions(self, tmp_path):
        path = str(tmp_path / "stats.db")
        with InsightNotes(path) as notes:
            notes.create_table("t", ["a", "b"])
            notes.insert_many("t", [(i, i % 3) for i in range(9)])
            notes.analyze()
        with InsightNotes(path) as reopened:
            stats = reopened.stats_registry.table_stats("t")
            assert stats is not None
            assert stats.row_count == 9
            assert stats.analyzed_at is not None
            assert stats.column_ndv("b") == 3

    def test_ingest_bumps_pending_changes(self):
        with make_star_session() as notes:
            notes.insert("orders", ("s1", "p1", 5))
            freshness = notes.statistics()["planner"]["stats"]
            assert freshness["pending_changes"] >= 1
            notes.analyze()
            freshness = notes.statistics()["planner"]["stats"]
            assert freshness["pending_changes"] == 0

    def test_row_count_tracks_incremental_changes(self):
        with make_star_session() as notes:
            stats = notes.stats_registry.table_stats("orders")
            assert stats.row_count == 60
            notes.insert("orders", ("s0", "p0", 1))
            assert (
                notes.stats_registry.table_stats("orders").row_count == 61
            )

    def test_execution_feedback_updates_row_count(self):
        with InsightNotes() as notes:
            notes.create_table("t", ["a"])
            notes.insert_many("t", [(i,) for i in range(7)])
            # Never analyzed: the first full scan teaches the registry
            # the true cardinality.
            notes.query("SELECT a FROM t")
            stats = notes.stats_registry.table_stats("t")
            assert stats.row_count == 7
            freshness = notes.statistics()["planner"]["stats"]
            assert freshness["feedback_updates"] >= 1

    def test_stats_store_round_trip(self):
        with InsightNotes() as notes:
            store = PlannerStatsStore(notes.db)
            store.replace_table("t", {"row_count": 4.0, "ndv:a": 2.0})
            assert store.load_table("t") == {"row_count": 4.0, "ndv:a": 2.0}
            store.replace_table("t", {"row_count": 5.0})
            assert store.load_table("t") == {"row_count": 5.0}
            store.delete_table("t")
            assert store.load_table("t") == {}

    def test_table_stats_round_trip_through_stat_map(self):
        stats = TableStats(
            table="t",
            row_count=10.0,
            ndv={"a": 3.0},
            summary_objects={"C": (5.0, 800.0)},
            annotations=20.0,
            analyzed_at=123.0,
        )
        revived = TableStats.from_stat_map("t", stats.to_stat_map())
        assert revived == stats


class TestCostModel:
    def test_scan_estimate_uses_row_count(self):
        with make_star_session() as notes:
            model = notes.planner.cost_model
            orders = model.estimate(lp.Scan("orders", "o"))
            parts = model.estimate(lp.Scan("parts", "p"))
            assert orders.rows == 60
            assert parts.rows == 8
            assert orders.cost > parts.cost

    def test_storage_filter_reduces_estimate(self):
        with make_star_session() as notes:
            model = notes.planner.cost_model
            full = model.estimate(lp.Scan("orders", "o"))
            filtered = model.estimate(
                lp.Scan("orders", "o", storage_filter=object())
            )
            assert filtered.rows < full.rows

    def test_hydration_cost_scales_with_summary_stats(self):
        with make_star_session() as notes:
            model = notes.planner.cost_model
            annotated = model.hydration_cost_per_row("suppliers", None)
            bare = model.hydration_cost_per_row("parts", None)
            assert annotated > bare

    def test_defaults_without_statistics(self):
        with InsightNotes() as notes:
            model = CostModel(None, notes.planner.schema_of)
            estimate = model.estimate(lp.Scan("anything", "a"))
            assert estimate.rows == CostModel.DEFAULT_ROWS

    def test_counters_reject_unknown_names(self):
        counters = PlannerCounters()
        counters.record("plans_costed")
        assert counters.to_json()["plans_costed"] == 1
        with pytest.raises(KeyError):
            counters.record("no_such_counter")


class TestJoinReorder:
    def test_skewed_order_is_rewritten(self):
        with make_star_session() as notes:
            logical_sql = STAR_SQL
            before = notes.planner.counters.to_json()
            result = notes.query(logical_sql)
            after = notes.planner.counters.to_json()
            assert (
                after["join_orders_considered"]
                > before["join_orders_considered"]
            )
            assert (
                after["join_orders_rewritten"]
                > before["join_orders_rewritten"]
            )
            with make_star_session(cost_planner=False) as rule:
                # Join order changes emission order, never content.
                assert sorted(result.rows()) == sorted(
                    rule.query(logical_sql).rows()
                )

    def test_reorder_preserves_output_schema(self):
        with make_star_session() as notes:
            result = notes.query(STAR_SQL)
            assert result.columns == ("s.sname", "p.pname", "o.qty")

    def test_outer_join_order_is_preserved(self):
        sql = (
            "SELECT s.sname, o.qty FROM suppliers s "
            "LEFT JOIN orders o ON s.sname = o.supplier"
        )
        with make_star_session() as notes, make_star_session(
            cost_planner=False
        ) as rule:
            assert sorted(notes.query(sql).rows()) == sorted(
                rule.query(sql).rows()
            )


class TestAggregatePushdown:
    def build(self, cost_planner: bool = True) -> InsightNotes:
        notes = InsightNotes(cost_planner=cost_planner)
        notes.create_table("readings", ["region", "value"])
        notes.insert_many(
            "readings", [(f"r{i % 4}", i * 3 % 50) for i in range(40)]
        )
        notes.analyze()
        return notes

    def test_group_by_lowers_to_storage(self):
        with self.build() as notes:
            sql = (
                "SELECT region, count(*), sum(value) FROM readings "
                "GROUP BY region"
            )
            explanation = notes.explain(sql)
            nodes = find_nodes(explanation.plan, lp.StorageAggregate)
            assert len(nodes) == 1 and not nodes[0].distinct
            with self.build(cost_planner=False) as rule:
                assert notes.query(sql).rows() == rule.query(sql).rows()

    def test_group_by_with_having(self):
        sql = (
            "SELECT region, count(*) FROM readings "
            "GROUP BY region HAVING count(*) > 8"
        )
        with self.build() as notes, self.build(cost_planner=False) as rule:
            assert notes.query(sql).rows() == rule.query(sql).rows()

    def test_global_aggregate_on_empty_table(self):
        with InsightNotes() as notes:
            notes.create_table("empty", ["a"])
            notes.analyze()
            result = notes.query("SELECT count(*), min(a) FROM empty")
            assert result.rows() == [(0, None)]

    def test_distinct_lowers_to_storage(self):
        with self.build() as notes:
            explanation = notes.explain("SELECT DISTINCT region FROM readings")
            nodes = find_nodes(explanation.plan, lp.StorageAggregate)
            assert len(nodes) == 1 and nodes[0].distinct
            result = notes.query("SELECT DISTINCT region FROM readings")
            with self.build(cost_planner=False) as rule:
                assert (
                    result.rows()
                    == rule.query("SELECT DISTINCT region FROM readings").rows()
                )

    def test_pushdown_keeps_first_seen_group_order(self):
        with self.build() as notes, self.build(cost_planner=False) as rule:
            sql = "SELECT region, count(*) FROM readings GROUP BY region"
            # Order, not just content: GroupByOperator emits groups in
            # first-seen order and the storage path must reproduce it.
            assert notes.query(sql).rows() == rule.query(sql).rows()

    def test_annotated_table_is_not_lowered(self):
        with make_star_session() as notes:
            explanation = notes.explain(
                "SELECT region, count(*) FROM suppliers GROUP BY region"
            )
            assert not find_nodes(explanation.plan, lp.StorageAggregate)

    def test_sharded_backend_is_not_lowered(self, tmp_path):
        path = str(tmp_path / "sharded.db")
        with InsightNotes(path, shards=4) as notes:
            notes.create_table("readings", ["region", "value"])
            notes.insert_many(
                "readings", [(f"r{i % 4}", i) for i in range(40)]
            )
            notes.analyze()
            sql = "SELECT region, count(*) FROM readings GROUP BY region"
            explanation = notes.explain(sql)
            assert not find_nodes(explanation.plan, lp.StorageAggregate)
            assert sorted(notes.query(sql).rows()) == sorted(
                (f"r{i}", 10) for i in range(4)
            )

    def test_provenance_survives_pushdown(self):
        with self.build() as notes:
            result = notes.query(
                "SELECT region, count(*) FROM readings GROUP BY region"
            )
            source_tables = {
                table
                for row in result.tuples
                for table, _ in row.source_rows
            }
            assert source_tables == {"readings"}
            assert (
                sum(len(row.source_rows) for row in result.tuples) == 40
            )


class TestHydratePlacement:
    def build(self, cost_planner: bool = True) -> InsightNotes:
        notes = InsightNotes(cost_planner=cost_planner, object_cache_size=0)
        notes.create_table("obs", ["value", "cutoff"])
        ids = notes.insert_many("obs", [(i, 4) for i in range(30)])
        notes.define_classifier(
            "ObsClass",
            labels=["A", "B"],
            training=[("alpha beta", "A")],
        )
        notes.link("ObsClass", "obs")
        notes.add_annotations(
            [
                {"text": f"alpha note {i}", "table": "obs", "row_id": row_id}
                for i, row_id in enumerate(ids)
            ]
        )
        notes.analyze()
        return notes

    #: value < cutoff is column-vs-column — not sargable — and the
    #: summary conjunct needs hydrated rows: the exact split shape.
    SQL = (
        "SELECT value FROM obs WHERE value < cutoff "
        "AND SUMMARY_COUNT('ObsClass') >= 0"
    )

    def test_split_hydrates_only_surviving_rows(self):
        with self.build() as notes, self.build(cost_planner=False) as rule:
            cost_result = notes.query(self.SQL)
            rule_result = rule.query(self.SQL)
            assert cost_result.rows() == rule_result.rows()
            assert cost_result.stats.rows_hydrated == 4
            assert rule_result.stats.rows_hydrated == 30
            assert (
                notes.planner.counters.to_json()[
                    "hydrate_placements_flipped"
                ]
                >= 1
            )

    def test_summaries_identical_after_split(self):
        with self.build() as notes, self.build(cost_planner=False) as rule:
            cost_result = notes.query(self.SQL)
            rule_result = rule.query(self.SQL)
            for ours, theirs in zip(
                cost_result.tuples, rule_result.tuples
            ):
                assert ours.values == theirs.values
                assert set(ours.summaries) == set(theirs.summaries)
                for name in ours.summaries:
                    assert (
                        ours.summaries[name].annotation_ids()
                        == theirs.summaries[name].annotation_ids()
                    )


class TestExplain:
    def test_explain_is_str_with_estimates(self):
        with make_star_session() as notes:
            explanation = notes.explain(STAR_SQL)
            assert isinstance(explanation, Explanation)
            assert isinstance(explanation, str)
            for line in explanation.splitlines():
                assert "rows~" in line and "cost~" in line

    def test_explain_json_shape(self):
        with make_star_session() as notes:
            tree = notes.explain(
                "SELECT sname FROM suppliers WHERE region = 'r1'"
            ).to_json()
            assert set(tree) == {
                "operator",
                "describe",
                "estimated_rows",
                "estimated_cost",
                "children",
            }
            assert tree["estimated_cost"] > 0
            leaves = [tree]
            while leaves[-1]["children"]:
                leaves.append(leaves[-1]["children"][0])
            assert leaves[-1]["operator"] == "Scan"

    def test_explain_root_cost_covers_whole_plan(self):
        with make_star_session() as notes:
            explanation = notes.explain(STAR_SQL)
            root = explanation.estimate_for(explanation.plan)
            for child in explanation.plan.children():
                assert root.cost >= explanation.estimate_for(child).cost

    def test_explain_matches_executed_semantics(self):
        # EXPLAIN must go through exactly the prepare() path queries
        # use, so a rewritten plan is what the rendering shows.
        with make_star_session() as notes:
            explanation = notes.explain(
                "SELECT kind, count(*) FROM parts GROUP BY kind"
            )
            assert find_nodes(explanation.plan, lp.StorageAggregate)


class TestStaleness:
    def test_plans_valid_with_no_statistics(self):
        # Never-analyzed session: every rewrite must fall back to
        # defaults/stubs without error and keep answers right.
        with InsightNotes() as notes:
            notes.create_table("a", ["x"])
            notes.create_table("b", ["y"])
            notes.insert_many("a", [(i,) for i in range(5)])
            notes.insert_many("b", [(i,) for i in range(5)])
            result = notes.query(
                "SELECT a.x, b.y FROM a, b WHERE a.x = b.y"
            )
            assert len(result.rows()) == 5

    def test_plans_valid_with_stale_statistics(self):
        with InsightNotes() as notes:
            notes.create_table("t", ["v"])
            notes.insert_many("t", [(i,) for i in range(4)])
            notes.analyze()
            # The table grows 25x after ANALYZE; plans must stay
            # correct (if not optimal) on badly stale stats.
            notes.insert_many("t", [(i,) for i in range(4, 100)])
            result = notes.query("SELECT v, count(*) FROM t GROUP BY v")
            assert len(result.rows()) == 100

    def test_persisted_stats_for_dropped_table_are_harmless(self, tmp_path):
        path = str(tmp_path / "dropped.db")
        with InsightNotes(path) as notes:
            notes.create_table("t", ["v"])
            notes.insert("t", (1,))
            notes.analyze()
        with InsightNotes(path) as reopened:
            # Simulate a table dropped out-of-band: stats linger but
            # queries against live tables must be unaffected.
            reopened.stats_store.replace_table(
                "ghost", {"row_count": 1e9}
            )
            assert reopened.query("SELECT v FROM t").rows() == [(1,)]

    def test_cost_planner_off_keeps_counters_quiet(self):
        with make_star_session(cost_planner=False) as notes:
            notes.query(STAR_SQL)
            counters = notes.statistics()["planner"]
            assert counters["cost_planner"] is False
            assert counters["plans_costed"] == 0
            assert counters["join_orders_considered"] == 0
