"""Tests for the SQL dialect extensions: LEFT OUTER JOIN, UNION,
BETWEEN, IS [NOT] NULL, and NULL literals."""

import pytest

from repro import InsightNotes
from repro.engine.sqlparser import CompoundSelect, parse_expression, parse_sql
from repro.errors import SQLSyntaxError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b"])
    notes.create_table("S", ["x", "z"])
    notes.insert("R", (1, 2))
    notes.insert("R", (5, 6))
    notes.insert("R", (None, 7))
    notes.insert("S", (1, "z1"))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "R")
    notes.add_annotation("observed feeding on stonewort",
                         table="R", row_id=2)
    yield notes
    notes.close()


class TestOuterJoin:
    def test_unmatched_left_rows_null_padded(self, stack):
        result = stack.query(
            "SELECT r.a, s.z FROM R r LEFT OUTER JOIN S s ON r.a = s.x "
            "ORDER BY a"
        )
        # NULLs sort first ascending.
        assert result.rows() == [(None, None), (1, "z1"), (5, None)]

    def test_left_join_without_outer_keyword(self, stack):
        result = stack.query(
            "SELECT r.a, s.z FROM R r LEFT JOIN S s ON r.a = s.x"
        )
        assert len(result) == 3

    def test_unmatched_rows_keep_their_summaries(self, stack):
        result = stack.query(
            "SELECT r.a, r.b, s.z FROM R r LEFT OUTER JOIN S s ON r.a = s.x"
        )
        unmatched = next(row for row in result.tuples if row.values[0] == 5)
        assert unmatched.summaries["C"].count("Behavior") == 1

    def test_null_check_finds_unmatched(self, stack):
        result = stack.query(
            "SELECT r.a FROM R r LEFT JOIN S s ON r.a = s.x "
            "WHERE s.z IS NULL AND r.a IS NOT NULL"
        )
        assert result.rows() == [(5,)]

    def test_selection_not_pushed_past_outer_join(self, stack):
        # WHERE s.z IS NULL must run above the outer join, not below it.
        rendering = stack.explain(
            "SELECT r.a FROM R r LEFT JOIN S s ON r.a = s.x WHERE s.z IS NULL"
        )
        lines = rendering.splitlines()
        select_line = next(i for i, l in enumerate(lines) if "Select" in l)
        join_line = next(i for i, l in enumerate(lines) if "OuterJoin" in l)
        assert select_line < join_line

    def test_outer_join_requires_on(self):
        from repro.engine import plan as lp
        from repro.errors import PlanError

        with pytest.raises(PlanError, match="ON predicate"):
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), None, outer=True)


class TestUnion:
    def test_union_all_keeps_duplicates(self, stack):
        result = stack.query(
            "SELECT b FROM R UNION ALL SELECT b FROM R ORDER BY b"
        )
        assert [row[0] for row in result.rows()] == [2, 2, 6, 6, 7, 7]

    def test_union_distinct_dedups(self, stack):
        result = stack.query(
            "SELECT b FROM R UNION SELECT b FROM R ORDER BY b"
        )
        assert [row[0] for row in result.rows()] == [2, 6, 7]

    def test_union_merges_duplicate_summaries(self, stack):
        result = stack.query("SELECT a, b FROM R UNION SELECT a, b FROM R")
        annotated = next(row for row in result.tuples if row.values == (5, 6))
        assert annotated.summaries["C"].count("Behavior") == 1

    def test_union_across_tables(self, stack):
        result = stack.query(
            "SELECT a FROM R WHERE a IS NOT NULL UNION ALL SELECT x FROM S "
            "ORDER BY a"
        )
        assert [row[0] for row in result.rows()] == [1, 1, 5]

    def test_union_arity_mismatch_rejected(self, stack):
        with pytest.raises(SQLSyntaxError, match="same number of columns"):
            stack.query("SELECT a, b FROM R UNION SELECT x FROM S")

    def test_trailing_limit_applies_to_whole_union(self, stack):
        result = stack.query(
            "SELECT b FROM R UNION ALL SELECT b FROM R ORDER BY b LIMIT 2"
        )
        assert len(result) == 2

    def test_parse_returns_compound(self):
        statement = parse_sql("SELECT a FROM R UNION SELECT a FROM R")
        assert isinstance(statement, CompoundSelect)
        assert statement.all_flags == [False]


class TestPredicateExtensions:
    def test_between(self, stack):
        result = stack.query("SELECT b FROM R WHERE b BETWEEN 2 AND 6 ORDER BY b")
        assert [row[0] for row in result.rows()] == [2, 6]

    def test_between_parses_to_conjunction(self):
        expression = parse_expression("a BETWEEN 1 AND 5")
        assert str(expression) == "(a >= 1 AND a <= 5)"

    def test_between_binds_tighter_than_boolean_and(self):
        expression = parse_expression("a BETWEEN 1 AND 5 AND b = 2")
        assert "b = 2" in str(expression)

    def test_is_null(self, stack):
        result = stack.query("SELECT b FROM R WHERE a IS NULL")
        assert result.rows() == [(7,)]

    def test_is_not_null(self, stack):
        result = stack.query("SELECT b FROM R WHERE a IS NOT NULL ORDER BY b")
        assert [row[0] for row in result.rows()] == [2, 6]

    def test_null_literal_comparisons_are_false(self, stack):
        result = stack.query("SELECT b FROM R WHERE a = NULL")
        assert result.rows() == []
