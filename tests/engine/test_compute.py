"""Tests for computed projections (SELECT <expr> [AS name])."""

import pytest

from repro import InsightNotes
from repro.errors import SQLSyntaxError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan Goose", 3.0))
    notes.insert("birds", ("Heron", 2.0))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "birds")
    notes.add_annotation("observed feeding on stonewort",
                         table="birds", row_id=1, columns=["weight"])
    notes.add_annotation("seen foraging near the shore",
                         table="birds", row_id=1, columns=["name"])
    yield notes
    notes.close()


class TestComputedValues:
    def test_arithmetic_with_alias(self, stack):
        result = stack.query(
            "SELECT name, weight * 2 AS double_weight FROM birds"
        )
        assert result.columns == ("birds.name", "double_weight")
        assert result.rows() == [("Swan Goose", 6.0), ("Heron", 4.0)]

    def test_scalar_function(self, stack):
        result = stack.query("SELECT LOWER(name) AS lname FROM birds")
        assert result.rows() == [("swan goose",), ("heron",)]

    def test_unaliased_expression_gets_rendered_name(self, stack):
        result = stack.query("SELECT weight + 1 FROM birds")
        assert result.columns == ("(weight + 1)",)

    def test_order_by_computed_column(self, stack):
        result = stack.query(
            "SELECT name, weight * 2 AS dw FROM birds ORDER BY dw DESC"
        )
        assert [row[0] for row in result.rows()] == ["Swan Goose", "Heron"]

    def test_mixed_plain_and_computed(self, stack):
        result = stack.query("SELECT name, LENGTH(name) AS chars FROM birds")
        assert result.rows() == [("Swan Goose", 10), ("Heron", 5)]

    def test_summary_function_as_output(self, stack):
        # Summary functions observe the summaries at their point in the
        # normalized plan: only name is referenced by the outputs, so the
        # weight-only annotation's effect is already projected out and the
        # count reflects the surviving (name) annotation.
        result = stack.query(
            "SELECT name, SUMMARY_COUNT('C', 'Behavior') AS behaviors "
            "FROM birds ORDER BY behaviors DESC"
        )
        assert result.rows()[0] == ("Swan Goose", 1)
        # Referencing weight as well keeps both annotations in scope.
        wider = stack.query(
            "SELECT name, weight + 0 AS w, "
            "SUMMARY_COUNT('C', 'Behavior') AS behaviors "
            "FROM birds ORDER BY behaviors DESC"
        )
        assert wider.rows()[0] == ("Swan Goose", 3.0, 2)

    def test_distinct_over_computed(self, stack):
        stack.insert("birds", ("Crane", 3.0))
        result = stack.query("SELECT DISTINCT weight * 2 AS dw FROM birds")
        assert sorted(result.rows()) == [(4.0,), (6.0,)]


class TestComputedSummarySemantics:
    def test_annotation_survives_on_referencing_output(self, stack):
        result = stack.query("SELECT weight * 2 AS dw FROM birds")
        swan = result.tuples[0]
        # Only the weight annotation survives (name not referenced).
        assert swan.summaries["C"].count("Behavior") == 1
        (annotation_id,) = swan.attachments
        assert swan.attachments[annotation_id] == frozenset({"dw"})

    def test_annotation_spanning_outputs_attaches_to_all(self, stack):
        result = stack.query(
            "SELECT weight + 1 AS w1, weight + 2 AS w2 FROM birds"
        )
        swan = result.tuples[0]
        (annotation_id,) = swan.attachments
        assert swan.attachments[annotation_id] == frozenset({"w1", "w2"})

    def test_unreferenced_annotations_lose_effect(self, stack):
        result = stack.query("SELECT LOWER(name) AS lname FROM birds")
        swan = result.tuples[0]
        assert swan.summaries["C"].count("Behavior") == 1  # name note only

    def test_agrees_with_raw_engine(self, stack):
        from repro.baselines import RawQueryEngine
        from repro.engine.sqlparser import build_logical, parse_sql

        sql = "SELECT name, weight * 2 AS dw FROM birds"
        summary_result = stack.query(sql)
        logical = stack.planner.prepare(
            build_logical(parse_sql(sql), stack.planner)
        )
        raw_result = RawQueryEngine(stack.db, stack.annotations).execute(logical)
        assert summary_result.rows() == raw_result.rows()
        assert [sorted(t.annotation_ids()) for t in summary_result.tuples] == [
            sorted(t.annotation_ids()) for t in raw_result.tuples
        ]


class TestComputedRestrictions:
    def test_duplicate_output_names_rejected(self, stack):
        with pytest.raises(SQLSyntaxError, match="duplicate output columns"):
            stack.query("SELECT weight + 1 AS x, weight + 2 AS x FROM birds")

    def test_no_expressions_with_group_by(self, stack):
        with pytest.raises(SQLSyntaxError, match="aggregation"):
            stack.query(
                "SELECT weight * 2 AS dw, count(*) FROM birds GROUP BY weight"
            )

    def test_qualified_alias_rejected(self, stack):
        with pytest.raises(SQLSyntaxError, match="qualified"):
            stack.query("SELECT weight + 1 AS b.x FROM birds")

    def test_normalization_prunes_unused_inputs(self, stack):
        rendering = stack.explain("SELECT weight * 2 AS dw FROM birds")
        assert "Project(birds.weight)" in rendering
