"""Tests for annotation updates and session statistics."""

import pytest

from repro import InsightNotes
from repro.errors import UnknownAnnotationError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.insert("birds", ("Swan", 3.2))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.define_cluster("Cl", threshold=0.3)
    notes.link("C", "birds")
    notes.link("Cl", "birds")
    yield notes
    notes.close()


class TestUpdateAnnotation:
    def test_update_changes_classification(self, stack):
        annotation = stack.add_annotation("observed feeding on stonewort",
                                          table="birds", row_id=1)
        obj = stack.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 1
        stack.update_annotation(
            annotation.annotation_id,
            text="shows symptoms of avian influenza",
        )
        obj = stack.manager.current_object("C", "birds", 1)
        assert obj.count("Behavior") == 0
        assert obj.count("Disease") == 1

    def test_update_preserves_identity(self, stack):
        annotation = stack.add_annotation("observed feeding", author="ana",
                                          table="birds", row_id=1,
                                          created_at=42.0)
        updated = stack.update_annotation(annotation.annotation_id,
                                          text="new text entirely")
        assert updated.annotation_id == annotation.annotation_id
        assert updated.author == "ana"
        assert updated.created_at == 42.0

    def test_update_title_only(self, stack):
        annotation = stack.add_annotation("body text", table="birds",
                                          row_id=1, title="Old")
        updated = stack.update_annotation(annotation.annotation_id,
                                          title="New")
        assert updated.text == "body text"
        assert updated.title == "New"

    def test_update_persists(self, stack):
        annotation = stack.add_annotation("original", table="birds", row_id=1)
        stack.update_annotation(annotation.annotation_id, text="changed")
        assert stack.annotations.get(annotation.annotation_id).text == "changed"

    def test_update_moves_cluster_group(self, stack):
        stack.add_annotation("observed feeding on stonewort beds",
                             table="birds", row_id=1)
        lone = stack.add_annotation("completely unrelated topic here",
                                    table="birds", row_id=1)
        obj = stack.manager.current_object("Cl", "birds", 1)
        assert len(obj.groups) == 2
        stack.update_annotation(lone.annotation_id,
                                text="also observed feeding on stonewort")
        obj = stack.manager.current_object("Cl", "birds", 1)
        assert len(obj.groups) == 1

    def test_update_unknown_raises(self, stack):
        with pytest.raises(UnknownAnnotationError):
            stack.update_annotation(999, text="x")

    def test_zoomin_sees_updated_text(self, stack):
        annotation = stack.add_annotation("observed feeding",
                                          table="birds", row_id=1)
        result = stack.query("SELECT name, weight FROM birds")
        stack.update_annotation(annotation.annotation_id,
                                text="observed diving instead")
        zoom = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C")
        texts = [a.text for m in zoom.matches for a in m.annotations]
        assert "observed diving instead" in texts


class TestStatistics:
    def test_snapshot_shape(self, stack):
        stack.add_annotation("observed feeding", table="birds", row_id=1)
        stack.query("SELECT name FROM birds")
        stats = stack.statistics()
        assert stats["tables"] == 1
        assert stats["rows"] == 1
        assert stats["annotations"] == 1
        assert stats["summary_instances"] == 2
        assert stats["summary_links"] == 2
        assert stats["queries_registered"] == 1
        assert stats["maintenance"]["annotations_processed"] == 1
        assert 0.0 <= stats["zoomin_cache"]["hit_ratio"] <= 1.0

    def test_counters_move_with_activity(self, stack):
        before = stack.statistics()
        stack.add_annotation("seen foraging", table="birds", row_id=1)
        result = stack.query("SELECT name FROM birds")
        stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C")
        after = stack.statistics()
        assert after["annotations"] == before["annotations"] + 1
        assert after["zoomin_cache"]["hits"] == before["zoomin_cache"]["hits"] + 1
