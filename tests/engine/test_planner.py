"""Tests for repro.engine.planner — normalization and pushdown."""

import pytest

from repro import InsightNotes
from repro.engine import plan as lp
from repro.engine.expressions import BooleanOp, Column, Comparison, Literal
from repro.engine.planner import Planner
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b", "c", "d"])
    notes.create_table("S", ["x", "y", "z"])
    notes.insert("R", (1, 2, "c1", "d1"))
    notes.insert("S", (1, "y1", "z1"))
    yield notes
    notes.close()


def eq(left, right):
    return Comparison("=", Column(left), Column(right))


class TestSchemaOf:
    def test_scan(self, stack):
        assert stack.planner.schema_of(lp.Scan("R", "r")) == (
            "r.a", "r.b", "r.c", "r.d",
        )

    def test_project(self, stack):
        node = lp.Project(lp.Scan("R", "r"), ("b", "r.a"))
        assert stack.planner.schema_of(node) == ("r.b", "r.a")

    def test_join(self, stack):
        node = lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), None)
        assert stack.planner.schema_of(node) == (
            "r.a", "r.b", "r.c", "r.d", "s.x", "s.y", "s.z",
        )

    def test_group_by(self, stack):
        node = lp.GroupBy(
            lp.Scan("R", "r"), ("b",),
            (lp.Aggregate("count", None), lp.Aggregate("sum", Column("a"))),
        )
        assert stack.planner.schema_of(node) == ("r.b", "count(*)", "sum(r.a)")


class TestNormalization:
    def test_inserts_projections_below_join(self, stack):
        logical = lp.Project(
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), eq("r.a", "s.x")),
            ("r.a", "r.b", "s.z"),
        )
        normalized = stack.planner.normalize(logical)
        rendering = normalized.render()
        # Both join inputs must be projected before the merge.
        join_line = next(
            i for i, line in enumerate(rendering.splitlines()) if "Join" in line
        )
        below = rendering.splitlines()[join_line + 1:]
        assert any("Project(r.a, r.b)" in line for line in below)
        assert any(
            "Project(s.z, s.x)" in line or "Project(s.x, s.z)" in line
            for line in below
        )

    def test_scan_without_pruning_needed_is_untouched(self, stack):
        logical = lp.Scan("R", "r")
        normalized = stack.planner.normalize(logical)
        assert isinstance(normalized, lp.Scan)

    def test_selection_columns_kept_below_then_projected(self, stack):
        logical = lp.Project(
            lp.Select(
                lp.Scan("R", "r"), Comparison("=", Column("r.d"), Literal("d1"))
            ),
            ("r.a",),
        )
        normalized = stack.planner.normalize(logical)
        # d is needed by the select but not above it: the plan must read it
        # and then project it away.
        assert isinstance(normalized, lp.Project)
        assert normalized.columns == ("r.a",)
        result = stack.execute_logical(logical)
        assert result.columns == ("r.a",)
        assert result.rows() == [(1,)]

    def test_group_by_prunes_to_keys_and_args(self, stack):
        logical = lp.GroupBy(
            lp.Scan("R", "r"), ("b",), (lp.Aggregate("sum", Column("a")),)
        )
        normalized = stack.planner.normalize(logical)
        rendering = normalized.render()
        assert "Project(r.b, r.a)" in rendering or "Project(r.a, r.b)" in rendering

    def test_normalized_plans_execute_identically(self, stack):
        logical = lp.Project(
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), eq("r.a", "s.x")),
            ("r.b", "s.z"),
        )
        stack.planner.normalize_plans = True
        normalized_result = stack.execute_logical(logical)
        stack.planner.normalize_plans = False
        raw_result = stack.execute_logical(logical)
        stack.planner.normalize_plans = True
        assert normalized_result.rows() == raw_result.rows()


class TestSelectionPushdown:
    def test_single_side_conjunct_sinks_below_join(self, stack):
        logical = lp.Select(
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), None),
            BooleanOp("and", (
                eq("r.a", "s.x"),
                Comparison("=", Column("r.b"), Literal(2)),
            )),
        )
        pushed = stack.planner.push_down_selections(logical)
        assert isinstance(pushed, lp.Join)
        assert pushed.predicate is not None  # r.a = s.x became the join pred
        assert isinstance(pushed.left, lp.Select)  # r.b = 2 sank left

    def test_join_conjunct_becomes_join_predicate(self, stack):
        logical = lp.Select(
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), None),
            eq("r.a", "s.x"),
        )
        pushed = stack.planner.push_down_selections(logical)
        assert isinstance(pushed, lp.Join)
        assert str(pushed.predicate) == "r.a = s.x"

    def test_pushdown_preserves_results(self, stack):
        stack.insert("R", (9, 9, "c", "d"))
        logical = lp.Select(
            lp.Join(lp.Scan("R", "r"), lp.Scan("S", "s"), None),
            BooleanOp("and", (
                eq("r.a", "s.x"),
                Comparison("=", Column("s.z"), Literal("z1")),
            )),
        )
        with_pushdown = stack.execute_logical(logical)
        stack.planner.push_selections = False
        without_pushdown = stack.execute_logical(logical)
        stack.planner.push_selections = True
        assert sorted(with_pushdown.rows()) == sorted(without_pushdown.rows())


class TestPhysicalLowering:
    def test_all_node_types_lower(self, stack):
        logical = lp.Limit(
            lp.Sort(
                lp.Distinct(
                    lp.Project(
                        lp.Select(
                            lp.Scan("R", "r"),
                            Comparison(">", Column("r.a"), Literal(0)),
                        ),
                        ("r.a",),
                    )
                ),
                (Column("r.a"),),
            ),
            10,
        )
        result = stack.execute_logical(logical)
        assert result.rows() == [(1,)]

    def test_union_lowering(self, stack):
        logical = lp.Union(
            lp.Project(lp.Scan("R", "r"), ("r.a",)),
            lp.Project(lp.Scan("S", "s"), ("s.x",)),
        )
        result = stack.execute_logical(logical)
        assert sorted(result.rows()) == [(1,), (1,)]

    def test_union_distinct_lowering(self, stack):
        logical = lp.Union(
            lp.Project(lp.Scan("R", "r"), ("r.a",)),
            lp.Project(lp.Scan("S", "s"), ("s.x",)),
            distinct=True,
        )
        result = stack.execute_logical(logical)
        assert result.rows() == [(1,)]
