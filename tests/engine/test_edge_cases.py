"""Edge-case tests across the query engine."""

import pytest

from repro import InsightNotes
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("t", ["a", "b"])
    notes.create_table("empty", ["x", "y"])
    notes.insert("t", (1, "one"))
    notes.insert("t", (2, "two"))
    yield notes
    notes.close()


class TestEmptyInputs:
    def test_scan_empty_table(self, stack):
        assert stack.query("SELECT x FROM empty").rows() == []

    def test_join_with_empty_side(self, stack):
        result = stack.query(
            "SELECT t.a, e.x FROM t, empty e WHERE t.a = e.x"
        )
        assert result.rows() == []

    def test_outer_join_with_empty_right(self, stack):
        result = stack.query(
            "SELECT t.a, e.x FROM t LEFT JOIN empty e ON t.a = e.x ORDER BY a"
        )
        assert result.rows() == [(1, None), (2, None)]

    def test_group_by_empty_input(self, stack):
        result = stack.query("SELECT x, count(*) FROM empty GROUP BY x")
        assert result.rows() == []

    def test_global_aggregate_over_empty_input(self, stack):
        result = stack.query("SELECT count(*), sum(x) FROM empty")
        assert result.rows() == [(0, None)]

    def test_distinct_empty(self, stack):
        assert stack.query("SELECT DISTINCT x FROM empty").rows() == []

    def test_union_with_empty_arm(self, stack):
        result = stack.query("SELECT a FROM t UNION ALL SELECT x FROM empty")
        assert len(result) == 2


class TestLimits:
    def test_limit_zero(self, stack):
        assert stack.query("SELECT a FROM t LIMIT 0").rows() == []

    def test_limit_beyond_rows(self, stack):
        assert len(stack.query("SELECT a FROM t LIMIT 99")) == 2

    def test_having_filters_everything(self, stack):
        result = stack.query(
            "SELECT b, count(*) FROM t GROUP BY b HAVING count(*) > 5"
        )
        assert result.rows() == []

    def test_where_matches_nothing(self, stack):
        result = stack.query("SELECT a FROM t WHERE a > 1000")
        assert result.rows() == []
        # Zoom-in on an empty result is a clean error about the instance,
        # not a crash.
        from repro.errors import ZoomInError

        zoom = None
        try:
            zoom = stack.zoomin(
                f"ZOOMIN REFERENCE QID = {result.qid} ON Whatever"
            )
        except ZoomInError:
            pass
        if zoom is not None:
            assert zoom.matches == []


class TestTextEdgeCases:
    def test_unicode_annotation_round_trip(self, stack):
        stack.define_classifier("C", ["a", "b"], [("uno", "a"), ("dos", "b")])
        stack.link("C", "t")
        text = "観察された飛行 — naïve café ≠ 鳥 🐦"
        annotation = stack.add_annotation(text, table="t", row_id=1)
        result = stack.query("SELECT a, b FROM t")
        zoom = stack.zoomin(f"ZOOMIN REFERENCE QID = {result.qid} ON C")
        texts = [a.text for m in zoom.matches for a in m.annotations]
        assert text in texts

    def test_very_long_annotation(self, stack):
        stack.define_snippet("S", documents_only=False, max_sentences=2)
        stack.link("S", "t")
        body = " ".join(
            f"Sentence number {i} talks about observation {i}." for i in range(400)
        )
        stack.add_annotation(body, table="t", row_id=1, document=True,
                             title="Giant report")
        result = stack.query("SELECT a, b FROM t")
        snippet = result.tuples[0].summaries["S"]
        assert len(snippet.entries[0].sentences) == 2

    def test_quote_heavy_values(self, stack):
        stack.insert("t", (3, "o'brien's \"notes\""))
        result = stack.query("SELECT b FROM t WHERE b = 'o''brien''s \"notes\"'")
        assert len(result) == 1

    def test_empty_annotation_text(self, stack):
        stack.define_cluster("Cl", threshold=0.5)
        stack.link("Cl", "t")
        stack.add_annotation("", table="t", row_id=1)
        result = stack.query("SELECT a, b FROM t")
        assert result.tuples[0].summaries["Cl"].group_sizes() == [1]


class TestSchemaEdgeCases:
    def test_single_column_table(self, stack):
        stack.create_table("narrow", ["only"])
        stack.insert("narrow", ("v",))
        assert stack.query("SELECT only FROM narrow").rows() == [("v",)]

    def test_many_column_table(self, stack):
        columns = [f"c{i}" for i in range(40)]
        stack.create_table("wide", columns)
        stack.insert("wide", tuple(range(40)))
        result = stack.query("SELECT c0, c39 FROM wide")
        assert result.rows() == [(0, 39)]

    def test_self_join_with_aliases(self, stack):
        result = stack.query(
            "SELECT x.a, y.a FROM t x, t y WHERE x.a < y.a"
        )
        assert result.rows() == [(1, 2)]

    def test_triple_join(self, stack):
        stack.create_table("u", ["k"])
        stack.insert("u", (1,))
        result = stack.query(
            "SELECT x.a, y.b, u.k FROM t x, t y, u "
            "WHERE x.a = y.a AND x.a = u.k"
        )
        assert result.rows() == [(1, "one", 1)]


class TestMultiInstanceInteraction:
    def test_many_instances_on_one_row(self, stack):
        for i in range(6):
            stack.define_classifier(f"I{i}", ["a", "b"],
                                    [("one", "a"), ("two", "b")])
            stack.link(f"I{i}", "t")
        stack.add_annotation("one one", table="t", row_id=1)
        result = stack.query("SELECT a, b FROM t")
        assert len(result.tuples[0].summaries) == 6
        for obj in result.tuples[0].summaries.values():
            assert obj.count("a") == 1

    def test_instance_linked_to_multiple_tables(self, stack):
        stack.define_classifier("Shared", ["a", "b"],
                                [("one", "a"), ("two", "b")])
        stack.link("Shared", "t")
        stack.link("Shared", "empty")
        stack.add_annotation("one", table="t", row_id=1)
        result = stack.query("SELECT a FROM t")
        assert result.tuples[0].summaries["Shared"].count("a") == 1
