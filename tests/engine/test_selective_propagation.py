"""Tests for the WITH SUMMARIES clause (selective propagation)."""

import pytest

from repro import InsightNotes
from repro.errors import SQLSyntaxError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("birds", ["name", "weight"])
    notes.create_table("spots", ["place"])
    notes.insert("birds", ("Swan", 3.2))
    notes.insert("spots", ("lake",))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.define_cluster("Cl", threshold=0.3)
    notes.link("C", "birds")
    notes.link("Cl", "birds")
    notes.add_annotation("observed feeding on stonewort",
                         table="birds", row_id=1)
    yield notes
    notes.close()


class TestWithSummaries:
    def test_default_carries_all_instances(self, stack):
        result = stack.query("SELECT name FROM birds")
        assert sorted(result.tuples[0].summaries) == ["C", "Cl"]

    def test_subset(self, stack):
        result = stack.query("SELECT name FROM birds WITH SUMMARIES (C)")
        assert sorted(result.tuples[0].summaries) == ["C"]

    def test_no_summaries(self, stack):
        result = stack.query("SELECT name FROM birds WITH NO SUMMARIES")
        row = result.tuples[0]
        assert row.summaries == {}
        assert row.attachments == {}

    def test_values_unaffected(self, stack):
        full = stack.query("SELECT name, weight FROM birds")
        bare = stack.query("SELECT name, weight FROM birds WITH NO SUMMARIES")
        assert full.rows() == bare.rows()

    def test_clause_composes_with_where_and_order(self, stack):
        result = stack.query(
            "SELECT name FROM birds WHERE weight > 1 "
            "WITH SUMMARIES (Cl) ORDER BY name"
        )
        assert sorted(result.tuples[0].summaries) == ["Cl"]

    def test_clause_applies_to_every_scan(self, stack):
        result = stack.query(
            "SELECT b.name, s.place FROM birds b, spots s WITH NO SUMMARIES"
        )
        assert result.tuples[0].summaries == {}

    def test_unknown_instance_is_silently_absent(self, stack):
        # Naming an instance not linked to the table simply yields nothing
        # for it — the clause selects among linked instances.
        result = stack.query("SELECT name FROM birds WITH SUMMARIES (Ghost)")
        assert result.tuples[0].summaries == {}

    def test_plan_rendering_shows_restriction(self, stack):
        assert "[no summaries]" in stack.explain(
            "SELECT name FROM birds WITH NO SUMMARIES"
        )
        assert "[summaries: C]" in stack.explain(
            "SELECT name FROM birds WITH SUMMARIES (C)"
        )

    def test_syntax_errors(self, stack):
        with pytest.raises(SQLSyntaxError):
            stack.query("SELECT name FROM birds WITH")
        with pytest.raises(SQLSyntaxError):
            stack.query("SELECT name FROM birds WITH SUMMARIES")

    def test_zoomin_against_restricted_result(self, stack):
        result = stack.query("SELECT name FROM birds WITH SUMMARIES (C)")
        zoom = stack.zoomin(
            f"ZOOMIN REFERENCE QID = {result.qid} ON C INDEX 1"
        )
        assert zoom.annotation_count() == 1
