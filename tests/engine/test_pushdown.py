"""Predicate/limit pushdown and lazy hydration.

Three layers of coverage: the sargable compiler
(:func:`repro.engine.pushdown.compile_conjuncts`) in isolation, the
planner's Hydrate-placement and LIMIT-sinking rewrites on plan shapes,
and end-to-end execution — counters on the query result, storage
statement budgets, and the values-only subquery fast path.
"""

import json

import pytest

from repro import InsightNotes
from repro.engine import plan as lp
from repro.engine.expressions import (
    BooleanOp,
    Column,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    SummaryCount,
    uses_summaries,
)
from repro.engine.operators import HydrateOperator, ScanOperator
from repro.engine.pushdown import StorageFilter, compile_conjuncts
from repro.engine.sqlparser import build_logical, parse_sql

SCHEMA = ("birds.name", "birds.species", "birds.weight")
COLUMNS = ("name", "species", "weight")


def compile_one(expr):
    return compile_conjuncts([expr], SCHEMA, COLUMNS)


class TestCompiler:
    def test_column_op_literal_is_pushed(self):
        pushed, residual = compile_one(
            Comparison(">", Column("weight"), Literal(5.0))
        )
        assert residual == []
        assert pushed.sql == '"weight" > ?'
        assert pushed.params == (5.0,)
        assert pushed.display == "weight > 5.0"

    def test_literal_op_column_is_pushed(self):
        pushed, residual = compile_one(
            Comparison("<", Literal(5), Column("weight"))
        )
        assert residual == []
        assert pushed.sql == '? < "weight"'
        assert pushed.params == (5,)

    def test_qualified_column_resolves_to_storage_name(self):
        pushed, _ = compile_one(
            Comparison("=", Column("birds.name"), Literal("Swan Goose"))
        )
        assert pushed.sql == '"name" = ?'

    def test_in_list_is_pushed(self):
        pushed, residual = compile_one(
            InList(Column("species"), ("a", "b"))
        )
        assert residual == []
        assert pushed.sql == '"species" IN (?, ?)'
        assert pushed.params == ("a", "b")

    def test_in_list_with_null_element_stays_residual(self):
        # Python's ``None in (None,)`` is true; SQLite's ``x IN (NULL)``
        # never is.  Pushing would silently drop rows.
        expr = InList(Column("species"), ("a", None))
        pushed, residual = compile_one(expr)
        assert pushed is None
        assert residual == [expr]

    def test_empty_in_list_stays_residual(self):
        expr = InList(Column("species"), ())
        assert compile_one(expr) == (None, [expr])

    def test_is_null_and_is_not_null_are_pushed(self):
        pushed, _ = compile_one(IsNull(Column("weight")))
        assert pushed.sql == '"weight" IS NULL'
        assert pushed.params == ()
        pushed, _ = compile_one(IsNull(Column("weight"), negated=True))
        assert pushed.sql == '"weight" IS NOT NULL'

    def test_not_stays_residual(self):
        # Engine NOT(x = 5) keeps NULL rows; SQLite filters them out.
        expr = Not(Comparison("=", Column("weight"), Literal(5)))
        assert compile_one(expr) == (None, [expr])

    def test_like_stays_residual(self):
        # Engine LIKE is case-insensitive over full Unicode; SQLite's
        # only folds ASCII.
        expr = Like(Column("name"), "swan%")
        assert compile_one(expr) == (None, [expr])

    def test_column_vs_column_stays_residual(self):
        expr = Comparison("=", Column("name"), Column("species"))
        assert compile_one(expr) == (None, [expr])

    def test_summary_function_stays_residual(self):
        expr = Comparison(">", SummaryCount("BirdClass", "Disease"), Literal(1))
        assert compile_one(expr) == (None, [expr])

    def test_unknown_column_stays_residual(self):
        expr = Comparison("=", Column("wingspan"), Literal(1))
        assert compile_one(expr) == (None, [expr])

    def test_non_pushable_literal_stays_residual(self):
        expr = Comparison("=", Column("weight"), Literal(None))
        assert compile_one(expr) == (None, [expr])

    def test_or_with_all_pushable_branches_is_pushed(self):
        pushed, residual = compile_one(
            BooleanOp("or", (
                Comparison(">", Column("weight"), Literal(9.0)),
                InList(Column("species"), ("a",)),
            ))
        )
        assert residual == []
        assert pushed.sql == '("weight" > ? OR "species" IN (?))'
        assert pushed.params == (9.0, "a")

    def test_or_with_one_unpushable_branch_stays_whole(self):
        # OR is all-or-nothing: pushing half would change semantics.
        expr = BooleanOp("or", (
            Comparison(">", Column("weight"), Literal(9.0)),
            Like(Column("name"), "swan%"),
        ))
        assert compile_one(expr) == (None, [expr])

    def test_mixed_conjuncts_split_in_order(self):
        pushable = Comparison(">", Column("weight"), Literal(2.0))
        residual_a = Like(Column("name"), "s%")
        residual_b = Not(IsNull(Column("species")))
        also_pushable = InList(Column("species"), ("a", "b"))
        pushed, residual = compile_conjuncts(
            [pushable, residual_a, residual_b, also_pushable],
            SCHEMA, COLUMNS,
        )
        assert pushed.sql == '"weight" > ? AND "species" IN (?, ?)'
        assert pushed.params == (2.0, "a", "b")
        assert residual == [residual_a, residual_b]

    def test_merge_ands_filters(self):
        first = StorageFilter('"a" = ?', (1,), "a = 1")
        second = StorageFilter('"b" = ?', (2,), "b = 2")
        merged = first.merge(second)
        assert merged.sql == '("a" = ?) AND ("b" = ?)'
        assert merged.params == (1, 2)
        assert str(merged) == "(a = 1) AND (b = 2)"


def prepared_plan(notes, sql):
    logical = build_logical(parse_sql(sql), notes.planner)
    return notes.planner.prepare(logical)


def nodes_of(plan, kind):
    return [node for node in lp.walk(plan) if isinstance(node, kind)]


class TestPlanShapes:
    def test_sargable_select_collapses_into_scan(self, birds_session):
        plan = prepared_plan(
            birds_session, "SELECT name FROM birds WHERE weight > 5"
        )
        assert nodes_of(plan, lp.Select) == []
        (scan,) = nodes_of(plan, lp.Scan)
        assert scan.storage_filter is not None
        assert scan.storage_filter.sql == '"weight" > ?'
        assert len(nodes_of(plan, lp.Hydrate)) == 1

    def test_residual_select_stays_below_hydrate(self, birds_session):
        plan = prepared_plan(
            birds_session,
            "SELECT name FROM birds WHERE weight > 5 AND name LIKE 's%'",
        )
        (hydrate,) = nodes_of(plan, lp.Hydrate)
        (select,) = nodes_of(plan, lp.Select)
        # The LIKE residual filters un-hydrated rows under the Hydrate;
        # the comparison went into the scan.
        assert select in list(lp.walk(hydrate.child))
        assert isinstance(select.predicate, Like)
        (scan,) = nodes_of(plan, lp.Scan)
        assert scan.storage_filter.sql == '"weight" > ?'

    def test_summary_predicate_is_a_hydration_barrier(self, birds_session):
        plan = prepared_plan(
            birds_session,
            "SELECT name FROM birds "
            "WHERE SUMMARY_COUNT('BirdClass', 'Behavior') >= 2",
        )
        (hydrate,) = nodes_of(plan, lp.Hydrate)
        (select,) = nodes_of(plan, lp.Select)
        assert uses_summaries(select.predicate)
        # The summary-consuming selection must read hydrated rows.
        assert select not in list(lp.walk(hydrate.child))
        assert hydrate in list(lp.walk(select.child))

    def test_limit_is_pushed_into_scan(self, birds_session):
        plan = prepared_plan(birds_session, "SELECT name FROM birds LIMIT 2")
        (scan,) = nodes_of(plan, lp.Scan)
        assert scan.storage_limit == 2
        # The in-memory Limit stays as the authoritative cap.
        assert len(nodes_of(plan, lp.Limit)) == 1

    def test_order_by_blocks_limit_pushdown(self, birds_session):
        plan = prepared_plan(
            birds_session, "SELECT name, weight FROM birds ORDER BY weight LIMIT 2"
        )
        (scan,) = nodes_of(plan, lp.Scan)
        assert scan.storage_limit is None

    def test_value_sort_and_limit_stay_below_hydrate(self, birds_session):
        plan = prepared_plan(
            birds_session, "SELECT name, weight FROM birds ORDER BY weight LIMIT 2"
        )
        # Sort on plain values passes through: Hydrate tops the chain, so
        # only the two emitted rows are hydrated.
        assert isinstance(plan, lp.Hydrate)
        assert nodes_of(plan.child, lp.Sort) and nodes_of(plan.child, lp.Limit)

    def test_summary_sort_is_a_hydration_barrier(self, birds_session):
        plan = prepared_plan(
            birds_session,
            "SELECT name FROM birds ORDER BY SUMMARY_COUNT('BirdClass')",
        )
        (hydrate,) = nodes_of(plan, lp.Hydrate)
        (sort,) = nodes_of(plan, lp.Sort)
        assert hydrate in list(lp.walk(sort.child))

    def test_with_no_summaries_skips_hydration(self, birds_session):
        plan = prepared_plan(
            birds_session, "SELECT name FROM birds WITH NO SUMMARIES"
        )
        assert nodes_of(plan, lp.Hydrate) == []

    def test_stacked_filters_merge_on_one_scan(self, birds_session):
        plan = prepared_plan(
            birds_session,
            "SELECT name FROM birds WHERE weight > 2 AND weight < 11 "
            "AND species IN ('Anser cygnoides', 'Cygnus olor')",
        )
        (scan,) = nodes_of(plan, lp.Scan)
        assert scan.storage_filter.sql.count("?") == 4
        assert nodes_of(plan, lp.Select) == []

    def test_pushdown_off_reproduces_eager_pipeline(self):
        notes = InsightNotes(pushdown=False)
        try:
            notes.create_table("birds", ["name", "weight"])
            notes.define_cluster("C", threshold=0.3)
            notes.link("C", "birds")
            plan = prepared_plan(
                notes, "SELECT name FROM birds WHERE weight > 5 LIMIT 2"
            )
            (scan,) = nodes_of(plan, lp.Scan)
            assert scan.storage_filter is None
            assert scan.storage_limit is None
            (hydrate,) = nodes_of(plan, lp.Hydrate)
            assert hydrate.eager
            assert isinstance(hydrate.child, lp.Scan)
            # The selection runs in memory, above the eager Hydrate.
            (select,) = nodes_of(plan, lp.Select)
            assert hydrate in list(lp.walk(select.child))
        finally:
            notes.close()


TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("tested positive for botulism in the flock", "Disease"),
]


def populate_flock(notes: InsightNotes, rows: int = 30) -> InsightNotes:
    notes.create_table("birds", ["name", "species", "weight"])
    for i in range(rows):
        notes.insert("birds", (f"bird-{i}", f"species-{i % 5}", float(i)))
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    for i in range(rows):
        notes.add_annotation(
            f"observed feeding on stonewort at dawn, visit {i}",
            table="birds", row_id=i + 1,
        )
    return notes


def fingerprint(result) -> str:
    payload = [
        {
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        }
        for row in result.tuples
    ]
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def flock():
    notes = populate_flock(InsightNotes())
    yield notes
    notes.close()


class TestExecutionStats:
    def test_full_scan_hydrates_everything(self, flock):
        result = flock.query("SELECT name, species, weight FROM birds")
        assert result.stats.rows_scanned == 30
        assert result.stats.rows_hydrated == 30
        assert result.stats.hydration_blocks == 1

    def test_pushed_filter_scans_survivors_only(self, flock):
        result = flock.query(
            "SELECT name, species, weight FROM birds WHERE weight > 25"
        )
        assert len(result.tuples) == 4
        assert result.stats.rows_scanned == 4
        assert result.stats.rows_hydrated == 4

    def test_residual_filter_hydrates_survivors_only(self, flock):
        # LIKE cannot be pushed; it filters plain rows below the Hydrate,
        # so all rows are scanned but only the 3 matches are hydrated.
        result = flock.query(
            "SELECT name, species, weight FROM birds WHERE name LIKE '%5'"
        )
        assert len(result.tuples) == 3
        assert result.stats.rows_scanned == 30
        assert result.stats.rows_hydrated == 3

    def test_pushed_limit_bounds_the_scan(self, flock):
        result = flock.query("SELECT name FROM birds LIMIT 2")
        assert result.stats.rows_scanned == 2
        assert result.stats.rows_hydrated == 2

    def test_no_summaries_query_never_hydrates(self, flock):
        result = flock.query("SELECT name FROM birds WITH NO SUMMARIES")
        assert result.stats.rows_scanned == 30
        assert result.stats.rows_hydrated == 0
        assert result.stats.hydration_blocks == 0

    def test_stats_serialize(self, flock):
        result = flock.query("SELECT name FROM birds LIMIT 1")
        assert result.stats.to_json() == {
            "rows_scanned": 1,
            "rows_hydrated": 1,
            "hydration_blocks": 1,
        }


class TestExecutionBudgets:
    def test_selective_query_fetches_fewer_summary_statements(self):
        # Small blocks + no object cache make round-trips visible: the
        # eager pipeline hydrates all 30 rows (8 blocks), the lazy one
        # only the 4 survivors (1 block).
        lazy = populate_flock(
            InsightNotes(scan_block_size=4, object_cache_size=0)
        )
        eager = populate_flock(
            InsightNotes(scan_block_size=4, object_cache_size=0,
                         pushdown=False)
        )
        sql = "SELECT name, species, weight FROM birds WHERE weight > 25"
        try:
            for notes in (lazy, eager):
                notes.manager.drop_caches()
            with lazy.db.track_queries() as few:
                lazy_result = lazy.query(sql)
            with eager.db.track_queries() as many:
                eager_result = eager.query(sql)
            assert fingerprint(lazy_result) == fingerprint(eager_result)
            lazy_state = sum(
                1 for s in few.statements if "summary_state" in s
            )
            eager_state = sum(
                1 for s in many.statements if "summary_state" in s
            )
            assert lazy_state > 0
            assert eager_state >= 3 * lazy_state
        finally:
            lazy.close()
            eager.close()

    def test_values_only_subquery_skips_hydration(self):
        notes = populate_flock(InsightNotes(object_cache_size=0))
        sql = (
            "SELECT name FROM birds WHERE weight IN "
            "(SELECT weight FROM birds WHERE weight > 25) WITH NO SUMMARIES"
        )
        try:
            notes.manager.drop_caches()
            with notes.db.track_queries() as counter:
                result = notes.query(sql)
            assert len(result.tuples) == 4
            assert [s for s in counter.statements if "summary_state" in s] == []
        finally:
            notes.close()

    def test_values_only_subquery_hydrates_when_pushdown_off(self):
        # The control for the skip: the eager pipeline hydrates the
        # subquery's scan even though only values are consumed.
        notes = populate_flock(
            InsightNotes(object_cache_size=0, pushdown=False)
        )
        sql = (
            "SELECT name FROM birds WHERE weight IN "
            "(SELECT weight FROM birds WHERE weight > 25) WITH NO SUMMARIES"
        )
        try:
            notes.manager.drop_caches()
            with notes.db.track_queries() as counter:
                result = notes.query(sql)
            assert len(result.tuples) == 4
            assert any("summary_state" in s for s in counter.statements)
        finally:
            notes.close()

    def test_pushdown_modes_agree_on_a_query_mix(self):
        lazy = populate_flock(InsightNotes())
        eager = populate_flock(InsightNotes(pushdown=False))
        queries = [
            "SELECT name, species, weight FROM birds WHERE weight > 25",
            "SELECT name FROM birds WHERE name LIKE '%5' ORDER BY name",
            "SELECT species, count(*) FROM birds WHERE weight >= 10 "
            "GROUP BY species",
            "SELECT name FROM birds WHERE weight > 3 LIMIT 4",
            "SELECT DISTINCT species FROM birds WHERE weight < 20",
        ]
        try:
            for sql in queries:
                assert fingerprint(lazy.query(sql)) == fingerprint(
                    eager.query(sql)
                ), sql
        finally:
            lazy.close()
            eager.close()


class TestGhostInstances:
    def test_named_subset_without_links_passes_through(self):
        # WITH SUMMARIES (Ghost) where Ghost is not linked: plain
        # relational rows, no fetches, no attachment bookkeeping.
        notes = InsightNotes()
        try:
            notes.create_table("t", ["a"])
            notes.insert("t", (1,))
            notes.insert("t", (2,))
            scan = ScanOperator(notes.db, "t", "t")
            hydrate = HydrateOperator(
                scan, notes.annotations, notes.catalog, "t", "t",
                manager=notes.manager, instances=("Ghost",),
            )
            rows = list(hydrate)
            assert [row.values for row in rows] == [(1,), (2,)]
            assert all(not row.summaries for row in rows)
            assert all(not row.attachments for row in rows)
        finally:
            notes.close()
