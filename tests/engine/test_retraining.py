"""Tests for classifier retraining and summary rebuilds."""

import pytest

from repro import InsightNotes


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("t", ["v"])
    notes.insert("t", ("x",))
    notes.insert("t", ("y",))
    # Deliberately mistrained: "pelagic ... offshore" was labelled Disease
    # by the first curator, so the new annotation misclassifies.
    notes.define_classifier("C", ["Behavior", "Disease"], [
        ("pelagic swimming sighted offshore", "Disease"),
        ("pelagic lesions spreading offshore", "Disease"),
        ("observed feeding near shore", "Behavior"),
    ])
    notes.link("C", "t")
    notes.add_annotation("pelagic foraging sighted offshore",
                         table="t", row_id=1)
    yield notes
    notes.close()


class TestRetrainClassifier:
    def test_retrain_relabels_existing_summaries(self, stack):
        before = stack.manager.current_object("C", "t", 1)
        assert before.count("Disease") == 1  # misclassified initially
        stack.retrain_classifier(
            "C", [("pelagic foraging sighted at sea", "Behavior")] * 4
        )
        after = stack.manager.current_object("C", "t", 1)
        assert after.count("Behavior") == 1
        assert after.count("Disease") == 0

    def test_retrain_persists_model(self, stack):
        stack.retrain_classifier(
            "C", [("pelagic foraging sighted at sea", "Behavior")] * 4
        )
        fresh_catalog_instance = type(stack.catalog)(stack.db).get_instance("C")
        assert fresh_catalog_instance.model.predict(
            "pelagic foraging sighted offshore"
        ) == "Behavior"

    def test_retrain_invalidates_contribution_cache(self, stack):
        # Prime the summarize-once cache with the stale label.
        annotation = stack.annotations.get(1)
        stack.manager.contributions.analyze(
            stack.catalog.get_instance("C"), annotation
        )
        stack.retrain_classifier(
            "C", [("pelagic foraging sighted at sea", "Behavior")] * 4
        )
        fresh = stack.manager.contributions.analyze(
            stack.catalog.get_instance("C"), annotation
        )
        assert fresh == "Behavior"

    def test_new_annotations_use_new_model(self, stack):
        stack.retrain_classifier(
            "C", [("pelagic foraging sighted at sea", "Behavior")] * 4
        )
        stack.add_annotation("another pelagic foraging sighting",
                             table="t", row_id=2)
        obj = stack.manager.current_object("C", "t", 2)
        assert obj.count("Behavior") == 1


class TestRebuildSummaries:
    def test_rebuild_scopes(self, stack):
        stack.create_table("u", ["w"])
        stack.insert("u", ("z",))
        stack.link("C", "u")
        assert stack.rebuild_summaries() == 2  # (C,t) and (C,u)
        assert stack.rebuild_summaries(table="t") == 1
        assert stack.rebuild_summaries(instance_name="C", table="u") == 1
        assert stack.rebuild_summaries(instance_name="missing") == 0

    def test_rebuild_repairs_tampered_state(self, stack):
        # Corrupt the stored object, then rebuild from raw annotations.
        stack.manager.drop_caches()
        with stack.db.connection:
            stack.db.connection.execute(
                "DELETE FROM _in_summary_state"
            )
        stack.rebuild_summaries()
        obj = stack.catalog.load_object("C", "t", 1)
        assert obj is not None
        assert len(obj.annotation_ids()) == 1
