"""Tests for repro.engine.results."""

import pytest

from repro.engine.results import QueryResult, ResultRegistry
from repro.errors import UnknownQueryIdError
from repro.model.tuple import AnnotatedTuple
from repro.summaries.classifier import ClassifierSummary


def make_result(qid: int, rows: int = 2) -> QueryResult:
    tuples = []
    for i in range(rows):
        summary = ClassifierSummary("C", ["a"])
        summary.add(i + 1, "a")
        tuples.append(
            AnnotatedTuple(values=(i, f"text{i}"), summaries={"C": summary})
        )
    return QueryResult(qid=qid, columns=("t.n", "t.s"), tuples=tuples)


class TestQueryResult:
    def test_len_and_rows(self):
        result = make_result(1, rows=3)
        assert len(result) == 3
        assert result.rows()[0] == (0, "text0")

    def test_column_index(self):
        result = make_result(1)
        assert result.column_index("s") == 1
        assert result.column_index("t.n") == 0

    def test_size_estimate_grows_with_rows(self):
        assert make_result(1, rows=10).size_estimate() > make_result(
            1, rows=1
        ).size_estimate()

    def test_summary_instances(self):
        assert make_result(1).summary_instances() == ["C"]


class TestResultRegistry:
    def test_qids_start_at_101(self):
        registry = ResultRegistry()
        assert registry.next_qid() == 101
        assert registry.next_qid() == 102

    def test_register_and_get(self):
        registry = ResultRegistry()
        result = make_result(registry.next_qid())
        registry.register(result)
        assert registry.get(result.qid) is result
        assert result.qid in registry

    def test_get_unknown_raises(self):
        registry = ResultRegistry()
        with pytest.raises(UnknownQueryIdError):
            registry.get(999)

    def test_capacity_evicts_oldest(self):
        registry = ResultRegistry(capacity=2)
        results = [make_result(registry.next_qid()) for _ in range(3)]
        for result in results:
            registry.register(result)
        assert len(registry) == 2
        assert results[0].qid not in registry
        assert results[2].qid in registry

    def test_latest(self):
        registry = ResultRegistry()
        assert registry.latest() is None
        first = make_result(registry.next_qid())
        second = make_result(registry.next_qid())
        registry.register(first)
        registry.register(second)
        assert registry.latest() is second

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultRegistry(capacity=0)

    def test_invalid_capacity_bytes(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            ResultRegistry(capacity_bytes=0)

    def test_byte_budget_evicts_oldest(self):
        # A generous count bound with a byte budget that holds ~3 of
        # the 10-row results: eviction must be driven by bytes, not
        # count, and the retained footprint must respect the budget.
        size = make_result(1, rows=10).size_estimate()
        registry = ResultRegistry(capacity=100, capacity_bytes=3 * size)
        results = [
            make_result(registry.next_qid(), rows=10) for _ in range(6)
        ]
        for result in results:
            registry.register(result)
        assert len(registry) == 3
        assert registry.total_bytes <= 3 * size
        for stale in results[:3]:
            assert stale.qid not in registry
        for kept in results[3:]:
            assert kept.qid in registry

    def test_huge_newest_result_is_retained(self):
        # One result alone over the budget must still be addressable —
        # evicting the result just handed to the caller is never right.
        registry = ResultRegistry(capacity=100, capacity_bytes=64)
        big = make_result(registry.next_qid(), rows=50)
        assert big.size_estimate() > 64
        registry.register(big)
        assert registry.get(big.qid) is big
        assert len(registry) == 1

    def test_byte_accounting_tracks_evictions(self):
        size = make_result(1, rows=4).size_estimate()
        registry = ResultRegistry(capacity=2, capacity_bytes=10 * size)
        for _ in range(5):
            registry.register(make_result(registry.next_qid(), rows=4))
        assert len(registry) == 2
        assert registry.total_bytes == 2 * size

    def test_reregistering_same_qid_does_not_double_count(self):
        registry = ResultRegistry()
        result = make_result(registry.next_qid(), rows=4)
        registry.register(result)
        once = registry.total_bytes
        registry.register(result)
        assert registry.total_bytes == once
        assert len(registry) == 1
