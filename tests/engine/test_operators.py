"""Tests for repro.engine.operators — the summary-aware algebra."""

import pytest

from repro import InsightNotes
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import (
    DistinctOperator,
    GroupByOperator,
    HydrateOperator,
    JoinOperator,
    LimitOperator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    SortOperator,
    Tracer,
    UnionOperator,
    merge_attachments,
    merge_summary_maps,
)
from repro.engine.plan import Aggregate
from repro.errors import PlanError
from repro.summaries.classifier import ClassifierSummary
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    notes.create_table("R", ["a", "b", "c"])
    notes.create_table("S", ["x", "z"])
    notes.insert("R", (1, 2, "keep"))
    notes.insert("R", (1, 3, "other"))
    notes.insert("R", (4, 2, "third"))
    notes.insert("S", (1, "z1"))
    notes.insert("S", (4, "z4"))
    notes.define_classifier("C", ["Behavior", "Disease"], TRAINING)
    notes.link("C", "R")
    notes.link("C", "S")
    # Row 1 of R: one Behavior annotation on column a, one Disease on c.
    notes.add_annotation("observed feeding on stonewort",
                         table="R", row_id=1, columns=["a"])
    notes.add_annotation("shows symptoms of avian influenza",
                         table="R", row_id=1, columns=["c"])
    # Row 1 of S: one Behavior annotation on x.
    notes.add_annotation("seen foraging among pond weeds",
                         table="S", row_id=1, columns=["x"])
    yield notes
    notes.close()


def scan(notes, table, alias=None, tracer=None):
    """A hydrated scan: value-only ScanOperator + eager HydrateOperator."""
    base = ScanOperator(notes.db, table, alias or table, tracer=tracer)
    return HydrateOperator(
        base, notes.annotations, notes.catalog, table, alias or table,
        manager=notes.manager, tracer=tracer, eager=True,
    )


class TestScan:
    def test_schema_is_alias_qualified(self, stack):
        operator = scan(stack, "R", "r")
        assert operator.schema == ("r.a", "r.b", "r.c")

    def test_rows_carry_summaries_and_attachments(self, stack):
        rows = list(scan(stack, "R", "r"))
        assert len(rows) == 3
        first = rows[0]
        assert first.summaries["C"].count("Behavior") == 1
        assert first.summaries["C"].count("Disease") == 1
        assert set(first.attachments.values()) == {
            frozenset({"r.a"}), frozenset({"r.c"}),
        }
        assert first.source_rows == frozenset({("R", 1)})

    def test_unannotated_rows_get_empty_summaries(self, stack):
        rows = list(scan(stack, "R", "r"))
        assert rows[1].summaries["C"].is_empty()
        assert rows[1].attachments == {}

    def test_scan_strips_heavy_cluster_state(self, stack):
        stack.define_cluster("Cl", threshold=0.3)
        stack.link("Cl", "R")
        rows = list(scan(stack, "R", "r"))
        cluster = rows[0].summaries["Cl"]
        assert all(group.vectors is None for group in cluster.groups)


class TestSelect:
    def test_filters_without_touching_summaries(self, stack):
        child = scan(stack, "R", "r")
        predicate = Comparison("=", Column("r.b"), Literal(2))
        rows = list(SelectOperator(child, predicate))
        assert [row.values for row in rows] == [(1, 2, "keep"), (4, 2, "third")]
        assert rows[0].summaries["C"].count("Disease") == 1  # unchanged


class TestProject:
    def test_keeps_columns_in_requested_order(self, stack):
        operator = ProjectOperator(scan(stack, "R", "r"), ["r.b", "r.a"])
        assert operator.schema == ("r.b", "r.a")
        assert list(operator)[0].values == (2, 1)

    def test_removes_dropped_annotation_effects(self, stack):
        # Dropping column c must remove the Disease annotation's effect.
        rows = list(ProjectOperator(scan(stack, "R", "r"), ["r.a", "r.b"]))
        summary = rows[0].summaries["C"]
        assert summary.count("Behavior") == 1
        assert summary.count("Disease") == 0

    def test_keeps_annotations_spanning_kept_columns(self, stack):
        stack.add_annotation(
            "spotted diving for small insects",
            table="R", row_id=2, columns=["a", "c"],
        )
        rows = list(ProjectOperator(scan(stack, "R", "r"), ["r.a"]))
        assert rows[1].summaries["C"].count("Behavior") == 1

    def test_duplicate_columns_rejected(self, stack):
        with pytest.raises(PlanError, match="duplicate"):
            ProjectOperator(scan(stack, "R", "r"), ["r.a", "a"])


class TestJoin:
    def _join(self, stack):
        predicate = Comparison("=", Column("r.a"), Column("s.x"))
        return JoinOperator(scan(stack, "R", "r"), scan(stack, "S", "s"), predicate)

    def test_hash_join_matches(self, stack):
        rows = list(self._join(stack))
        assert sorted(row.values for row in rows) == [
            (1, 2, "keep", 1, "z1"),
            (1, 3, "other", 1, "z1"),
            (4, 2, "third", 4, "z4"),
        ]

    def test_merges_counterpart_summaries(self, stack):
        rows = list(self._join(stack))
        first = next(row for row in rows if row.values[:2] == (1, 2))
        # R row 1 contributes Behavior+Disease, S row 1 contributes Behavior.
        assert first.summaries["C"].count("Behavior") == 2
        assert first.summaries["C"].count("Disease") == 1

    def test_join_does_not_double_count_shared_annotation(self, stack):
        from repro.model.cell import CellRef

        stack.add_annotation(
            "watched chasing grass shoots",
            cells=[CellRef("R", 3, "a"), CellRef("S", 2, "x")],
        )
        rows = list(self._join(stack))
        third = next(row for row in rows if row.values[0] == 4)
        assert third.summaries["C"].count("Behavior") == 1

    def test_equi_join_spreads_attachments_to_equivalent_column(self, stack):
        rows = list(self._join(stack))
        first = next(row for row in rows if row.values[:2] == (1, 2))
        behavior_on_s = first.annotations_on_columns(["s.x"])
        behavior_on_r = first.annotations_on_columns(["r.a"])
        # The S annotation also covers r.a now (and vice versa).
        assert behavior_on_s == behavior_on_r

    def test_cross_join_without_predicate(self, stack):
        operator = JoinOperator(scan(stack, "R", "r"), scan(stack, "S", "s"), None)
        assert len(list(operator)) == 6

    def test_theta_join_nested_loop(self, stack):
        predicate = Comparison("<", Column("r.a"), Column("s.x"))
        operator = JoinOperator(
            scan(stack, "R", "r"), scan(stack, "S", "s"), predicate
        )
        assert all(row.values[0] < row.values[3] for row in operator)

    def test_overlapping_schemas_rejected(self, stack):
        with pytest.raises(PlanError, match="share columns"):
            JoinOperator(scan(stack, "R", "r"), scan(stack, "R", "r"), None)

    def test_null_keys_never_match(self, stack):
        stack.insert("R", (None, 9, "nul"))
        rows = list(self._join(stack))
        assert all(row.values[0] is not None for row in rows)


class TestGroupBy:
    def test_aggregates(self, stack):
        operator = GroupByOperator(
            scan(stack, "R", "r"),
            keys=["r.b"],
            aggregates=[Aggregate("count", None), Aggregate("sum", Column("r.a"))],
        )
        assert operator.schema == ("r.b", "count(*)", "sum(r.a)")
        results = {row.values[0]: row.values[1:] for row in operator}
        assert results[2] == (2, 5)
        assert results[3] == (1, 1)

    def test_merges_group_member_summaries(self, stack):
        stack.add_annotation("seen foraging near shore",
                             table="R", row_id=3, columns=["b"])
        operator = GroupByOperator(
            scan(stack, "R", "r"), keys=["r.b"],
            aggregates=[Aggregate("count", None)],
        )
        by_key = {row.values[0]: row for row in operator}
        # b=2 group contains R rows 1 and 3; row 1 has a Behavior note on a
        # (dropped: a is not key/agg) and row 3 one on b (kept).
        assert by_key[2].summaries["C"].count("Behavior") == 1

    def test_aggregate_argument_annotations_survive(self, stack):
        operator = GroupByOperator(
            scan(stack, "R", "r"), keys=["r.b"],
            aggregates=[Aggregate("sum", Column("r.a"))],
        )
        by_key = {row.values[0]: row for row in operator}
        # The Behavior annotation on r.a maps to output column sum(r.a).
        assert by_key[2].summaries["C"].count("Behavior") == 1
        annotation_id = next(iter(by_key[2].attachments))
        assert by_key[2].attachments[annotation_id] == frozenset({"sum(r.a)"})

    def test_having_filters_groups(self, stack):
        operator = GroupByOperator(
            scan(stack, "R", "r"), keys=["r.b"],
            aggregates=[Aggregate("count", None)],
            having=Comparison(">", Column("count(*)"), Literal(1)),
        )
        assert [row.values for row in operator] == [(2, 2)]

    def test_count_column_skips_nulls(self, stack):
        stack.insert("R", (None, 7, "x"))
        operator = GroupByOperator(
            scan(stack, "R", "r"), keys=["r.b"],
            aggregates=[Aggregate("count", Column("r.a"))],
        )
        by_key = {row.values[0]: row.values[1] for row in operator}
        assert by_key[7] == 0

    def test_avg_and_min_max(self, stack):
        operator = GroupByOperator(
            scan(stack, "R", "r"), keys=[],
            aggregates=[
                Aggregate("avg", Column("r.a")),
                Aggregate("min", Column("r.a")),
                Aggregate("max", Column("r.a")),
            ],
        )
        (row,) = list(operator)
        assert row.values == (2.0, 1, 4)


class TestDistinct:
    def test_merges_duplicate_summaries(self, stack):
        projected = ProjectOperator(scan(stack, "R", "r"), ["r.a"])
        rows = list(DistinctOperator(projected))
        values = sorted(row.values for row in rows)
        assert values == [(1,), (4,)]
        merged = next(row for row in rows if row.values == (1,))
        # Rows 1 and 2 of R both have a=1; row 1's Behavior note survives.
        assert merged.summaries["C"].count("Behavior") == 1


class TestSortLimitUnion:
    def test_sort_descending(self, stack):
        operator = SortOperator(
            scan(stack, "R", "r"), [Column("r.b")], [True]
        )
        assert [row.values[1] for row in operator] == [3, 2, 2]

    def test_sort_nulls_first_ascending(self, stack):
        stack.insert("R", (None, 0, "n"))
        operator = SortOperator(scan(stack, "R", "r"), [Column("r.a")])
        assert list(operator)[0].values[0] is None

    def test_limit(self, stack):
        operator = LimitOperator(scan(stack, "R", "r"), 2)
        assert len(list(operator)) == 2

    def test_union_concatenates(self, stack):
        left = ProjectOperator(scan(stack, "R", "r"), ["r.a"])
        right = ProjectOperator(scan(stack, "S", "s"), ["s.x"])
        operator = UnionOperator(left, right)
        assert len(list(operator)) == 5
        assert operator.schema == ("r.a",)

    def test_union_arity_mismatch(self, stack):
        with pytest.raises(PlanError, match="arity"):
            UnionOperator(scan(stack, "R", "r"), scan(stack, "S", "s"))

    def test_union_renames_right_attachments(self, stack):
        left = ProjectOperator(scan(stack, "S", "s"), ["s.x"])
        right = ProjectOperator(scan(stack, "R", "r"), ["r.a"])
        rows = list(UnionOperator(left, right))
        for row in rows:
            for columns in row.attachments.values():
                assert columns <= {"s.x"}


class TestTracer:
    def test_records_per_operator(self, stack):
        tracer = Tracer()
        child = scan(stack, "R", "r", tracer=tracer)
        predicate = Comparison("=", Column("r.b"), Literal(2))
        operator = SelectOperator(child, predicate, tracer=tracer)
        list(operator)
        grouped = tracer.by_operator()
        assert len(grouped["Scan(R AS r)"]) == 3
        assert len(grouped["Select(r.b = 2)"]) == 2

    def test_entries_include_summary_renderings(self, stack):
        tracer = Tracer()
        list(scan(stack, "R", "r", tracer=tracer))
        entry = next(
            e for e in tracer.entries if e.operator.startswith("Hydrate")
        )
        assert "C" in entry.summaries
        assert entry.summaries["C"].startswith("C [")


class TestMergeHelpers:
    def test_merge_summary_maps_one_sided(self):
        left_summary = ClassifierSummary("L", ["a"])
        left_summary.add(1, "a")
        merged = merge_summary_maps({"L": left_summary}, {})
        assert merged["L"].count("a") == 1
        merged["L"].add(2, "a")
        assert left_summary.count("a") == 1  # copied, not shared

    def test_merge_attachments_unions_columns(self):
        merged = merge_attachments(
            {1: frozenset({"a"})}, {1: frozenset({"b"}), 2: frozenset({"c"})}
        )
        assert merged == {1: frozenset({"a", "b"}), 2: frozenset({"c"})}
