"""Tests for the DDL/DML statements and the execute() dispatcher."""

import pytest

from repro import InsightNotes
from repro.engine.ddl import CreateTable, DeleteFrom, InsertInto, parse_ddl
from repro.errors import SQLSyntaxError, StorageError
from tests.conftest import TRAINING


@pytest.fixture
def stack():
    notes = InsightNotes()
    yield notes
    notes.close()


class TestParsing:
    def test_create_table(self):
        statement = parse_ddl("CREATE TABLE birds (name, weight);")
        assert statement == CreateTable("birds", ("name", "weight"))

    def test_insert_multiple_rows(self):
        statement = parse_ddl(
            "INSERT INTO t VALUES ('a', 1), ('b', 2.5), (NULL, -7)"
        )
        assert isinstance(statement, InsertInto)
        assert statement.rows == (("a", 1), ("b", 2.5), (None, -7))

    def test_delete_with_predicate(self):
        statement = parse_ddl("DELETE FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(statement, DeleteFrom)
        assert statement.predicate is not None

    def test_delete_without_predicate(self):
        assert parse_ddl("DELETE FROM t").predicate is None

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError, match="unsupported"):
            parse_ddl("DROP TABLE t")

    def test_qualified_table_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_ddl("CREATE TABLE db.t (a)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_ddl("CREATE TABLE t (a) nonsense")

    def test_insert_rejects_expressions(self):
        with pytest.raises(SQLSyntaxError, match="literal"):
            parse_ddl("INSERT INTO t VALUES (a + 1)")


class TestExecution:
    def test_create_insert_select_cycle(self, stack):
        stack.execute("CREATE TABLE m (station, value)")
        stack.execute("INSERT INTO m VALUES ('s1', 10), ('s2', 20)")
        result = stack.execute("SELECT station FROM m ORDER BY station")
        assert result.rows() == [("s1",), ("s2",)]

    def test_create_duplicate_table_errors(self, stack):
        stack.execute("CREATE TABLE m (a)")
        with pytest.raises(StorageError, match="already exists"):
            stack.execute("CREATE TABLE m (a)")

    def test_insert_arity_checked(self, stack):
        stack.execute("CREATE TABLE m (a, b)")
        with pytest.raises(Exception):
            stack.execute("INSERT INTO m VALUES (1)")

    def test_delete_cascades_annotations(self, stack):
        stack.execute("CREATE TABLE m (station, value)")
        stack.execute("INSERT INTO m VALUES ('s1', 10)")
        stack.define_classifier("B", ["refute", "approve"],
                                [("wrong", "refute"), ("fine", "approve")])
        stack.link("B", "m")
        stack.add_annotation("wrong wrong", table="m", row_id=1)
        message = stack.execute("DELETE FROM m WHERE station = 's1'")
        assert "1 row(s) deleted" in message
        assert stack.annotations.count() == 0

    def test_delete_with_summary_predicate(self, stack):
        stack.execute("CREATE TABLE m (station, value)")
        stack.execute("INSERT INTO m VALUES ('good', 1), ('bad', 2)")
        stack.define_classifier("B", ["refute", "approve"],
                                [("wrong value", "refute"),
                                 ("confirmed fine", "approve")])
        stack.link("B", "m")
        stack.add_annotation("wrong value", table="m", row_id=2)
        stack.execute("DELETE FROM m WHERE SUMMARY_COUNT('B', 'refute') > 0")
        assert stack.execute("SELECT station FROM m").rows() == [("good",)]

    def test_delete_with_in_subquery(self, stack):
        stack.execute("CREATE TABLE birds (name, species)")
        stack.execute("CREATE TABLE banned (species)")
        stack.execute(
            "INSERT INTO birds VALUES ('Swan', 'cygnus'), ('Goose', 'anser')"
        )
        stack.execute("INSERT INTO banned VALUES ('anser')")
        message = stack.execute(
            "DELETE FROM birds WHERE species IN (SELECT species FROM banned)"
        )
        assert "1 row(s) deleted" in message
        assert stack.execute("SELECT name FROM birds").rows() == [("Swan",)]

    def test_execute_dispatches_select_and_zoomin(self, stack):
        stack.execute("CREATE TABLE m (v)")
        stack.execute("INSERT INTO m VALUES ('x')")
        stack.define_classifier("B", ["a", "b"], [("one", "a"), ("two", "b")])
        stack.link("B", "m")
        stack.add_annotation("one", table="m", row_id=1)
        result = stack.execute("SELECT v FROM m")
        zoom = stack.execute(f"ZOOMIN REFERENCE QID = {result.qid} ON B INDEX 1")
        assert zoom.annotation_count() == 1


class TestGateIntegration:
    def test_full_sql_session_through_repl(self):
        from repro.gate.cli import run_script

        outputs = run_script([
            "CREATE TABLE m (station, value)",
            "INSERT INTO m VALUES ('s1', 10), ('s2', 99)",
            "SELECT station, value FROM m ORDER BY value DESC",
            "DELETE FROM m WHERE value > 50",
            "SELECT station FROM m",
        ])
        assert "created" in outputs[0]
        assert "2 row(s) inserted" in outputs[1]
        assert "QID" in outputs[2]
        assert "1 row(s) deleted" in outputs[3]
        assert "s1" in outputs[4]
