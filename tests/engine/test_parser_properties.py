"""Property-based tests of the expression language.

Two round-trip invariants: (1) rendering an expression with ``str()`` and
re-parsing it yields an expression that evaluates identically; (2) the
planner's rewrites (pushdown + normalization) never change query results
on randomized micro-databases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InsightNotes
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Column,
    Comparison,
    Expression,
    IsNull,
    Like,
    Literal,
    Not,
)
from repro.engine.sqlparser import parse_expression
from repro.model.tuple import AnnotatedTuple

SCHEMA = ("t.a", "t.b", "t.c")

columns = st.sampled_from(["a", "b", "c", "t.a", "t.b", "t.c"])
int_literals = st.integers(min_value=-50, max_value=50)
str_literals = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           whitelist_characters=" '"),
    max_size=8,
)


@st.composite
def operands(draw) -> Expression:
    kind = draw(st.sampled_from(["column", "int", "str"]))
    if kind == "column":
        return Column(draw(columns))
    if kind == "int":
        return Literal(draw(int_literals))
    return Literal(draw(str_literals))


numeric_columns = st.sampled_from(["a", "b", "t.a", "t.b"])


@st.composite
def predicates(draw, depth: int = 2) -> Expression:
    if depth == 0:
        # Ordered comparisons only over the numeric columns: comparing a
        # string column with an int raises, and selection pushdown
        # legitimately changes *when* such an error surfaces.
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        left = Column(draw(numeric_columns))
        right = Literal(draw(int_literals))
        return Comparison(op, left, right)
    kind = draw(st.sampled_from(["cmp", "and", "or", "not", "isnull", "like"]))
    if kind == "cmp":
        return draw(predicates(depth=0))
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    if kind == "isnull":
        return IsNull(Column(draw(columns)), negated=draw(st.booleans()))
    if kind == "like":
        pattern = draw(st.from_regex(r"[a-z%_]{1,6}", fullmatch=True))
        return Like(Column(draw(columns)), pattern)
    parts = draw(st.lists(predicates(depth=depth - 1), min_size=2, max_size=3))
    return BooleanOp("and" if kind == "and" else "or", tuple(parts))


rows = st.tuples(
    st.one_of(st.none(), int_literals),
    st.one_of(st.none(), int_literals),
    st.one_of(st.none(), str_literals),
)


class TestExpressionRoundTrip:
    @given(predicates(), rows)
    @settings(max_examples=150)
    def test_str_reparse_evaluates_identically(self, expression, values):
        rendered = str(expression)
        reparsed = parse_expression(rendered)
        row = AnnotatedTuple(values=values)

        def outcome(expr):
            try:
                return ("value", bool(expr.evaluate(row, SCHEMA)))
            except Exception as error:
                return ("error", type(error).__name__)

        assert outcome(expression) == outcome(reparsed)

    @given(predicates())
    @settings(max_examples=100)
    def test_rendering_is_stable(self, expression):
        once = str(expression)
        twice = str(parse_expression(once))
        assert str(parse_expression(twice)) == twice


class TestPlannerRewriteEquivalence:
    @given(
        st.lists(st.tuples(int_literals, int_literals), min_size=0, max_size=6),
        st.lists(st.tuples(int_literals, str_literals), min_size=0, max_size=6),
        predicates(depth=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_rewrites_preserve_results(self, r_rows, s_rows, predicate):
        notes = InsightNotes()
        notes.create_table("t", ["a", "b"])
        notes.create_table("u", ["a2", "c"])
        for row in r_rows:
            notes.insert("t", row)
        for row in s_rows:
            notes.insert("u", row)
        # Map generated column references onto the t/u schema.
        sql_predicate = (
            str(predicate)
            .replace("t.a", "t0.a").replace("t.b", "t0.b").replace("t.c", "u0.c")
        )
        for bare, qualified in (("a", "t0.a"), ("b", "t0.b"), ("c", "u0.c")):
            sql_predicate = _replace_bare(sql_predicate, bare, qualified)
        sql = (
            "SELECT t0.a, u0.c FROM t t0, u u0 "
            f"WHERE t0.a = u0.a2 AND ({sql_predicate})"
        )
        try:
            notes.planner.normalize_plans = True
            notes.planner.push_selections = True
            full = sorted(map(str, notes.query(sql).rows()))
            notes.planner.normalize_plans = False
            notes.planner.push_selections = False
            plain = sorted(map(str, notes.query(sql).rows()))
        finally:
            notes.close()
        assert full == plain


def _replace_bare(text: str, bare: str, qualified: str) -> str:
    import re

    return re.sub(rf"(?<![\w.]){bare}(?![\w.(])", qualified, text)
