"""Tests for repro.engine.sqlparser."""

import pytest

from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Column,
    Comparison,
    GroupCount,
    InList,
    Like,
    Literal,
    Not,
    SummaryCount,
)
from repro.engine.sqlparser import parse_expression, parse_sql, tokenize_sql
from repro.errors import SQLSyntaxError


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("SELECT select SeLeCt")
        assert all(t.kind == "keyword" and t.value == "select"
                   for t in tokens[:-1])

    def test_dotted_identifier_is_one_token(self):
        tokens = tokenize_sql("r.a")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "r.a"

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("'o''brien'")
        assert tokens[0].kind == "string"

    def test_numbers(self):
        tokens = tokenize_sql("42 3.5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.5"]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize_sql("SELECT @")

    def test_eof_token_appended(self):
        assert tokenize_sql("x")[-1].kind == "eof"


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_sql("SELECT a, b FROM t")
        assert not statement.select_star
        assert [item[1].name for item in statement.select_items] == ["a", "b"]
        assert statement.tables == [("t", "t")]

    def test_select_star(self):
        statement = parse_sql("SELECT * FROM t")
        assert statement.select_star

    def test_aliases(self):
        statement = parse_sql("SELECT r.a FROM tbl r, other AS o")
        assert statement.tables == [("tbl", "r"), ("other", "o")]

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        statement = parse_sql("SELECT a FROM t WHERE a = 1 AND b > 2")
        assert isinstance(statement.where, BooleanOp)
        assert statement.where.op == "and"

    def test_explicit_join(self):
        statement = parse_sql(
            "SELECT r.a FROM tbl r JOIN other o ON r.a = o.x"
        )
        assert len(statement.joins) == 1
        table, alias, predicate, outer = statement.joins[0]
        assert (table, alias) == ("other", "o")
        assert isinstance(predicate, Comparison)
        assert outer is False

    def test_inner_join_keyword(self):
        statement = parse_sql(
            "SELECT r.a FROM tbl r INNER JOIN other o ON r.a = o.x"
        )
        assert len(statement.joins) == 1

    def test_group_by_and_having(self):
        statement = parse_sql(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert statement.group_by == ["a"]
        assert statement.is_grouped
        assert statement.having is not None

    def test_aggregates(self):
        statement = parse_sql(
            "SELECT count(*), sum(b), avg(b), min(b), max(b) FROM t"
        )
        kinds = [kind for kind, _ in statement.select_items]
        assert kinds == ["aggregate"] * 5
        assert statement.is_grouped  # bare aggregates imply grouping

    def test_count_star_only_for_count(self):
        with pytest.raises(SQLSyntaxError, match=r"SUM\(\*\)"):
            parse_sql("SELECT sum(*) FROM t")

    def test_order_by(self):
        statement = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert len(statement.order_by) == 2
        assert statement.order_by[0][1] is True
        assert statement.order_by[1][1] is False

    def test_order_by_aggregate(self):
        statement = parse_sql(
            "SELECT a, count(*) FROM t GROUP BY a ORDER BY count(*) DESC"
        )
        key, descending = statement.order_by[0]
        assert isinstance(key, Column)
        assert key.name == "count(*)"
        assert descending

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_must_be_integer(self):
        with pytest.raises(SQLSyntaxError, match="integer"):
            parse_sql("SELECT a FROM t LIMIT 2.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t nonsense extra")

    def test_qualified_table_name_rejected(self):
        with pytest.raises(SQLSyntaxError, match="qualified"):
            parse_sql("SELECT a FROM db.t")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLSyntaxError, match="from"):
            parse_sql("SELECT a")


class TestExpressionParsing:
    def test_precedence_or_over_and(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expression, BooleanOp)
        assert expression.op == "or"
        assert isinstance(expression.operands[1], BooleanOp)

    def test_parentheses_override(self):
        expression = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert expression.op == "and"

    def test_not(self):
        assert isinstance(parse_expression("NOT a = 1"), Not)

    def test_arithmetic_precedence(self):
        expression = parse_expression("a + b * 2 = 7")
        assert isinstance(expression.left, Arithmetic)
        assert expression.left.op == "+"
        assert expression.left.right.op == "*"

    def test_unary_minus(self):
        expression = parse_expression("a > -5")
        assert isinstance(expression.right, Arithmetic)

    def test_string_literal_unescaping(self):
        expression = parse_expression("a = 'o''brien'")
        assert expression.right == Literal("o'brien")

    def test_float_literal(self):
        expression = parse_expression("a > 2.5")
        assert expression.right == Literal(2.5)

    def test_like(self):
        expression = parse_expression("name LIKE 'Swan%'")
        assert isinstance(expression, Like)
        assert expression.pattern == "Swan%"

    def test_in_list(self):
        expression = parse_expression("a IN (1, 2, 'x')")
        assert isinstance(expression, InList)
        assert expression.values == (1, 2, "x")

    def test_in_list_requires_literals(self):
        with pytest.raises(SQLSyntaxError, match="literal"):
            parse_expression("a IN (b)")

    def test_not_equal_forms(self):
        assert parse_expression("a != 1").op == "!="
        assert parse_expression("a <> 1").op == "!="

    def test_summary_count_two_args(self):
        expression = parse_expression("SUMMARY_COUNT('C1', 'Disease') > 5")
        assert expression.left == SummaryCount("C1", "Disease")

    def test_summary_count_one_arg(self):
        expression = parse_expression("summary_count('C1') = 0")
        assert expression.left == SummaryCount("C1", None)

    def test_group_count(self):
        expression = parse_expression("GROUP_COUNT('S') >= 2")
        assert expression.left == GroupCount("S")

    def test_group_count_rejects_second_arg(self):
        with pytest.raises(SQLSyntaxError, match="single instance"):
            parse_expression("GROUP_COUNT('S', 'x') > 1")
