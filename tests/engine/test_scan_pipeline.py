"""Scan-pipeline tests: block prefetch, deserialization cache, freshness.

The block-oriented scan must be an invisible optimization — identical
results to the per-row path (``scan_block_size=1`` with the catalog
cache disabled), drastically fewer SQLite roundtrips, and never a stale
summary after annotation writes.
"""

import json

import pytest

from repro import CellRef, InsightNotes
from repro.engine.operators import Tracer

TRAINING = [
    ("observed feeding on stonewort beds at dawn", "Behavior"),
    ("seen foraging among pond weeds near shore", "Behavior"),
    ("spotted diving for small insects at dusk", "Behavior"),
    ("shows symptoms of avian influenza on the wing", "Disease"),
    ("appears infected with avian pox around the beak", "Disease"),
    ("tested positive for botulism in the flock", "Disease"),
]


def populate_birds(notes: InsightNotes, rows: int = 30) -> InsightNotes:
    """A summarized birds table with annotations on every row."""
    notes.create_table("birds", ["name", "species", "weight"])
    for i in range(rows):
        notes.insert("birds", (f"bird-{i}", f"species-{i % 5}", float(i)))
    notes.define_classifier("BirdClass", ["Behavior", "Disease"], TRAINING)
    notes.link("BirdClass", "birds")
    notes.define_cluster("BirdCluster", threshold=0.3)
    notes.link("BirdCluster", "birds")
    for i in range(rows):
        notes.add_annotation(
            f"observed feeding on stonewort at dawn, visit {i}",
            table="birds", row_id=i + 1,
        )
        if i % 3 == 0:
            notes.add_annotation(
                "shows symptoms of avian influenza",
                table="birds", row_id=i + 1, columns=["weight"],
            )
    return notes


def result_fingerprint(result) -> str:
    """Canonical serialization of rows, summaries, and attachments."""
    payload = []
    for row in result.tuples:
        payload.append({
            "values": list(row.values),
            "summaries": {
                name: obj.to_json()
                for name, obj in sorted(row.summaries.items())
            },
            "attachments": {
                str(annotation_id): sorted(columns)
                for annotation_id, columns in sorted(row.attachments.items())
            },
        })
    return json.dumps(payload, sort_keys=True)


class TestRoundTrips:
    def test_block_scan_uses_5x_fewer_queries_than_per_row(self):
        # Disable the catalog cache on both sides so the comparison
        # isolates the block prefetch itself, not cache warmth.
        blocked = populate_birds(InsightNotes(object_cache_size=0))
        per_row = populate_birds(
            InsightNotes(scan_block_size=1, object_cache_size=0)
        )
        sql = "SELECT name, species, weight FROM birds"
        try:
            for notes in (blocked, per_row):
                notes.manager.drop_caches()
            with blocked.db.track_queries() as fast:
                blocked.query(sql)
            with per_row.db.track_queries() as slow:
                per_row.query(sql)
            assert fast.count > 0
            assert slow.count >= 5 * fast.count, (
                f"expected >=5x fewer roundtrips, got {slow.count} per-row "
                f"vs {fast.count} blocked"
            )
        finally:
            blocked.close()
            per_row.close()

    def test_warm_cache_scan_avoids_summary_state_queries(self):
        notes = populate_birds(InsightNotes())
        sql = "SELECT name, species, weight FROM birds"
        try:
            notes.query(sql)  # cold: populates the deserialization cache
            with notes.db.track_queries() as counter:
                notes.query(sql)
            state_queries = [
                s for s in counter.statements if "summary_state" in s
            ]
            assert state_queries == []
        finally:
            notes.close()


class TestStats:
    def test_result_exposes_hydration_counters(self):
        notes = populate_birds(InsightNotes())
        try:
            # LIKE stays in memory as a residual below the Hydrate, so
            # all 30 rows are scanned but only the 3 matches hydrated.
            result = notes.query(
                "SELECT name, species, weight FROM birds WHERE name LIKE '%5'"
            )
            assert result.stats.rows_scanned == 30
            assert result.stats.rows_hydrated == len(result.tuples) == 3
            assert result.stats.hydration_blocks >= 1
        finally:
            notes.close()


class TestParity:
    @pytest.fixture()
    def paired_sessions(self):
        """The Figure 2 walkthrough built in both scan configurations."""
        def build() -> InsightNotes:
            notes = InsightNotes()
            return notes

        def setup(notes: InsightNotes) -> InsightNotes:
            notes.create_table("R", ["a", "b", "c", "d"])
            notes.create_table("S", ["x", "y", "z"])
            r = notes.insert("R", (1, 2, "c-value", "d-value"))
            s = notes.insert("S", (1, "y-value", "z-value"))
            notes.define_classifier("ClassBird1", ["Behavior", "Disease"], [
                ("observed feeding on stonewort", "Behavior"),
                ("shows symptoms of avian influenza", "Disease"),
            ])
            notes.define_classifier("ClassBird2", ["Provenance", "Comment"], [
                ("record imported from the archive", "Provenance"),
                ("great sighting worth sharing", "Comment"),
            ])
            notes.define_cluster("SimCluster", threshold=0.3)
            notes.define_snippet("TextSummary1", max_sentences=1)
            for name in ("ClassBird1", "ClassBird2", "SimCluster",
                         "TextSummary1"):
                notes.link(name, "R")
            for name in ("ClassBird2", "SimCluster"):
                notes.link(name, "S")
            notes.add_annotation("observed feeding on stonewort near dawn",
                                 table="R", row_id=r, columns=["a"])
            notes.add_annotation("shows symptoms of avian influenza",
                                 table="R", row_id=r, columns=["c"])
            notes.add_annotation(
                "Experiment E sentence one. Experiment E sentence two.",
                table="R", row_id=r, columns=["a"], document=True,
                title="Experiment E",
            )
            notes.add_annotation("great sighting worth sharing today",
                                 table="S", row_id=s, columns=["x"])
            notes.add_annotation(
                "record imported from station logbook",
                cells=[CellRef("R", r, "a"), CellRef("S", s, "x")],
            )
            return notes

        fast = setup(InsightNotes())
        slow = setup(InsightNotes(scan_block_size=1, object_cache_size=0))
        yield fast, slow
        fast.close()
        slow.close()

    def test_figure2_walkthrough_identical(self, paired_sessions):
        fast, slow = paired_sessions
        sql = "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2"
        assert result_fingerprint(fast.query(sql)) == result_fingerprint(
            slow.query(sql)
        )

    def test_with_no_summaries_identical(self, paired_sessions):
        fast, slow = paired_sessions
        sql = "SELECT a, b FROM R WITH NO SUMMARIES"
        fast_result = fast.query(sql)
        slow_result = slow.query(sql)
        assert result_fingerprint(fast_result) == result_fingerprint(
            slow_result
        )
        # The no-summaries path carries neither summaries nor attachments.
        assert all(not row.summaries for row in fast_result.tuples)
        assert all(not row.attachments for row in fast_result.tuples)

    def test_repeated_queries_identical(self, paired_sessions):
        # The second (cache-served) run must match the first byte for byte.
        fast, _slow = paired_sessions
        sql = "SELECT a, b, c, d FROM R"
        assert result_fingerprint(fast.query(sql)) == result_fingerprint(
            fast.query(sql)
        )


class TestFreshness:
    def test_scan_observes_annotation_added_after_cached_query(self):
        notes = populate_birds(InsightNotes(), rows=5)
        sql = "SELECT name, species, weight FROM birds"
        try:
            before = notes.query(sql)
            baseline = before.tuples[0].summaries["BirdClass"].annotation_ids()
            added = notes.add_annotation(
                "spotted diving for small insects at dusk",
                table="birds", row_id=1,
            )
            after = notes.query(sql)
            ids = after.tuples[0].summaries["BirdClass"].annotation_ids()
            assert added.annotation_id in ids
            assert ids > baseline
        finally:
            notes.close()

    def test_scan_observes_annotation_deletion_after_cached_query(self):
        notes = populate_birds(InsightNotes(), rows=5)
        sql = "SELECT name, species, weight FROM birds"
        try:
            added = notes.add_annotation(
                "tested positive for botulism in the flock",
                table="birds", row_id=2,
            )
            before = notes.query(sql)
            assert added.annotation_id in (
                before.tuples[1].summaries["BirdClass"].annotation_ids()
            )
            notes.delete_annotation(added.annotation_id)
            after = notes.query(sql)
            assert added.annotation_id not in (
                after.tuples[1].summaries["BirdClass"].annotation_ids()
            )
        finally:
            notes.close()

    def test_projection_removal_does_not_corrupt_cached_summaries(self):
        # A projection drops the weight column, removing the influenza
        # annotation's effect from the query's summary objects in place.
        # That must never leak back into the cached base summaries.
        notes = populate_birds(InsightNotes(), rows=4)
        try:
            full_sql = "SELECT name, species, weight FROM birds"
            first = result_fingerprint(notes.query(full_sql))
            notes.query("SELECT name FROM birds")  # mutates query copies
            second = result_fingerprint(notes.query(full_sql))
            assert first == second
        finally:
            notes.close()


class TestTracer:
    def test_cap_limits_entries_and_counts_drops(self):
        notes = populate_birds(InsightNotes(), rows=6)
        try:
            notes.planner.scan_block_size = 2
            tracer = Tracer(max_entries=4)
            from repro.engine.sqlparser import build_logical, parse_sql

            logical = build_logical(
                parse_sql("SELECT name FROM birds"), notes.planner
            )
            operator = notes.planner.physical(
                notes.planner.prepare(logical), tracer
            )
            emitted = list(operator)
            assert len(emitted) == 6
            assert len(tracer.entries) == 4
            assert tracer.dropped > 0
        finally:
            notes.close()

    def test_rendering_is_lazy(self):
        notes = populate_birds(InsightNotes(), rows=3)
        try:
            result = notes.query(
                "SELECT name, species, weight FROM birds", trace=True
            )
            entry = next(
                e for e in result.trace.entries
                if e.operator.startswith("Hydrate")
            )
            assert entry._rendered is None  # nothing rendered eagerly
            rendered = entry.summaries
            assert rendered and all(
                isinstance(text, str) for text in rendered.values()
            )
            assert entry._rendered is rendered  # computed once, then cached
        finally:
            notes.close()

    def test_snapshots_survive_downstream_mutation(self):
        # The influenza annotation sits only on weight; the projection
        # removes its effect downstream of the hydration point.  The
        # hydrate trace snapshot must still carry it (the copy-on-write
        # alias keeps the pre-mutation payload).  Pushdown is off so
        # hydration happens eagerly at the scan, below the projection.
        notes = InsightNotes(pushdown=False)
        try:
            notes.create_table("birds", ["name", "weight"])
            notes.insert("birds", ("Swan Goose", 3.2))
            notes.define_classifier("BirdClass", ["Behavior", "Disease"],
                                    TRAINING)
            notes.link("BirdClass", "birds")
            notes.add_annotation("observed feeding on stonewort",
                                 table="birds", row_id=1, columns=["name"])
            dropped = notes.add_annotation(
                "shows symptoms of avian influenza",
                table="birds", row_id=1, columns=["weight"],
            )
            result = notes.query("SELECT name FROM birds", trace=True)
            final_ids = result.tuples[0].summaries["BirdClass"].annotation_ids()
            assert dropped.annotation_id not in final_ids
            grouped = result.trace.by_operator()
            hydrate_op = next(op for op in grouped if op.startswith("Hydrate"))
            snapshot = grouped[hydrate_op][0]._objects["BirdClass"]
            assert dropped.annotation_id in snapshot.annotation_ids()
        finally:
            notes.close()

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_entries=0)
