"""Repository-root pytest configuration.

Registers the insightsan plugin (``pytest_plugins`` may only be
declared in the rootdir conftest).  The plugin is inert unless
``INSIGHT_SANITIZE=1`` — the CI ``sanitize`` job's mode — in which case
it instruments every :mod:`repro.concurrency` lock for the whole run
and writes ``insightsan-report.json`` at session finish.
"""

pytest_plugins = ("repro.analysis.sanitizer.pytest_plugin",)
