"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` for PEP 660 editable installs;
this offline environment lacks it, so ``python setup.py develop`` (driven
by this shim) provides the equivalent editable install.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
